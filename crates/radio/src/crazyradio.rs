//! The Crazyradio PA dongle as a radio and interference source.
//!
//! The dongle sits at the base station; whenever it polls a UAV it radiates
//! an nRF24 carrier that couples into the Wi-Fi scan (Figure 5). The mission
//! layer therefore turns it into an
//! [`InterferenceSource`] whenever
//! it is transmitting, and into nothing when the paper's radio-off-while-
//! scanning rule is in force.

use std::fmt;

use serde::{Deserialize, Serialize};

use aerorem_propagation::channel::NrfChannel;
use aerorem_propagation::InterferenceSource;
use aerorem_spatial::Vec3;

/// A radio address shared by a dongle/UAV pair (the 5-byte CRTP address,
/// e.g. `0xE7E7E7E701`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RadioAddress(pub u64);

impl RadioAddress {
    /// The Bitcraze default address with the last byte replaced by `id` —
    /// how multi-UAV fleets are usually addressed.
    pub fn default_with_id(id: u8) -> Self {
        RadioAddress(0xE7_E7E7_E700 | u64::from(id))
    }
}

impl fmt::Display for RadioAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:010X}", self.0)
    }
}

/// The base-station dongle.
///
/// # Examples
///
/// ```
/// use aerorem_radio::Crazyradio;
/// use aerorem_spatial::Vec3;
///
/// let mut radio = Crazyradio::new(2450.0, Vec3::new(-1.5, 2.0, 0.8)).unwrap();
/// assert!(radio.interference().is_some(), "transmitting by default");
/// radio.set_transmitting(false); // the paper's radio-off-while-scanning rule
/// assert!(radio.interference().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Crazyradio {
    channel: NrfChannel,
    position: Vec3,
    tx_power_dbm: f64,
    transmitting: bool,
    address: RadioAddress,
}

impl Crazyradio {
    /// Creates a dongle at `freq_mhz` (2400–2525 MHz) located at `position`
    /// in the scan-volume frame, transmitting, with the +20 dBm PA.
    ///
    /// Returns `None` when the frequency is outside the nRF24 band.
    pub fn new(freq_mhz: f64, position: Vec3) -> Option<Self> {
        Some(Crazyradio {
            channel: NrfChannel::at_mhz(freq_mhz)?,
            position,
            tx_power_dbm: 20.0,
            transmitting: true,
            address: RadioAddress::default_with_id(1),
        })
    }

    /// The dongle's nRF24 channel.
    pub fn channel(&self) -> NrfChannel {
        self.channel
    }

    /// Retunes to another carrier frequency.
    ///
    /// Returns `false` (leaving the channel unchanged) when `freq_mhz` is
    /// outside 2400–2525 MHz.
    pub fn set_frequency_mhz(&mut self, freq_mhz: f64) -> bool {
        match NrfChannel::at_mhz(freq_mhz) {
            Some(ch) => {
                self.channel = ch;
                true
            }
            None => false,
        }
    }

    /// Dongle position in the scan-volume frame.
    pub fn position(&self) -> Vec3 {
        self.position
    }

    /// The CRTP address this dongle polls.
    pub fn address(&self) -> RadioAddress {
        self.address
    }

    /// Sets the CRTP address (one per UAV in a fleet).
    pub fn set_address(&mut self, address: RadioAddress) {
        self.address = address;
    }

    /// Whether the dongle is currently on the air.
    pub fn is_transmitting(&self) -> bool {
        self.transmitting
    }

    /// Turns transmission on or off. The paper's client shuts the dongle
    /// down right before each scan and restarts it afterwards (§II-C).
    pub fn set_transmitting(&mut self, on: bool) {
        self.transmitting = on;
    }

    /// The interference this dongle injects into the scan model right now:
    /// `Some` while transmitting, `None` while shut down.
    pub fn interference(&self) -> Option<InterferenceSource> {
        self.transmitting.then_some(InterferenceSource {
            carrier: self.channel,
            tx_power_dbm: self.tx_power_dbm,
            position: self.position,
            duty_cycle: 0.9,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_band() {
        assert!(Crazyradio::new(2400.0, Vec3::ZERO).is_some());
        assert!(Crazyradio::new(2525.0, Vec3::ZERO).is_some());
        assert!(Crazyradio::new(2399.0, Vec3::ZERO).is_none());
    }

    #[test]
    fn retune() {
        let mut r = Crazyradio::new(2400.0, Vec3::ZERO).unwrap();
        assert!(r.set_frequency_mhz(2475.0));
        assert_eq!(r.channel().center_mhz(), 2475.0);
        assert!(!r.set_frequency_mhz(3000.0));
        assert_eq!(r.channel().center_mhz(), 2475.0, "unchanged on failure");
    }

    #[test]
    fn interference_follows_tx_state() {
        let mut r = Crazyradio::new(2450.0, Vec3::new(1.0, 2.0, 0.5)).unwrap();
        let i = r.interference().expect("transmitting");
        assert_eq!(i.position, Vec3::new(1.0, 2.0, 0.5));
        assert_eq!(i.tx_power_dbm, 20.0);
        r.set_transmitting(false);
        assert!(r.interference().is_none());
        r.set_transmitting(true);
        assert!(r.interference().is_some());
    }

    #[test]
    fn addresses() {
        let a = RadioAddress::default_with_id(1);
        let b = RadioAddress::default_with_id(2);
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "0xE7E7E7E701");
        let mut r = Crazyradio::new(2450.0, Vec3::ZERO).unwrap();
        r.set_address(b);
        assert_eq!(r.address(), b);
    }
}
