//! The base-station client: flies one UAV through its leg.
//!
//! This is the paper's "custom Python client" (§II-C): per waypoint it
//! i) sends move setpoints, ii) initiates an on-demand scan, iii) shuts the
//! Crazyradio down while the scan runs, iv) restarts the radio when the scan
//! is done, v) fetches, parses and stores the results, and finally lands the
//! UAV. Scan results travel back as CRTP packets through the UAV's bounded
//! uplink queue, so an undersized `CRTP_TX_QUEUE_SIZE` visibly loses rows.

use rand::Rng;

use aerorem_localization::{AnchorConstellation, RangingConfig};
use aerorem_propagation::{InterferenceSource, RadioEnvironment};
use aerorem_radio::crtp::{CrtpPacket, CrtpPort};
use aerorem_radio::link::{LinkConfig, RadioLink};
use aerorem_radio::Crazyradio;
use aerorem_scanner::parse::{format_cwlap_row, parse_cwlap_row};
use aerorem_scanner::{Esp01Receiver, MeasurementContext, RemReceiver};
use aerorem_simkit::{SimDuration, SimTime, TraceLog};
use aerorem_spatial::Vec3;
use aerorem_uav::firmware::FirmwareConfig;
use aerorem_uav::{FlightMode, Uav, UavId};

use crate::plan::{MissionPlan, UavLeg};
use crate::recovery::{RetryPolicy, ScanFaultInjection};
use crate::samples::{Sample, SampleSet};

/// Physics step of the simulation loop (100 Hz, the Crazyflie's outer
/// control rate).
const DT: f64 = 0.01;
/// Base-station setpoint rate while the radio is up (every 100 ms).
const SETPOINT_PERIOD_MS: u64 = 100;
/// Takeoff / landing budget.
const TAKEOFF_SECS: u64 = 3;

/// How one leg ended.
#[derive(Debug, Clone, PartialEq)]
pub struct LegOutcome {
    /// Which UAV flew.
    pub uav: UavId,
    /// Waypoints actually scanned.
    pub waypoints_visited: usize,
    /// Waypoints planned for the leg.
    pub waypoints_planned: usize,
    /// Time from takeoff command to landed/failed.
    pub active_time: SimDuration,
    /// The leg ended early because the battery went erratic.
    pub aborted_on_battery: bool,
    /// The commander watchdog shut the UAV down mid-air.
    pub shutdown: bool,
    /// Scan-row CRTP packets lost to uplink-queue overflow.
    pub packets_dropped: u64,
    /// Scan rows that vanished entirely: no byte of them survived the
    /// uplink.
    pub rows_lost: u64,
    /// Scan rows that arrived damaged — clipped by a fragment gap or
    /// failing to parse — and were refused admission into the sample set.
    pub rows_corrupted: u64,
    /// Failed scan attempts (driver errors: module fault, invalid state).
    /// With retries enabled one waypoint can contribute several.
    pub receiver_faults: u64,
    /// Scan re-attempts made under the client's [`RetryPolicy`].
    pub scan_retries: u64,
    /// Waypoints whose scan succeeded only thanks to a retry.
    pub scans_recovered: u64,
    /// The location-annotated samples recovered by the client.
    pub samples: SampleSet,
}

/// The base-station client and its Crazyradio.
#[derive(Debug, Clone)]
pub struct BaseStationClient {
    radio: Crazyradio,
    firmware: FirmwareConfig,
    ranging: RangingConfig,
    /// Interference sources present regardless of this client's radio —
    /// e.g. another UAV's active Crazyradio when flying concurrently
    /// instead of the paper's sequential schedule.
    background_interferers: Vec<InterferenceSource>,
    retry: RetryPolicy,
    fault_injection: Option<ScanFaultInjection>,
    trace: TraceLog,
}

impl BaseStationClient {
    /// Creates a client whose dongle sits at `radio_position` transmitting
    /// at `radio_freq_mhz`.
    ///
    /// # Panics
    ///
    /// Panics when `radio_freq_mhz` is outside the nRF24 band
    /// (2400–2525 MHz).
    pub fn new(
        radio_freq_mhz: f64,
        radio_position: Vec3,
        firmware: FirmwareConfig,
        ranging: RangingConfig,
    ) -> Self {
        let radio = Crazyradio::new(radio_freq_mhz, radio_position)
            // lint:allow(panic-path) — documented `# Panics` contract on new: an out-of-band frequency is a configuration bug
            .expect("radio frequency within 2400-2525 MHz");
        BaseStationClient {
            radio,
            firmware,
            ranging,
            background_interferers: Vec::new(),
            retry: RetryPolicy::default(),
            fault_injection: None,
            trace: TraceLog::new(),
        }
    }

    /// Arms deterministic receiver-fault injection: every ESP-01 built by
    /// [`BaseStationClient::fly_leg`] follows the schedule. Used by the
    /// failure-injection suite and the `faults` experiment.
    pub fn with_scan_fault_injection(mut self, injection: ScanFaultInjection) -> Self {
        self.fault_injection = Some(injection);
        self
    }

    /// Replaces the scan [`RetryPolicy`] (default:
    /// [`RetryPolicy::paper_default`]). [`RetryPolicy::none`] restores the
    /// skip-on-first-fault behaviour. The policy is RNG-stream-safe: on a
    /// fault-free leg every policy flies bit-identically.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The active scan retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Adds interference sources that stay active during scans — modelling
    /// *concurrent* UAV operation, which the paper's sequential schedule
    /// deliberately avoids ("to mitigate interference among UAVs, the UAVs
    /// are run in a sequence, not jointly", §III-A).
    pub fn with_background_interference(
        mut self,
        sources: Vec<InterferenceSource>,
    ) -> Self {
        self.background_interferers = sources;
        self
    }

    /// The timestamped operation trace accumulated over flown legs.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Takes the accumulated trace, leaving an empty one.
    pub fn take_trace(&mut self) -> TraceLog {
        std::mem::replace(&mut self.trace, TraceLog::new())
    }

    /// The dongle (for interference inspection in experiments).
    pub fn radio(&self) -> &Crazyradio {
        &self.radio
    }

    /// Flies one leg start-to-land with the paper's ESP-01 Wi-Fi receiver.
    /// Returns the outcome and the simulation time when the leg finished.
    pub fn fly_leg<R: Rng>(
        &mut self,
        plan: &MissionPlan,
        leg: &UavLeg,
        env: &RadioEnvironment,
        anchors: &AnchorConstellation,
        start_time: SimTime,
        rng: &mut R,
    ) -> (LegOutcome, SimTime) {
        let mut receiver = match self.fault_injection {
            Some(inj) => Esp01Receiver::with_fault_injection(inj.period, inj.burst),
            None => Esp01Receiver::new(),
        };
        receiver
            .init()
            // lint:allow(panic-path) — Esp01Receiver::init is infallible in simulation; fault injection only affects measure()
            .expect("simulated ESP-01 always initializes");
        self.fly_leg_with_receiver(plan, leg, env, anchors, start_time, &mut receiver, rng)
    }

    /// Flies one leg with **any** REM-generating receiver — the §II-A
    /// technology-agnostic integration point. The receiver must already be
    /// initialized; driver errors during a scan are counted in
    /// [`LegOutcome::receiver_faults`], retried under the client's
    /// [`RetryPolicy`] (re-init + fresh scan window at the same waypoint),
    /// and the mission continues past waypoints that stay faulted.
    #[allow(clippy::too_many_arguments)]
    pub fn fly_leg_with_receiver<R: Rng>(
        &mut self,
        plan: &MissionPlan,
        leg: &UavLeg,
        env: &RadioEnvironment,
        anchors: &AnchorConstellation,
        start_time: SimTime,
        receiver: &mut dyn RemReceiver,
        rng: &mut R,
    ) -> (LegOutcome, SimTime) {
        let mut now = start_time;
        let mut uav = Uav::new(leg.uav, self.firmware, self.ranging, leg.start);
        uav.set_yaw_target(leg.yaw);
        let mut link = RadioLink::new(LinkConfig {
            tx_queue_size: self.firmware.tx_queue_size,
            latency_ms: 4.0,
        });
        self.radio.set_transmitting(true);
        link.set_radio_on(true);
        self.trace
            .record(now, "client", format!("{} leg start: {} waypoints", leg.uav, leg.waypoints.len()));

        let mut outcome = LegOutcome {
            uav: leg.uav,
            waypoints_visited: 0,
            waypoints_planned: leg.waypoints.len(),
            active_time: SimDuration::ZERO,
            aborted_on_battery: false,
            shutdown: false,
            packets_dropped: 0,
            rows_lost: 0,
            rows_corrupted: 0,
            receiver_faults: 0,
            scan_retries: 0,
            scans_recovered: 0,
            samples: SampleSet::new(),
        };

        // --- Takeoff: climb to the first waypoint's altitude. ---
        let first = leg.waypoints.first().copied().unwrap_or(leg.start);
        let takeoff_target = Vec3::new(leg.start.x, leg.start.y, first.z);
        now = self.fly_phase(
            &mut uav,
            takeoff_target,
            SimDuration::from_secs(TAKEOFF_SECS),
            now,
            anchors,
            rng,
        );

        // --- Waypoints. ---
        for (wp_index, &wp) in leg.waypoints.iter().enumerate() {
            if self.must_abort(&uav, &mut outcome) {
                break;
            }
            // Travel to the waypoint with live setpoints.
            now = self.fly_phase(&mut uav, wp, plan.travel_time, now, anchors, rng);
            if self.must_abort(&uav, &mut outcome) {
                break;
            }

            // Scan: radio down, feedback task up, ESP scanning. A faulted
            // scan is retried under the client's RetryPolicy — receiver
            // re-initialized, fresh scan window — before the waypoint is
            // skipped. On the fault-free path no extra RNG draws or sim
            // steps happen, so every policy flies bit-identically.
            let hold = uav.estimated_position();
            self.radio.set_transmitting(false);
            link.set_radio_on(false);
            self.trace
                .record(now, "radio", format!("off for scan at waypoint {wp_index}"));
            uav.commander_mut()
                .begin_scan_hold(now, hold)
                // lint:allow(panic-path) — asserted by the stock_firmware_cannot_run_the_scan_flow test: flying the scan flow on firmware without the feedback task is a caller bug
                .expect("paper firmware has the feedback task");
            uav.set_scanning(true);
            let mut observations = Vec::new();
            let mut retries = 0u32;
            loop {
                let scan_end = now + plan.scan_time;
                while now < scan_end {
                    now += SimDuration::from_secs_f64(DT);
                    uav.step(now, DT, anchors, rng);
                }
                // The measurement completes at the end of the window; this
                // client's Crazyradio is off, but any *background*
                // interferers (a concurrently flying UAV's radio) remain on
                // the air.
                let mut interferers: Vec<_> =
                    self.radio.interference().into_iter().collect();
                interferers.extend(self.background_interferers.iter().copied());
                let ctx = MeasurementContext::new(env, uav.true_position(), &interferers);
                match receiver
                    .measure(&ctx, rng as &mut dyn rand::RngCore)
                    .and_then(|()| receiver.take_observations())
                {
                    Ok(obs) => {
                        observations = obs;
                        if retries > 0 {
                            outcome.scans_recovered += 1;
                            self.trace.record(
                                now,
                                "client",
                                format!(
                                    "scan recovered at waypoint {wp_index} after {retries} retries"
                                ),
                            );
                        }
                        break;
                    }
                    Err(_) => {
                        outcome.receiver_faults += 1;
                        if retries >= self.retry.max_retries
                            || !matches!(uav.mode(), FlightMode::Airborne)
                        {
                            // Out of attempts (or the airframe is in
                            // trouble): the waypoint yields no rows and the
                            // flight continues.
                            break;
                        }
                        // Hold position for the deterministic backoff while
                        // the receiver re-initializes, then re-scan. A
                        // failed re-init leaves the receiver faulted and
                        // simply burns the attempt.
                        let backoff_end = now + self.retry.backoff(retries);
                        retries += 1;
                        outcome.scan_retries += 1;
                        self.trace.record(
                            now,
                            "client",
                            format!("receiver fault at waypoint {wp_index}; retry {retries}"),
                        );
                        while now < backoff_end {
                            now += SimDuration::from_secs_f64(DT);
                            uav.step(now, DT, anchors, rng);
                        }
                        let _ = receiver.init();
                    }
                }
            }
            uav.set_scanning(false);
            uav.commander_mut().end_scan_hold();

            // Ship the rows through the (still offline) uplink queue as
            // sequence-numbered fragments.
            let annotated_pos = uav.estimated_position();
            let annotated_truth = uav.true_position();
            let mut wire = String::new();
            for o in &observations {
                wire.push_str(&format_cwlap_row(o));
                wire.push('\n');
            }
            let before_drops = link.uplink_dropped();
            // An over-long wire (more rows than 255 fragments can carry)
            // ships nothing; every row then counts as lost below.
            for pkt in CrtpPacket::fragment(CrtpPort::Console, 0, wire.as_bytes())
                .unwrap_or_default()
            {
                let _ = link.enqueue_uplink(pkt);
            }
            outcome.packets_dropped += link.uplink_dropped() - before_drops;

            // Radio back up; fetch and parse. Draining the buffered
            // packets costs one link round trip per packet.
            self.radio.set_transmitting(true);
            link.set_radio_on(true);
            let delivered = link.drain_uplink();
            now += SimDuration::from_secs_f64(
                delivered.len() as f64 * link.config().latency_ms / 1000.0,
            );
            self.trace.record(
                now,
                "radio",
                format!("on; fetched {} packets", delivered.len()),
            );
            // Only rows whose every byte arrived between fragment
            // boundaries are candidates; partial rows at gap edges are
            // quarantined rather than parsed, so a spliced row can never be
            // admitted.
            let recovered_rows = CrtpPacket::reassemble(&delivered).lines();
            let mut recovered = 0u64;
            let mut damaged = recovered_rows.quarantined;
            for line in &recovered_rows.lines {
                match parse_cwlap_row(line) {
                    Ok(obs) => {
                        recovered += 1;
                        outcome.samples.push(Sample {
                            uav: leg.uav,
                            waypoint_index: leg.waypoint_offset + wp_index,
                            position: annotated_pos,
                            true_position: annotated_truth,
                            ssid: obs.ssid,
                            mac: obs.mac,
                            channel: obs.channel,
                            rssi_dbm: obs.rssi_dbm,
                            timestamp: now,
                        });
                    }
                    Err(_) => damaged += 1,
                }
            }
            // Split the shortfall honestly: rows with surviving evidence of
            // damage are "corrupted", the remainder vanished outright. (A
            // gap inside one row can quarantine both its halves, so cap at
            // the true shortfall.)
            let missing = (observations.len() as u64).saturating_sub(recovered);
            let corrupted = damaged.min(missing);
            outcome.rows_corrupted += corrupted;
            outcome.rows_lost += missing - corrupted;
            outcome.waypoints_visited += 1;
        }

        // --- Land at the current horizontal position. ---
        if !outcome.shutdown {
            let here = uav.estimated_position();
            let pad = Vec3::new(here.x, here.y, plan.volume.min().z);
            now = self.fly_phase(
                &mut uav,
                pad,
                SimDuration::from_secs(TAKEOFF_SECS),
                now,
                anchors,
                rng,
            );
        }
        outcome.active_time = now.saturating_since(start_time);
        self.trace.record(
            now,
            "client",
            format!(
                "{} leg end: {}/{} waypoints, {} samples",
                leg.uav,
                outcome.waypoints_visited,
                outcome.waypoints_planned,
                outcome.samples.len()
            ),
        );
        (outcome, now)
    }

    /// Steps physics for `duration` while sending `target` setpoints every
    /// 100 ms (only while the radio is transmitting).
    fn fly_phase<R: Rng + ?Sized>(
        &mut self,
        uav: &mut Uav,
        target: Vec3,
        duration: SimDuration,
        start: SimTime,
        anchors: &AnchorConstellation,
        rng: &mut R,
    ) -> SimTime {
        let mut now = start;
        let end = start + duration;
        let mut next_setpoint = start;
        while now < end {
            if self.radio.is_transmitting() && now >= next_setpoint {
                uav.commander_mut().set_setpoint(now, target);
                next_setpoint = now + SimDuration::from_millis(SETPOINT_PERIOD_MS);
            }
            now += SimDuration::from_secs_f64(DT);
            uav.step(now, DT, anchors, rng);
        }
        now
    }

    fn must_abort(&self, uav: &Uav, outcome: &mut LegOutcome) -> bool {
        match uav.mode() {
            FlightMode::Shutdown => {
                outcome.shutdown = true;
                true
            }
            FlightMode::Erratic => {
                outcome.aborted_on_battery = true;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FleetPlan;
    use aerorem_localization::RangingMode;
    use aerorem_propagation::building::SyntheticBuilding;
    use aerorem_spatial::Aabb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_world() -> (
        MissionPlan,
        RadioEnvironment,
        AnchorConstellation,
        StdRng,
    ) {
        let volume = Aabb::paper_volume();
        // A small 8-waypoint mission keeps the test fast.
        // 8 waypoints spread over the full volume sit farther apart than
        // the paper's 72, so the travel budget is 4 s as in the paper.
        let plan = FleetPlan {
            fleet_size: 1,
            total_waypoints: 8,
            travel_time: SimDuration::from_secs(4),
            scan_time: SimDuration::from_secs(2),
        }
        .expand(volume)
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0xBA5E);
        let env = SyntheticBuilding::paper_like().generate(volume, &mut rng);
        let anchors = AnchorConstellation::volume_corners(volume);
        (plan, env, anchors, rng)
    }

    fn client() -> BaseStationClient {
        BaseStationClient::new(
            2450.0,
            Vec3::new(-1.5, 1.6, 0.8),
            FirmwareConfig::paper_patched(),
            RangingConfig::lps_default(RangingMode::Tdoa),
        )
    }

    #[test]
    fn leg_visits_all_waypoints_and_collects_samples() {
        let (plan, env, anchors, mut rng) = tiny_world();
        let mut c = client();
        let (outcome, end) =
            c.fly_leg(&plan, &plan.legs[0], &env, &anchors, SimTime::ZERO, &mut rng);
        assert_eq!(outcome.waypoints_visited, 8);
        assert!(!outcome.shutdown, "patched firmware survives scans");
        assert!(!outcome.aborted_on_battery, "8 waypoints is well in budget");
        assert!(
            outcome.samples.len() > 8 * 10,
            "expected dozens of rows per scan, got {}",
            outcome.samples.len()
        );
        assert_eq!(outcome.packets_dropped, 0, "patched queue holds a scan");
        assert_eq!(outcome.rows_lost, 0);
        // 8 × (2+2) s + takeoff + landing ≈ 38 s.
        let secs = end.as_secs_f64();
        assert!((48.0..62.0).contains(&secs), "leg took {secs} s");
    }

    #[test]
    fn samples_annotated_near_waypoints() {
        let (plan, env, anchors, mut rng) = tiny_world();
        let mut c = client();
        let (outcome, _) =
            c.fly_leg(&plan, &plan.legs[0], &env, &anchors, SimTime::ZERO, &mut rng);
        for s in outcome.samples.iter() {
            let wp = plan.legs[0].waypoints[s.waypoint_index];
            assert!(
                s.position.distance(wp) < 0.5,
                "sample annotated {} m from its waypoint",
                s.position.distance(wp)
            );
            // Annotation uses the estimate, which tracks truth closely.
            assert!(s.position.distance(s.true_position) < 0.3);
        }
    }

    #[test]
    #[should_panic(expected = "feedback task")]
    fn stock_firmware_cannot_run_the_scan_flow() {
        // The client's scan flow relies on the paper's position-hold
        // feedback task; stock firmware has none. The scanflow module
        // explores what *would* happen without the full patch.
        let (plan, env, anchors, mut rng) = tiny_world();
        let mut c = BaseStationClient::new(
            2450.0,
            Vec3::new(-1.5, 1.6, 0.8),
            FirmwareConfig::stock_2021_06(),
            RangingConfig::lps_default(RangingMode::Tdoa),
        );
        let _ = c.fly_leg(&plan, &plan.legs[0], &env, &anchors, SimTime::ZERO, &mut rng);
    }

    #[test]
    fn radio_is_off_exactly_during_scans() {
        // After a completed leg the radio must be transmitting again.
        let (plan, env, anchors, mut rng) = tiny_world();
        let mut c = client();
        let (_, _) = c.fly_leg(&plan, &plan.legs[0], &env, &anchors, SimTime::ZERO, &mut rng);
        assert!(c.radio().is_transmitting());
    }
}
