//! The full REM-collection campaign: a sequential fleet over one volume.
//!
//! §III-A's demo: two Crazyflies, 36 waypoints each, flown one after the
//! other ("to mitigate interference among UAVs, the UAVs are run in a
//! sequence, not jointly"), collecting 2 696 Wi-Fi samples in ~10 minutes
//! of wall-clock time. [`Campaign::run`] reproduces the whole procedure and
//! returns everything the downstream experiments need.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aerorem_localization::{AnchorConstellation, RangingConfig, RangingMode};
use aerorem_propagation::building::SyntheticBuilding;
use aerorem_propagation::RadioEnvironment;
use aerorem_simkit::{SimDuration, SimTime, TraceEntry, TraceLog};
use aerorem_spatial::{Aabb, Vec3};
use aerorem_uav::firmware::FirmwareConfig;

use crate::basestation::{BaseStationClient, LegOutcome};
use crate::checkpoint::CampaignCheckpoint;
use crate::plan::{FleetPlan, MissionPlan};
use crate::recovery::{RetryPolicy, ScanFaultInjection};
use crate::samples::SampleSet;

/// Everything needed to run a campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Waypoint/fleet/timing plan.
    pub fleet_plan: FleetPlan,
    /// The scan volume.
    pub volume: Aabb,
    /// Generator for the surrounding radio world.
    pub building: SyntheticBuilding,
    /// Firmware on every UAV.
    pub firmware: FirmwareConfig,
    /// UWB configuration. The paper's campaign uses TDoA (§III-A).
    pub ranging: RangingConfig,
    /// Crazyradio carrier frequency in MHz.
    pub radio_freq_mhz: f64,
    /// Crazyradio (base station) position in the volume frame.
    pub radio_position: Vec3,
    /// Pause between legs (swapping UAVs at the base station).
    pub inter_leg_gap: SimDuration,
    /// Memoize the deterministic per-`(AP, position)` link budget while
    /// flying. Scans revisit each waypoint once per beacon per AP, so this
    /// removes the repeated wall-intersection walks; the cached value is
    /// bit-exact, so reports are identical either way.
    pub link_cache: bool,
    /// Scan retry policy installed on the base-station client. RNG-stream
    /// safe: on fault-free legs every policy flies bit-identically.
    pub retry_policy: RetryPolicy,
    /// How many times an aborted leg (battery, watchdog) may be re-flown
    /// over its unvisited tail with a fresh battery. Each re-flight appears
    /// as its own [`LegOutcome`] and draws from an RNG sub-stream derived
    /// from the leg's seed, so `run`/`resume` recover identically. Off
    /// (`0`) in [`CampaignConfig::paper_demo`]: the paper flies two UAVs
    /// precisely because one battery cannot cover the plan, so battery
    /// aborts must stay visible in the demo's shape (the fleet-scaling
    /// experiment depends on it). Recovery campaigns opt in.
    pub max_leg_reflights: usize,
    /// Deterministic receiver-fault schedule for failure-injection runs;
    /// `None` (the default) flies with healthy hardware.
    pub scan_fault_injection: Option<ScanFaultInjection>,
}

impl CampaignConfig {
    /// The paper's §III-A demo configuration.
    pub fn paper_demo() -> Self {
        CampaignConfig {
            fleet_plan: FleetPlan::paper_demo(),
            volume: Aabb::paper_volume(),
            building: SyntheticBuilding::paper_like(),
            firmware: FirmwareConfig::paper_patched(),
            ranging: RangingConfig::lps_default(RangingMode::Tdoa),
            radio_freq_mhz: 2450.0,
            radio_position: Vec3::new(-1.5, 1.6, 0.8),
            inter_leg_gap: SimDuration::from_secs(30),
            link_cache: true,
            retry_policy: RetryPolicy::paper_default(),
            max_leg_reflights: 0,
            scan_fault_injection: None,
        }
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self::paper_demo()
    }
}

/// The result of a campaign run.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// All samples from all UAVs.
    pub samples: SampleSet,
    /// Per-leg outcomes in flight order.
    pub legs: Vec<LegOutcome>,
    /// The generated ground-truth environment (for evaluating predictions).
    pub environment: RadioEnvironment,
    /// The concrete plan that was flown.
    pub plan: MissionPlan,
    /// Total simulated campaign time including inter-leg gaps.
    pub total_time: SimDuration,
    /// Timestamped operation trace of the whole campaign (leg boundaries,
    /// radio state changes, result fetches).
    pub trace: TraceLog,
}

impl CampaignReport {
    /// Formats the §III-A collection statistics block.
    pub fn stats_summary(&self) -> String {
        let per_uav = self.samples.counts_per_uav();
        let mut s = format!(
            "samples: {} total ({})\n",
            self.samples.len(),
            per_uav
                .iter()
                .map(|(u, n)| format!("{u}: {n}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        s.push_str(&format!(
            "distinct MACs: {}, distinct SSIDs: {}\n",
            self.samples.distinct_macs(),
            self.samples.distinct_ssids()
        ));
        if let Some(mean) = self.samples.mean_rssi_dbm() {
            s.push_str(&format!("mean RSS: {mean:.1} dBm\n"));
        }
        for leg in &self.legs {
            s.push_str(&format!(
                "{}: {}/{} waypoints, active {}\n",
                leg.uav, leg.waypoints_visited, leg.waypoints_planned, leg.active_time
            ));
        }
        let (mut retries, mut recovered, mut faults, mut lost, mut corrupted) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for leg in &self.legs {
            retries += leg.scan_retries;
            recovered += leg.scans_recovered;
            faults += leg.receiver_faults;
            lost += leg.rows_lost;
            corrupted += leg.rows_corrupted;
        }
        s.push_str(&format!(
            "recovery: {recovered} scans recovered over {retries} retries \
             ({faults} receiver faults); rows lost {lost}, quarantined {corrupted}\n"
        ));
        s
    }
}

/// The campaign runner.
#[derive(Debug, Clone)]
pub struct Campaign {
    config: CampaignConfig,
}

impl Campaign {
    /// Creates a runner for the given configuration.
    pub fn new(config: CampaignConfig) -> Self {
        Campaign { config }
    }

    /// Runs the whole campaign: generate the world, expand the plan, fly
    /// every leg sequentially, merge the samples.
    ///
    /// The master `rng` is only used to draw one seed for the environment
    /// and one per planned leg; each leg flies on its own `StdRng`
    /// sub-stream. That partitioning is what makes [`Campaign::resume`]
    /// bit-identical to an uninterrupted run: resuming re-derives the same
    /// seeds and simply skips the completed legs.
    ///
    /// # Panics
    ///
    /// Panics if the fleet plan cannot be expanded over the volume (e.g. a
    /// zero-waypoint plan) — campaign configurations are programmer input.
    pub fn run<R: Rng>(&self, rng: &mut R) -> CampaignReport {
        match self.drive(rng, None, None) {
            Driven::Finished(report) => *report,
            Driven::Interrupted(_) => unreachable!("no stop requested"),
        }
    }

    /// Flies the first `legs` planned legs, then snapshots and stops —
    /// simulating a base station interrupted between legs. Feed the
    /// checkpoint (optionally through its text round trip) to
    /// [`Campaign::resume`] with a master RNG seeded identically.
    ///
    /// # Panics
    ///
    /// Panics like [`Campaign::run`] on an inexpandable fleet plan.
    pub fn run_partial<R: Rng>(&self, rng: &mut R, legs: usize) -> CampaignCheckpoint {
        match self.drive(rng, None, Some(legs)) {
            Driven::Interrupted(cp) => cp,
            Driven::Finished(_) => unreachable!("stop_after always snapshots"),
        }
    }

    /// Resumes a checkpointed campaign, flying only the missing legs.
    /// `rng` must be the same master RNG (same seed, fresh state) that
    /// produced the checkpoint; the result is bit-identical to the
    /// uninterrupted [`Campaign::run`].
    ///
    /// # Panics
    ///
    /// Panics like [`Campaign::run`] on an inexpandable fleet plan.
    pub fn resume<R: Rng>(&self, rng: &mut R, checkpoint: &CampaignCheckpoint) -> CampaignReport {
        match self.drive(rng, Some(checkpoint), None) {
            Driven::Finished(report) => *report,
            Driven::Interrupted(_) => unreachable!("no stop requested"),
        }
    }

    fn drive<R: Rng>(
        &self,
        rng: &mut R,
        resume_from: Option<&CampaignCheckpoint>,
        stop_after: Option<usize>,
    ) -> Driven {
        let cfg = &self.config;
        // Partition the master stream: one seed for the world, one per
        // planned leg. Completed legs never need replaying on resume.
        let env_seed: u64 = rng.gen();
        let environment = cfg
            .building
            .generate(cfg.volume, &mut StdRng::seed_from_u64(env_seed));
        environment.set_link_cache_enabled(cfg.link_cache);
        let anchors = AnchorConstellation::volume_corners(cfg.volume);
        let plan = cfg
            .fleet_plan
            .expand(cfg.volume)
            // lint:allow(panic-path) — documented `# Panics` contract on run/resume: an inexpandable fleet plan is a configuration bug
            .expect("campaign fleet plan must be expandable");
        let leg_seeds: Vec<u64> = plan.legs.iter().map(|_| rng.gen()).collect();

        let mut client = BaseStationClient::new(
            cfg.radio_freq_mhz,
            cfg.radio_position,
            cfg.firmware,
            cfg.ranging,
        )
        .with_retry_policy(cfg.retry_policy);
        if let Some(inj) = cfg.scan_fault_injection {
            client = client.with_scan_fault_injection(inj);
        }

        let mut now = SimTime::ZERO;
        let mut samples = SampleSet::new();
        let mut legs: Vec<LegOutcome> = Vec::new();
        let mut trace_prefix: Vec<TraceEntry> = Vec::new();
        let start_leg = match resume_from {
            Some(cp) => {
                now = cp.sim_time;
                for outcome in &cp.outcomes {
                    samples.merge(outcome.samples.clone());
                    legs.push(outcome.clone());
                }
                trace_prefix = cp.trace.clone();
                cp.legs_completed
            }
            None => 0,
        };

        for (i, leg) in plan.legs.iter().enumerate() {
            if i < start_leg {
                continue;
            }
            if i > 0 {
                now += cfg.inter_leg_gap;
            }
            // lint:allow(slice-index) — leg_seeds was built with one entry per plan leg, and i enumerates those legs
            let mut leg_rng = StdRng::seed_from_u64(leg_seeds[i]);
            let (outcome, end) =
                client.fly_leg(&plan, leg, &environment, &anchors, now, &mut leg_rng);
            now = end;
            samples.merge(outcome.samples.clone());
            let mut visited = outcome.waypoints_visited;
            let mut interrupted = outcome.aborted_on_battery || outcome.shutdown;
            legs.push(outcome);

            // An aborted leg's unvisited tail is re-flown with a fresh
            // battery, on an RNG sub-stream derived from the leg seed — so
            // run and resume recover identically.
            let mut current = leg.clone();
            let mut reflight: u64 = 0;
            while interrupted && (reflight as usize) < cfg.max_leg_reflights {
                let Some(tail) = current.recovery_tail(visited) else {
                    break;
                };
                reflight += 1;
                now += cfg.inter_leg_gap; // battery swap
                let mut tail_rng =
                    // lint:allow(slice-index) — same bound as above: i indexes plan.legs, which sized leg_seeds
                    StdRng::seed_from_u64(reflight_seed(leg_seeds[i], reflight));
                let (tail_outcome, end) =
                    client.fly_leg(&plan, &tail, &environment, &anchors, now, &mut tail_rng);
                now = end;
                samples.merge(tail_outcome.samples.clone());
                visited = tail_outcome.waypoints_visited;
                interrupted = tail_outcome.aborted_on_battery || tail_outcome.shutdown;
                legs.push(tail_outcome);
                current = tail;
            }

            if stop_after.is_some_and(|n| i + 1 >= n) {
                return Driven::Interrupted(CampaignCheckpoint {
                    legs_completed: i + 1,
                    sim_time: now,
                    outcomes: legs,
                    trace: merged_trace_entries(&trace_prefix, client.take_trace()),
                });
            }
        }

        // A stop_after beyond the plan still snapshots (a complete one).
        if stop_after.is_some() {
            return Driven::Interrupted(CampaignCheckpoint {
                legs_completed: plan.legs.len(),
                sim_time: now,
                outcomes: legs,
                trace: merged_trace_entries(&trace_prefix, client.take_trace()),
            });
        }

        let mut trace = TraceLog::new();
        for e in merged_trace_entries(&trace_prefix, client.take_trace()) {
            trace.record(e.time, e.component, e.message);
        }
        Driven::Finished(Box::new(CampaignReport {
            samples,
            legs,
            environment,
            plan,
            total_time: now.saturating_since(SimTime::ZERO),
            trace,
        }))
    }
}

/// Outcome of one [`Campaign::drive`] call.
enum Driven {
    Finished(Box<CampaignReport>),
    Interrupted(CampaignCheckpoint),
}

/// The RNG seed for re-flight number `k` (1-based) of a leg — derived, not
/// drawn from the master stream, so resume needs no replay.
fn reflight_seed(leg_seed: u64, k: u64) -> u64 {
    leg_seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn merged_trace_entries(prefix: &[TraceEntry], log: TraceLog) -> Vec<TraceEntry> {
    let mut out = prefix.to_vec();
    out.extend(log.iter().cloned());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerorem_uav::UavId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A reduced-size campaign for unit tests (the full 72-waypoint demo
    /// runs in the integration tests and experiment harness).
    fn small_config() -> CampaignConfig {
        CampaignConfig {
            fleet_plan: FleetPlan {
                fleet_size: 2,
                total_waypoints: 12,
                travel_time: SimDuration::from_secs(2),
                scan_time: SimDuration::from_secs(2),
            },
            ..CampaignConfig::paper_demo()
        }
    }

    #[test]
    fn two_uav_campaign_collects_from_both() {
        let mut rng = StdRng::seed_from_u64(0xCA4);
        let report = Campaign::new(small_config()).run(&mut rng);
        assert_eq!(report.legs.len(), 2);
        for leg in &report.legs {
            assert_eq!(leg.waypoints_visited, 6, "{:?}", leg.uav);
            assert!(!leg.shutdown);
        }
        let counts = report.samples.counts_per_uav();
        assert!(counts[&UavId(0)] > 30);
        assert!(counts[&UavId(1)] > 30);
        assert_eq!(
            report.samples.len(),
            counts.values().sum::<usize>()
        );
    }

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let a = Campaign::new(small_config()).run(&mut StdRng::seed_from_u64(7));
        let b = Campaign::new(small_config()).run(&mut StdRng::seed_from_u64(7));
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.total_time, b.total_time);
        let c = Campaign::new(small_config()).run(&mut StdRng::seed_from_u64(8));
        assert_ne!(a.samples, c.samples, "different seed, different world");
    }

    #[test]
    fn link_cache_does_not_change_the_report() {
        for seed in [3u64, 19, 0xCAFE] {
            let cached = Campaign::new(CampaignConfig {
                link_cache: true,
                ..small_config()
            })
            .run(&mut StdRng::seed_from_u64(seed));
            let uncached = Campaign::new(CampaignConfig {
                link_cache: false,
                ..small_config()
            })
            .run(&mut StdRng::seed_from_u64(seed));
            assert_eq!(cached.samples, uncached.samples, "seed {seed}");
            assert_eq!(cached.total_time, uncached.total_time, "seed {seed}");
            let (hits, misses) = cached.environment.link_cache_stats();
            assert!(hits > 0, "the scan loop must revisit cached links");
            assert_eq!(uncached.environment.link_cache_stats(), (0, 0));
            assert!(misses > 0);
        }
    }

    #[test]
    fn uav_a_side_collects_more_than_uav_b_side() {
        // UAV A flies the −y slab (toward the building core), B the +y slab
        // behind the thick wall: A should average more samples (Figure 6).
        let mut total_a = 0usize;
        let mut total_b = 0usize;
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(0xF16 + seed);
            let report = Campaign::new(small_config()).run(&mut rng);
            let counts = report.samples.counts_per_uav();
            total_a += counts.get(&UavId(0)).copied().unwrap_or(0);
            total_b += counts.get(&UavId(1)).copied().unwrap_or(0);
        }
        assert!(
            total_a > total_b,
            "UAV A {total_a} should out-collect UAV B {total_b}"
        );
    }

    #[test]
    fn stats_summary_mentions_key_fields() {
        let mut rng = StdRng::seed_from_u64(1);
        let report = Campaign::new(small_config()).run(&mut rng);
        let s = report.stats_summary();
        assert!(s.contains("samples:"));
        assert!(s.contains("distinct MACs"));
        assert!(s.contains("mean RSS"));
        assert!(s.contains("UAV A"));
        assert!(s.contains("UAV B"));
    }

    #[test]
    fn trace_records_the_radio_discipline() {
        let mut rng = StdRng::seed_from_u64(0x7AACE);
        let report = Campaign::new(small_config()).run(&mut rng);
        // One radio-off and one radio-on event per scanned waypoint.
        let offs = report
            .trace
            .by_component("radio")
            .filter(|e| e.message.starts_with("off"))
            .count();
        let ons = report
            .trace
            .by_component("radio")
            .filter(|e| e.message.starts_with("on"))
            .count();
        let scanned: usize = report.legs.iter().map(|l| l.waypoints_visited).sum();
        assert_eq!(offs, scanned);
        assert_eq!(ons, scanned);
        // Leg boundaries are recorded for both UAVs.
        let boundaries: Vec<&str> = report
            .trace
            .by_component("client")
            .map(|e| e.message.as_str())
            .collect();
        assert_eq!(boundaries.len(), 4, "start+end per leg: {boundaries:?}");
        assert!(boundaries[0].contains("UAV A leg start"));
        assert!(boundaries[3].contains("UAV B leg end"));
        // Timestamps are monotone.
        let mut last = aerorem_simkit::SimTime::ZERO;
        for e in report.trace.iter() {
            assert!(e.time >= last);
            last = e.time;
        }
    }

    #[test]
    fn inter_leg_gap_counts_toward_total_time() {
        let mut cfg = small_config();
        cfg.inter_leg_gap = SimDuration::from_secs(100);
        let mut rng = StdRng::seed_from_u64(2);
        let with_gap = Campaign::new(cfg).run(&mut rng);
        let mut rng = StdRng::seed_from_u64(2);
        let without = Campaign::new(CampaignConfig {
            inter_leg_gap: SimDuration::ZERO,
            ..small_config()
        })
        .run(&mut rng);
        let diff =
            with_gap.total_time.as_secs_f64() - without.total_time.as_secs_f64();
        assert!((diff - 100.0).abs() < 1.0, "gap diff {diff}");
    }
}
