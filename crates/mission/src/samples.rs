//! Location-annotated samples and the dataset they accumulate into.
//!
//! Each detected AP per scan yields one [`Sample`]: the paper's
//! `⟨ssid, rssi, mac, channel⟩` tuple annotated with the UAV's *estimated*
//! position (that is the whole point of the UWB system) and collection
//! metadata. The ground-truth position is carried alongside for simulation-
//! side error analysis, but the ML layer never sees it.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use aerorem_numerics::stats::Histogram;
use aerorem_propagation::ap::{MacAddress, Ssid};
use aerorem_propagation::WifiChannel;
use aerorem_simkit::SimTime;
use aerorem_spatial::Vec3;
use aerorem_uav::UavId;

/// One location-annotated signal-quality sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Which UAV collected it.
    pub uav: UavId,
    /// Index of the waypoint in that UAV's leg.
    pub waypoint_index: usize,
    /// The UAV's own position estimate at scan time — the location
    /// annotation used downstream.
    pub position: Vec3,
    /// Simulation ground truth, for localization-error analysis only.
    pub true_position: Vec3,
    /// Advertised network name.
    pub ssid: Ssid,
    /// Transmitter MAC — the grouping key for the ML layer.
    pub mac: MacAddress,
    /// Channel the AP was heard on.
    pub channel: WifiChannel,
    /// Reported RSS in whole dBm.
    pub rssi_dbm: i32,
    /// When the sample was taken.
    pub timestamp: SimTime,
}

/// A collection of samples with the summary statistics the paper reports.
///
/// # Examples
///
/// ```
/// use aerorem_mission::SampleSet;
///
/// let set = SampleSet::new();
/// assert!(set.is_empty());
/// assert_eq!(set.mean_rssi_dbm(), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleSet {
    samples: Vec<Sample>,
}

impl SampleSet {
    /// An empty set.
    pub fn new() -> Self {
        SampleSet::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Appends every sample of `other`.
    pub fn merge(&mut self, other: SampleSet) {
        self.samples.extend(other.samples);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples, in collection order.
    pub fn as_slice(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> impl Iterator<Item = &Sample> {
        self.samples.iter()
    }

    /// Samples collected by one UAV.
    pub fn by_uav(&self, uav: UavId) -> impl Iterator<Item = &Sample> {
        self.samples.iter().filter(move |s| s.uav == uav)
    }

    /// Count per UAV, ordered by UAV id — "1495 by UAV A and 1201 by UAV B".
    pub fn counts_per_uav(&self) -> BTreeMap<UavId, usize> {
        let mut m = BTreeMap::new();
        for s in &self.samples {
            *m.entry(s.uav).or_insert(0) += 1;
        }
        m
    }

    /// Count per (UAV, waypoint) — the quantity of Figure 6.
    pub fn counts_per_location(&self) -> BTreeMap<(UavId, usize), usize> {
        let mut m = BTreeMap::new();
        for s in &self.samples {
            *m.entry((s.uav, s.waypoint_index)).or_insert(0) += 1;
        }
        m
    }

    /// Number of distinct MAC addresses (the paper saw 73).
    pub fn distinct_macs(&self) -> usize {
        self.samples
            .iter()
            .map(|s| s.mac)
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Number of distinct SSIDs (the paper saw 49).
    pub fn distinct_ssids(&self) -> usize {
        self.samples
            .iter()
            .map(|s| s.ssid.clone())
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Mean reported RSS in dBm (the paper: ≈ −73 dBm), or `None` if empty.
    pub fn mean_rssi_dbm(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(
            self.samples.iter().map(|s| f64::from(s.rssi_dbm)).sum::<f64>()
                / self.samples.len() as f64,
        )
    }

    /// Per-MAC sample counts (preprocessing drops MACs below 16).
    pub fn counts_per_mac(&self) -> BTreeMap<MacAddress, usize> {
        let mut m = BTreeMap::new();
        for s in &self.samples {
            *m.entry(s.mac).or_insert(0) += 1;
        }
        m
    }

    /// Histogram of sample counts along one axis in bins of `width` meters —
    /// the Figure-7 plot. `axis` is 0 = x, 1 = y, 2 = z.
    ///
    /// Returns `None` when the set is empty, the axis invalid, or the width
    /// non-positive.
    pub fn axis_histogram(&self, axis: usize, width: f64) -> Option<Histogram> {
        if self.samples.is_empty() || axis > 2 {
            return None;
        }
        let coord = |s: &Sample| match axis {
            0 => s.position.x,
            1 => s.position.y,
            _ => s.position.z,
        };
        let lo = self
            .samples
            .iter()
            .map(coord)
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .samples
            .iter()
            .map(coord)
            .fold(f64::NEG_INFINITY, f64::max);
        // Center bins on multiples of the width: waypoint columns land in
        // the middle of a bin instead of splitting across an edge under
        // centimeter-level annotation noise.
        let lo = (lo / width).floor() * width - width / 2.0;
        let hi = (hi / width).ceil() * width + width / 2.0 + 1e-9;
        let mut h = Histogram::new(lo, hi, width)?;
        h.extend(self.samples.iter().map(coord));
        Some(h)
    }

    /// Mean localization error of the annotations (truth vs estimate).
    pub fn mean_annotation_error_m(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(
            self.samples
                .iter()
                .map(|s| s.position.distance(s.true_position))
                .sum::<f64>()
                / self.samples.len() as f64,
        )
    }
}

impl FromIterator<Sample> for SampleSet {
    fn from_iter<I: IntoIterator<Item = Sample>>(iter: I) -> Self {
        SampleSet {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<Sample> for SampleSet {
    fn extend<I: IntoIterator<Item = Sample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

impl<'a> IntoIterator for &'a SampleSet {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(uav: u8, wp: usize, mac: u32, rssi: i32, pos: Vec3) -> Sample {
        Sample {
            uav: UavId(uav),
            waypoint_index: wp,
            position: pos,
            true_position: pos + Vec3::splat(0.05),
            ssid: Ssid::new(format!("net{mac}")),
            mac: MacAddress::from_index(mac),
            channel: WifiChannel::new(6).unwrap(),
            rssi_dbm: rssi,
            timestamp: SimTime::from_secs(1),
        }
    }

    #[test]
    fn stats_on_small_set() {
        let mut set = SampleSet::new();
        set.push(sample(0, 0, 1, -70, Vec3::new(0.2, 0.2, 1.0)));
        set.push(sample(0, 1, 1, -74, Vec3::new(0.8, 0.2, 1.0)));
        set.push(sample(1, 0, 2, -76, Vec3::new(2.2, 3.0, 1.0)));
        assert_eq!(set.len(), 3);
        assert_eq!(set.counts_per_uav()[&UavId(0)], 2);
        assert_eq!(set.counts_per_uav()[&UavId(1)], 1);
        assert_eq!(set.distinct_macs(), 2);
        assert_eq!(set.distinct_ssids(), 2);
        assert_eq!(set.mean_rssi_dbm(), Some(-220.0 / 3.0));
        assert_eq!(set.counts_per_mac()[&MacAddress::from_index(1)], 2);
        assert_eq!(set.counts_per_location()[&(UavId(0), 1)], 1);
        let err = set.mean_annotation_error_m().unwrap();
        assert!((err - 0.05 * 3f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn empty_set_stats() {
        let set = SampleSet::new();
        assert_eq!(set.mean_rssi_dbm(), None);
        assert_eq!(set.mean_annotation_error_m(), None);
        assert!(set.axis_histogram(0, 0.5).is_none());
        assert!(set.counts_per_uav().is_empty());
    }

    #[test]
    fn axis_histogram_bins() {
        let mut set = SampleSet::new();
        for i in 0..10 {
            set.push(sample(0, i, 1, -70, Vec3::new(i as f64 * 0.3, 0.0, 1.0)));
        }
        let h = set.axis_histogram(0, 0.5).unwrap();
        assert_eq!(h.total(), 10);
        assert_eq!(h.outliers(), 0);
        // x from 0 to 2.7 → 6 bins of 0.5.
        assert!(h.counts().len() >= 6);
        assert!(set.axis_histogram(5, 0.5).is_none());
    }

    #[test]
    fn merge_and_collect() {
        let a: SampleSet = (0..5)
            .map(|i| sample(0, i, 1, -70, Vec3::splat(i as f64)))
            .collect();
        let b: SampleSet = (0..3)
            .map(|i| sample(1, i, 2, -80, Vec3::splat(i as f64)))
            .collect();
        let mut merged = a.clone();
        merged.merge(b);
        assert_eq!(merged.len(), 8);
        assert_eq!(merged.by_uav(UavId(1)).count(), 3);
        let mut extended = SampleSet::new();
        extended.extend(a.iter().cloned());
        assert_eq!(extended.len(), 5);
        assert_eq!((&merged).into_iter().count(), 8);
    }

    #[test]
    fn sample_set_is_serializable() {
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<SampleSet>();
        assert_serde::<Sample>();
    }
}
