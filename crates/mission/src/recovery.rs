//! Fault-recovery policies for the mission layer.
//!
//! The paper's firmware patch set (§II-C) keeps the *UAV* alive through
//! radio-off scans and watchdog resets; this module gives the *base
//! station* the matching behaviour: a faulted receiver is re-initialized
//! and the scan re-attempted at the same waypoint — bounded and
//! deterministic — instead of silently losing every remaining waypoint of
//! the leg.

use aerorem_simkit::SimDuration;
use serde::{Deserialize, Serialize};

/// A bounded, deterministic retry schedule for failed scans.
///
/// The policy is **RNG-stream-safe**: it draws no randomness itself, and on
/// the fault-free path it changes nothing — a campaign that never faults
/// produces bit-identical results under any policy. Retries only add work
/// (and battery drain) *after* a fault, where the sample stream has already
/// diverged from the fault-free run.
///
/// # Examples
///
/// ```
/// use aerorem_mission::recovery::RetryPolicy;
/// use aerorem_simkit::SimDuration;
///
/// let policy = RetryPolicy::paper_default();
/// assert_eq!(policy.max_retries, 2);
/// assert_eq!(policy.backoff(0), SimDuration::from_millis(500));
/// assert_eq!(policy.backoff(1), SimDuration::from_millis(1000));
/// assert_eq!(RetryPolicy::none().max_retries, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Re-attempts after the first failed scan of a waypoint (0 = the old
    /// skip-on-first-fault behaviour).
    pub max_retries: u32,
    /// Hold duration before the first retry; the UAV keeps station on the
    /// feedback task while the receiver re-initializes.
    pub base_backoff: SimDuration,
    /// Multiplier applied to the backoff on each further retry.
    pub backoff_multiplier: u32,
}

impl RetryPolicy {
    /// No retries: a scan fault skips the waypoint immediately.
    pub const fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: SimDuration::ZERO,
            backoff_multiplier: 1,
        }
    }

    /// Two retries with 500 ms exponential backoff — comfortably inside a
    /// waypoint's battery budget (a retry costs one backoff hold plus one
    /// extra scan window).
    pub const fn paper_default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: SimDuration::from_millis(500),
            backoff_multiplier: 2,
        }
    }

    /// The hold duration before retry number `retry` (0-based):
    /// `base_backoff * backoff_multiplier^retry`.
    pub fn backoff(&self, retry: u32) -> SimDuration {
        let factor = u64::from(self.backoff_multiplier).saturating_pow(retry);
        self.base_backoff * factor
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::paper_default()
    }
}

/// Deterministic receiver-fault schedule for failure-injection runs.
///
/// Within every `period` scan attempts of a leg, the last `burst`
/// deterministically fault (see
/// `Esp01Receiver::with_fault_injection`). A `burst` of 2 or more
/// survives one re-init, modelling a *sticky* module fault that only a
/// multi-retry policy can ride out. Draws no randomness and the counter
/// resets with each leg's fresh receiver, so checkpoint/resume stays
/// bit-identical.
///
/// # Examples
///
/// ```
/// use aerorem_mission::recovery::ScanFaultInjection;
///
/// let inj = ScanFaultInjection { period: 3, burst: 2 };
/// assert!(inj.burst < inj.period, "some scans must still succeed");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScanFaultInjection {
    /// Schedule length in measure attempts.
    pub period: u32,
    /// Consecutive faulted attempts at the end of each period.
    pub burst: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff: SimDuration::from_millis(100),
            backoff_multiplier: 3,
        };
        assert_eq!(p.backoff(0), SimDuration::from_millis(100));
        assert_eq!(p.backoff(1), SimDuration::from_millis(300));
        assert_eq!(p.backoff(2), SimDuration::from_millis(900));
    }

    #[test]
    fn none_policy_is_inert() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.backoff(0), SimDuration::ZERO);
        assert_eq!(p.backoff(7), SimDuration::ZERO);
    }

    #[test]
    fn default_is_the_paper_default() {
        assert_eq!(RetryPolicy::default(), RetryPolicy::paper_default());
    }
}
