//! The §III-A endurance test.
//!
//! "To get a notion of the UAV's endurance in a baseline scenario, a UAV was
//! manually flown … considering a fully charged standard battery, eight
//! active anchors in TWR mode, periodic scanning mode with an interval of
//! 8 sec, with a beacon scan duration of around 2 sec. The UAV was kept in
//! a steady position about 1 m above ground level … The UAV was able to
//! perform 36 scans over a timespan of 6 min and 12 sec before it
//! experienced erratic behaviour."

use rand::Rng;

use aerorem_localization::{AnchorConstellation, RangingConfig, RangingMode};
use aerorem_simkit::{SimDuration, SimTime};
use aerorem_spatial::{Aabb, Vec3};
use aerorem_uav::firmware::FirmwareConfig;
use aerorem_uav::{Uav, UavId};

/// Parameters of the endurance test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceConfig {
    /// Hover height above ground, meters (paper: ~1 m).
    pub hover_height_m: f64,
    /// Gap between scans (paper: 8 s).
    pub scan_interval: SimDuration,
    /// Scan duration (paper: ~2 s).
    pub scan_duration: SimDuration,
    /// Safety cap on simulated time.
    pub max_time: SimDuration,
}

impl EnduranceConfig {
    /// The paper's §III-A test parameters.
    pub fn paper() -> Self {
        EnduranceConfig {
            hover_height_m: 1.0,
            scan_interval: SimDuration::from_secs(8),
            scan_duration: SimDuration::from_secs(2),
            max_time: SimDuration::from_secs(900),
        }
    }
}

impl Default for EnduranceConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The outcome of an endurance run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceResult {
    /// Scans completed before the battery went erratic.
    pub scans_completed: usize,
    /// Flight time until erratic behaviour.
    pub endurance: SimDuration,
    /// Battery fraction remaining at the end (≈ the erratic threshold).
    pub final_battery_fraction: f64,
}

/// Runs the endurance test: hover with both decks, eight TWR anchors, and
/// periodic scans until the battery goes erratic.
///
/// The UAV receives fresh setpoints every 100 ms (the radio stays up in
/// this baseline test — the paper's pilot flew it manually), and the ESP
/// deck draws scan power for `scan_duration` out of every
/// `scan_interval + scan_duration` period.
pub fn run_endurance_test<R: Rng + ?Sized>(cfg: &EnduranceConfig, rng: &mut R) -> EnduranceResult {
    let volume = Aabb::paper_volume();
    let anchors = AnchorConstellation::volume_corners(volume);
    let ranging = RangingConfig::lps_default(RangingMode::Twr);
    let start = Vec3::new(volume.center().x, volume.center().y, 0.0);
    let mut uav = Uav::new(UavId(0), FirmwareConfig::paper_patched(), ranging, start);
    let hover = Vec3::new(start.x, start.y, cfg.hover_height_m);

    let dt = 0.01;
    let period = cfg.scan_interval + cfg.scan_duration;
    let mut now = SimTime::ZERO;
    let mut scans_completed = 0usize;
    let mut scanning = false;

    while !uav.battery().is_erratic() && now.saturating_since(SimTime::ZERO) < cfg.max_time {
        now += SimDuration::from_secs_f64(dt);
        // Scan phase: the last `scan_duration` of each period.
        let phase = SimDuration::from_micros(now.as_micros() % period.as_micros());
        let in_scan = phase >= cfg.scan_interval;
        if in_scan && !scanning {
            scanning = true;
        } else if !in_scan && scanning {
            scanning = false;
            scans_completed += 1;
        }
        uav.set_scanning(scanning);
        uav.commander_mut().set_setpoint(now, hover);
        uav.step(now, dt, &anchors, rng);
    }

    EnduranceResult {
        scans_completed,
        endurance: now.saturating_since(SimTime::ZERO),
        final_battery_fraction: uav.battery().remaining_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn endurance_matches_paper_ballpark() {
        let mut rng = StdRng::seed_from_u64(0xED0);
        let r = run_endurance_test(&EnduranceConfig::paper(), &mut rng);
        // Paper: 36 scans in 372 s. Accept the right neighbourhood.
        let secs = r.endurance.as_secs_f64();
        assert!(
            (320.0..430.0).contains(&secs),
            "endurance {secs} s vs paper 372 s"
        );
        assert!(
            (30..=44).contains(&r.scans_completed),
            "{} scans vs paper 36",
            r.scans_completed
        );
        // Ends at the erratic threshold, not at zero.
        assert!(r.final_battery_fraction > 0.0);
        assert!(r.final_battery_fraction < 0.08);
    }

    #[test]
    fn longer_interval_fewer_scans_more_endurance() {
        let mut rng = StdRng::seed_from_u64(1);
        let fast = run_endurance_test(&EnduranceConfig::paper(), &mut rng);
        let slow_cfg = EnduranceConfig {
            scan_interval: SimDuration::from_secs(30),
            ..EnduranceConfig::paper()
        };
        let slow = run_endurance_test(&slow_cfg, &mut rng);
        assert!(slow.scans_completed < fast.scans_completed);
        assert!(slow.endurance >= fast.endurance);
    }

    #[test]
    fn max_time_caps_the_run() {
        let mut rng = StdRng::seed_from_u64(2);
        let capped = run_endurance_test(
            &EnduranceConfig {
                max_time: SimDuration::from_secs(10),
                ..EnduranceConfig::paper()
            },
            &mut rng,
        );
        assert!(capped.endurance.as_secs_f64() <= 10.5);
        assert!(capped.final_battery_fraction > 0.9);
    }
}
