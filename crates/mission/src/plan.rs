//! Mission planning: waypoint generation and fleet partitioning.
//!
//! §III-A: "72 locations evenly spread over the volume were identified, with
//! each UAV responsible for scanning 36 of them. The UAVs had 4 sec to fly
//! from a location to another and 3 sec for scanning." The client is
//! "configured to be able to control multiple UAVs with a matching set of
//! waypoints and parameters such as radio address, starting position, and
//! yaw", and scaling "can be done by simply adding sets of waypoints and
//! above-mentioned parameters".

use serde::{Deserialize, Serialize};

use aerorem_simkit::SimDuration;
use aerorem_spatial::grid::{GridError, WaypointGrid};
use aerorem_spatial::{Aabb, Vec3};
use aerorem_uav::UavId;

/// The per-UAV portion of a mission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UavLeg {
    /// Which UAV flies this leg.
    pub uav: UavId,
    /// CRTP radio address byte (fleet UAVs get distinct addresses).
    pub radio_address_id: u8,
    /// Ground start position (also the landing spot).
    pub start: Vec3,
    /// Initial yaw in radians.
    pub yaw: f64,
    /// Waypoints in visit order.
    pub waypoints: Vec<Vec3>,
    /// Index of `waypoints[0]` within the originally planned leg. Zero for
    /// planned legs; a recovery re-flight of the unvisited tail carries the
    /// offset so samples keep their original waypoint annotation.
    pub waypoint_offset: usize,
}

impl UavLeg {
    /// The leg that re-flies this leg's unvisited tail after `visited`
    /// waypoints were completed, preserving waypoint annotations.
    pub fn recovery_tail(&self, visited: usize) -> Option<UavLeg> {
        if visited >= self.waypoints.len() {
            return None;
        }
        let remaining = self.waypoints.get(visited..)?.to_vec();
        let first = *remaining.first()?;
        Some(UavLeg {
            uav: self.uav,
            radio_address_id: self.radio_address_id,
            // A fresh battery launches from under the first missing
            // waypoint, like a planned leg.
            start: Vec3::new(first.x, first.y, self.start.z),
            yaw: self.yaw,
            waypoints: remaining,
            waypoint_offset: self.waypoint_offset + visited,
        })
    }
    /// Total distance along the leg from start through all waypoints.
    pub fn path_length(&self) -> f64 {
        let mut total = 0.0;
        let mut prev = self.start;
        for w in &self.waypoints {
            total += prev.distance(*w);
            prev = *w;
        }
        total
    }
}

/// A full multi-UAV mission plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionPlan {
    /// The scan volume.
    pub volume: Aabb,
    /// Time budget to fly between consecutive waypoints.
    pub travel_time: SimDuration,
    /// Time budget for each scan (radio off for this long).
    pub scan_time: SimDuration,
    /// Per-UAV legs, flown **sequentially** to avoid inter-UAV
    /// interference (§III-A).
    pub legs: Vec<UavLeg>,
}

/// Builder-style entry point for plans.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetPlan {
    /// Number of UAVs flying sequentially.
    pub fleet_size: usize,
    /// Total waypoints across the fleet.
    pub total_waypoints: usize,
    /// Travel budget between waypoints.
    pub travel_time: SimDuration,
    /// Scan duration at each waypoint.
    pub scan_time: SimDuration,
}

impl FleetPlan {
    /// The paper's demo: 2 UAVs, 72 waypoints, 4 s travel, 3 s scan.
    pub fn paper_demo() -> Self {
        FleetPlan {
            fleet_size: 2,
            total_waypoints: 72,
            travel_time: SimDuration::from_secs(4),
            scan_time: SimDuration::from_secs(3),
        }
    }

    /// Expands the fleet plan over a volume into a concrete
    /// [`MissionPlan`].
    ///
    /// Waypoints are an even lattice over the volume; the fleet split is
    /// **spatial along the y axis** — each UAV owns a contiguous slab of the
    /// room, matching the paper's deployment where UAV B's region sat
    /// against the thicker +y wall. UAV 0 gets the −y (building-core) side.
    ///
    /// # Errors
    ///
    /// Propagates [`GridError`] for a zero waypoint count or an invalid
    /// fleet size.
    pub fn expand(&self, volume: Aabb) -> Result<MissionPlan, GridError> {
        let grid = WaypointGrid::even(volume, self.total_waypoints)?;
        if self.fleet_size == 0 || self.fleet_size > grid.len() {
            return Err(GridError::BadFleetSize {
                fleet: self.fleet_size,
                waypoints: grid.len(),
            });
        }
        // Sort waypoints by y, then chunk into fleet_size contiguous slabs.
        let mut pts: Vec<Vec3> = grid.as_slice().to_vec();
        pts.sort_by(|a, b| {
            a.y.total_cmp(&b.y)
                .then(a.z.total_cmp(&b.z))
                .then(a.x.total_cmp(&b.x))
        });
        let n = pts.len();
        let base = n / self.fleet_size;
        let extra = n % self.fleet_size;
        let mut legs = Vec::with_capacity(self.fleet_size);
        let mut cursor = 0usize;
        for i in 0..self.fleet_size {
            let take = base + usize::from(i < extra);
            // lint:allow(slice-index) — Σ take over all legs is exactly n, so cursor + take ≤ pts.len()
            let mut leg_points = pts[cursor..cursor + take].to_vec();
            cursor += take;
            order_boustrophedon(&mut leg_points);
            // Start on the floor under the leg's first waypoint.
            let first = leg_points.first().copied().unwrap_or(volume.center());
            let start = Vec3::new(first.x, first.y, volume.min().z);
            legs.push(UavLeg {
                uav: UavId(i as u8),
                radio_address_id: i as u8 + 1,
                start,
                yaw: 0.0,
                waypoints: leg_points,
                waypoint_offset: 0,
            });
        }
        Ok(MissionPlan {
            volume,
            travel_time: self.travel_time,
            scan_time: self.scan_time,
            legs,
        })
    }
}

impl Default for FleetPlan {
    fn default() -> Self {
        Self::paper_demo()
    }
}

/// Orders points into a short tour: z layers bottom-up, snaking rows in y,
/// snaking x within rows — the same serpentine used by `WaypointGrid`.
fn order_boustrophedon(points: &mut [Vec3]) {
    points.sort_by(|a, b| {
        a.z.total_cmp(&b.z)
            .then(a.y.total_cmp(&b.y))
            .then(a.x.total_cmp(&b.x))
    });
    // Group into (z, y) rows and reverse every other row for continuity.
    let mut rows: Vec<&mut [Vec3]> = Vec::new();
    let mut rest: &mut [Vec3] = points;
    while !rest.is_empty() {
        let key = (rest[0].z, rest[0].y);
        let len = rest
            .iter()
            .take_while(|p| (p.z, p.y) == key)
            .count();
        let (row, tail) = rest.split_at_mut(len);
        rows.push(row);
        rest = tail;
    }
    for (i, row) in rows.iter_mut().enumerate() {
        if i % 2 == 1 {
            row.reverse();
        }
    }
}

impl MissionPlan {
    /// The expected on-mission time of one leg, excluding takeoff/landing:
    /// `waypoints × (travel + scan)`.
    pub fn leg_duration(&self, leg: &UavLeg) -> SimDuration {
        (self.travel_time + self.scan_time) * leg.waypoints.len() as u64
    }

    /// The paper's sanity check: "scanning 36 locations was expected to take
    /// at least 4 min and 12 sec".
    pub fn total_scan_plus_travel(&self) -> SimDuration {
        self.legs
            .iter()
            .map(|l| self.leg_duration(l))
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_plan() -> MissionPlan {
        FleetPlan::paper_demo().expand(Aabb::paper_volume()).unwrap()
    }

    #[test]
    fn paper_demo_splits_36_36() {
        let plan = demo_plan();
        assert_eq!(plan.legs.len(), 2);
        assert_eq!(plan.legs[0].waypoints.len(), 36);
        assert_eq!(plan.legs[1].waypoints.len(), 36);
        // Distinct radio addresses.
        assert_ne!(
            plan.legs[0].radio_address_id,
            plan.legs[1].radio_address_id
        );
    }

    #[test]
    fn leg_duration_matches_paper_expectation() {
        // 36 × (4 + 3) s = 252 s = 4 min 12 s.
        let plan = demo_plan();
        let d = plan.leg_duration(&plan.legs[0]);
        assert_eq!(d.as_millis(), 252_000);
    }

    #[test]
    fn spatial_split_along_y() {
        let plan = demo_plan();
        let max_y_a = plan.legs[0]
            .waypoints
            .iter()
            .map(|p| p.y)
            .fold(f64::MIN, f64::max);
        let min_y_b = plan.legs[1]
            .waypoints
            .iter()
            .map(|p| p.y)
            .fold(f64::MAX, f64::min);
        assert!(
            max_y_a < min_y_b,
            "UAV A slab (y ≤ {max_y_a}) must be below UAV B slab (y ≥ {min_y_b})"
        );
    }

    #[test]
    fn all_waypoints_inside_volume_and_unique() {
        let plan = demo_plan();
        let v = Aabb::paper_volume();
        let mut all: Vec<Vec3> = plan
            .legs
            .iter()
            .flat_map(|l| l.waypoints.iter().copied())
            .collect();
        assert_eq!(all.len(), 72);
        assert!(all.iter().all(|p| v.contains(*p)));
        all.sort_by(|a, b| (a.x, a.y, a.z).partial_cmp(&(b.x, b.y, b.z)).unwrap());
        for w in all.windows(2) {
            assert!(w[0].distance(w[1]) > 1e-9, "duplicate waypoint");
        }
    }

    #[test]
    fn legs_have_short_tour_steps() {
        let plan = demo_plan();
        for leg in &plan.legs {
            for w in leg.waypoints.windows(2) {
                let step = w[0].distance(w[1]);
                // Budget: 4 s at 0.6 m/s = 2.4 m; steps must fit comfortably.
                assert!(step < 1.6, "tour step {step} m too long for budget");
            }
        }
    }

    #[test]
    fn starts_on_floor_under_first_waypoint() {
        let plan = demo_plan();
        for leg in &plan.legs {
            assert_eq!(leg.start.z, Aabb::paper_volume().min().z);
            assert!(leg.start.horizontal_distance(leg.waypoints[0]) < 1e-9);
        }
    }

    #[test]
    fn path_length_positive() {
        let plan = demo_plan();
        for leg in &plan.legs {
            assert!(leg.path_length() > 5.0);
        }
    }

    #[test]
    fn scaling_to_more_uavs() {
        let plan = FleetPlan {
            fleet_size: 4,
            total_waypoints: 72,
            ..FleetPlan::paper_demo()
        }
        .expand(Aabb::paper_volume())
        .unwrap();
        assert_eq!(plan.legs.len(), 4);
        for leg in &plan.legs {
            assert_eq!(leg.waypoints.len(), 18);
        }
        let ids: Vec<u8> = plan.legs.iter().map(|l| l.uav.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bad_fleet_rejected() {
        let bad = FleetPlan {
            fleet_size: 0,
            ..FleetPlan::paper_demo()
        };
        assert!(bad.expand(Aabb::paper_volume()).is_err());
        let too_many = FleetPlan {
            fleet_size: 100,
            total_waypoints: 10,
            ..FleetPlan::paper_demo()
        };
        assert!(too_many.expand(Aabb::paper_volume()).is_err());
    }

    #[test]
    fn total_time_sums_legs() {
        let plan = demo_plan();
        assert_eq!(plan.total_scan_plus_travel().as_millis(), 2 * 252_000);
    }
}
