//! Mission layer: waypoint planning, the base-station client, and the
//! campaign runner.
//!
//! This crate is the equivalent of the paper's "custom Python client"
//! (§II-C, §III-A) plus the experiment procedures built on it:
//!
//! * [`samples`] — location-annotated samples and the [`samples::SampleSet`]
//!   the ML layer consumes.
//! * [`plan`] — mission plans: N waypoints evenly spread over the volume,
//!   split across a sequential fleet, with per-UAV start position, radio
//!   address, and timing budget (4 s travel + 3 s scan in the paper).
//! * [`basestation`] — the client: drives one UAV at a time through its
//!   leg, shutting the Crazyradio down during every scan and fetching the
//!   buffered results afterwards.
//! * [`campaign`] — the full two-UAV demo of §III-A, producing the dataset
//!   behind Figures 6–8 and the collection statistics.
//! * [`endurance`] — the §III-A endurance test: hover at 1 m with periodic
//!   scans until the battery goes erratic (expected ≈ 36 scans / ≈ 6 min).
//! * [`scanflow`] — the firmware ablation (QUEUE experiment): stock
//!   watchdog/queue vs the paper's patches during a radio-off scan.
//! * [`csv`] — plain-text persistence of sample sets for downstream tools.
//! * [`recovery`] — bounded, deterministic retry policies: a faulted
//!   receiver is re-initialized and the scan re-attempted before the
//!   waypoint is given up on.
//! * [`checkpoint`] — campaign checkpoint/resume: per-leg progress is
//!   persisted after every leg so an interrupted campaign flies only the
//!   missing waypoints — bit-identical to an uninterrupted run.
//!
//! # Examples
//!
//! ```no_run
//! use aerorem_mission::campaign::{Campaign, CampaignConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2206);
//! let report = Campaign::new(CampaignConfig::paper_demo()).run(&mut rng);
//! println!("collected {} samples", report.samples.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod basestation;
pub mod checkpoint;
pub mod csv;
pub mod campaign;
pub mod endurance;
pub mod plan;
pub mod recovery;
pub mod samples;
pub mod scanflow;

pub use campaign::{Campaign, CampaignConfig, CampaignReport};
pub use checkpoint::CampaignCheckpoint;
pub use plan::{FleetPlan, MissionPlan};
pub use recovery::{RetryPolicy, ScanFaultInjection};
pub use samples::{Sample, SampleSet};
