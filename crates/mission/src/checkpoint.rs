//! Campaign checkpoint/resume.
//!
//! The base station persists per-leg progress after every completed leg, so
//! a campaign interrupted between legs (battery swap gone wrong, WDT reset
//! of the ground station, operator abort) resumes by flying **only the
//! missing legs**. Because [`crate::Campaign`] partitions its RNG stream
//! per leg, a resumed campaign is bit-identical to an uninterrupted run
//! under the same master seed.
//!
//! The format is a hand-rolled line-oriented text file (the workspace's
//! `serde` is a derivability marker only, it never serializes), embedding
//! each completed leg's sample set as the [`crate::csv`] CSV block.
//!
//! # Examples
//!
//! ```
//! use aerorem_mission::checkpoint::CampaignCheckpoint;
//!
//! let empty = CampaignCheckpoint::empty();
//! let text = empty.to_text();
//! let back = CampaignCheckpoint::from_text(&text).unwrap();
//! assert_eq!(back.legs_completed, 0);
//! ```

use std::fmt;

use aerorem_simkit::{SimDuration, SimTime, TraceEntry};
use aerorem_uav::UavId;

use crate::basestation::LegOutcome;
use crate::csv::{self, escape_ssid, unescape_ssid};

/// Magic first line of the checkpoint format.
const MAGIC: &str = "aerorem-campaign-checkpoint v1";

/// Error from checkpoint parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    line: usize,
    reason: String,
}

impl CheckpointError {
    fn new(line: usize, reason: impl Into<String>) -> Self {
        CheckpointError {
            line,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for CheckpointError {}

/// A campaign's progress snapshot, taken between legs.
///
/// `outcomes` holds one [`LegOutcome`] per flight (recovery re-flights of
/// an aborted leg appear as their own entries); `legs_completed` counts
/// *planned* legs fully finished, which is what resume skips.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    /// Planned legs fully finished (including their recovery re-flights).
    pub legs_completed: usize,
    /// Simulation clock when the snapshot was taken.
    pub sim_time: SimTime,
    /// Every flight flown so far, in order.
    pub outcomes: Vec<LegOutcome>,
    /// The operation trace accumulated so far.
    pub trace: Vec<TraceEntry>,
}

impl CampaignCheckpoint {
    /// A checkpoint with no progress: resuming from it runs the whole
    /// campaign.
    pub fn empty() -> Self {
        CampaignCheckpoint {
            legs_completed: 0,
            sim_time: SimTime::ZERO,
            outcomes: Vec::new(),
            trace: Vec::new(),
        }
    }

    /// True when no leg has completed yet.
    pub fn is_empty(&self) -> bool {
        self.legs_completed == 0
    }

    /// Serializes to the line-oriented checkpoint text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("legs_completed {}\n", self.legs_completed));
        out.push_str(&format!("sim_time_us {}\n", self.sim_time.as_micros()));
        out.push_str(&format!("outcomes {}\n", self.outcomes.len()));
        for o in &self.outcomes {
            out.push_str(&format!(
                "outcome uav={} visited={} planned={} active_us={} aborted={} shutdown={} \
                 packets_dropped={} rows_lost={} rows_corrupted={} receiver_faults={} \
                 scan_retries={} scans_recovered={}\n",
                o.uav.0,
                o.waypoints_visited,
                o.waypoints_planned,
                o.active_time.as_micros(),
                u8::from(o.aborted_on_battery),
                u8::from(o.shutdown),
                o.packets_dropped,
                o.rows_lost,
                o.rows_corrupted,
                o.receiver_faults,
                o.scan_retries,
                o.scans_recovered,
            ));
            let csv = csv::to_csv(&o.samples);
            out.push_str(&format!("samples {}\n", csv.lines().count()));
            out.push_str(&csv);
        }
        out.push_str(&format!("trace {}\n", self.trace.len()));
        for e in &self.trace {
            out.push_str(&format!(
                "{}\t{}\t{}\n",
                e.time.as_micros(),
                e.component,
                escape_ssid(&e.message)
            ));
        }
        out
    }

    /// Parses a checkpoint produced by [`CampaignCheckpoint::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError`] naming the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, CheckpointError> {
        let lines: Vec<&str> = text.lines().collect();
        let mut cursor = Cursor { lines: &lines, pos: 0 };

        if cursor.next_line()? != MAGIC {
            return Err(CheckpointError::new(1, format!("expected {MAGIC:?}")));
        }
        let legs_completed = cursor.keyed_count("legs_completed")?;
        let sim_time = SimTime::from_micros(cursor.keyed_count("sim_time_us")? as u64);
        let n_outcomes = cursor.keyed_count("outcomes")?;

        let mut outcomes = Vec::with_capacity(n_outcomes);
        for _ in 0..n_outcomes {
            let at = cursor.pos + 1;
            let header = cursor.next_line()?;
            let fields = parse_outcome_fields(header)
                .map_err(|reason| CheckpointError::new(at, reason))?;
            let n_lines = cursor.keyed_count("samples")?;
            let csv_start = cursor.pos;
            let csv_text = cursor.take_lines(n_lines)?.join("\n");
            let samples = csv::from_csv(&csv_text).map_err(|e| {
                CheckpointError::new(csv_start + 1, format!("embedded CSV: {e}"))
            })?;
            outcomes.push(LegOutcome {
                uav: UavId(fields.get("uav")? as u8),
                waypoints_visited: fields.get("visited")? as usize,
                waypoints_planned: fields.get("planned")? as usize,
                active_time: SimDuration::from_micros(fields.get("active_us")?),
                aborted_on_battery: fields.get("aborted")? != 0,
                shutdown: fields.get("shutdown")? != 0,
                packets_dropped: fields.get("packets_dropped")?,
                rows_lost: fields.get("rows_lost")?,
                rows_corrupted: fields.get("rows_corrupted")?,
                receiver_faults: fields.get("receiver_faults")?,
                scan_retries: fields.get("scan_retries")?,
                scans_recovered: fields.get("scans_recovered")?,
                samples,
            });
        }

        let n_trace = cursor.keyed_count("trace")?;
        let mut trace = Vec::with_capacity(n_trace);
        for _ in 0..n_trace {
            let at = cursor.pos + 1;
            let line = cursor.next_line()?;
            let mut parts = line.splitn(3, '\t');
            let t_us: u64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| CheckpointError::new(at, "bad trace timestamp"))?;
            let component = parts
                .next()
                .ok_or_else(|| CheckpointError::new(at, "missing trace component"))?;
            let message = parts
                .next()
                .ok_or_else(|| CheckpointError::new(at, "missing trace message"))?;
            trace.push(TraceEntry {
                time: SimTime::from_micros(t_us),
                component: intern_component(component),
                message: unescape_ssid(message)
                    .map_err(|e| CheckpointError::new(at, e))?,
            });
        }

        Ok(CampaignCheckpoint {
            legs_completed,
            sim_time,
            outcomes,
            trace,
        })
    }
}

/// Maps a parsed component tag back to the `&'static str` the trace uses.
/// Unknown tags collapse to `"trace"` (the set of components is closed in
/// this codebase, so round trips are exact).
fn intern_component(s: &str) -> &'static str {
    match s {
        "client" => "client",
        "radio" => "radio",
        "campaign" => "campaign",
        "scan" => "scan",
        "uav" => "uav",
        _ => "trace",
    }
}

struct Cursor<'a> {
    lines: &'a [&'a str],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn next_line(&mut self) -> Result<&'a str, CheckpointError> {
        let line = self
            .lines
            .get(self.pos)
            .ok_or_else(|| CheckpointError::new(self.pos + 1, "unexpected end of file"))?;
        self.pos += 1;
        Ok(line)
    }

    fn take_lines(&mut self, n: usize) -> Result<Vec<&'a str>, CheckpointError> {
        if self.pos + n > self.lines.len() {
            return Err(CheckpointError::new(
                self.lines.len(),
                format!("expected {n} more lines"),
            ));
        }
        // lint:allow(slice-index) — the early return above guarantees pos + n ≤ lines.len()
        let slice = self.lines[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `<key> <count>` line.
    fn keyed_count(&mut self, key: &str) -> Result<usize, CheckpointError> {
        let at = self.pos + 1;
        let line = self.next_line()?;
        let rest = line
            .strip_prefix(key)
            .ok_or_else(|| CheckpointError::new(at, format!("expected {key:?} line")))?;
        rest.trim()
            .parse()
            .map_err(|_| CheckpointError::new(at, format!("bad {key} count")))
    }
}

struct OutcomeFields<'a> {
    pairs: Vec<(&'a str, u64)>,
}

impl OutcomeFields<'_> {
    fn get(&self, key: &str) -> Result<u64, CheckpointError> {
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| CheckpointError::new(0, format!("outcome missing field {key:?}")))
    }
}

fn parse_outcome_fields(line: &str) -> Result<OutcomeFields<'_>, String> {
    let rest = line
        .strip_prefix("outcome")
        .ok_or_else(|| "expected \"outcome\" line".to_string())?;
    let mut pairs = Vec::new();
    for token in rest.split_whitespace() {
        let (k, v) = token
            .split_once('=')
            .ok_or_else(|| format!("bad outcome field {token:?}"))?;
        let v: u64 = v.parse().map_err(|_| format!("bad value in {token:?}"))?;
        pairs.push((k, v));
    }
    Ok(OutcomeFields { pairs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples::{Sample, SampleSet};
    use aerorem_propagation::ap::{MacAddress, Ssid};
    use aerorem_propagation::WifiChannel;
    use aerorem_spatial::Vec3;

    fn outcome_with_samples() -> LegOutcome {
        let mut samples = SampleSet::new();
        samples.push(Sample {
            uav: UavId(0),
            waypoint_index: 3,
            position: Vec3::new(1.0, 2.0, 0.123456789012345),
            true_position: Vec3::new(1.01, 2.02, 0.2),
            ssid: Ssid::new("weird,ssid\"with%stuff"),
            mac: MacAddress::from_index(17),
            channel: WifiChannel::new(6).unwrap(),
            rssi_dbm: -63,
            timestamp: SimTime::from_micros(123_456_789),
        });
        LegOutcome {
            uav: UavId(0),
            waypoints_visited: 4,
            waypoints_planned: 6,
            active_time: SimDuration::from_micros(55_000_111),
            aborted_on_battery: true,
            shutdown: false,
            packets_dropped: 2,
            rows_lost: 3,
            rows_corrupted: 1,
            receiver_faults: 5,
            scan_retries: 4,
            scans_recovered: 2,
            samples,
        }
    }

    #[test]
    fn round_trip_preserves_everything() {
        let cp = CampaignCheckpoint {
            legs_completed: 1,
            sim_time: SimTime::from_micros(987_654_321),
            outcomes: vec![outcome_with_samples()],
            trace: vec![
                TraceEntry {
                    time: SimTime::from_micros(10),
                    component: "client",
                    message: "UAV A leg start: 6 waypoints".to_string(),
                },
                TraceEntry {
                    time: SimTime::from_micros(20),
                    component: "radio",
                    message: "off for scan at waypoint 0".to_string(),
                },
            ],
        };
        let text = cp.to_text();
        let back = CampaignCheckpoint::from_text(&text).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn empty_round_trips() {
        let cp = CampaignCheckpoint::empty();
        assert!(cp.is_empty());
        assert_eq!(CampaignCheckpoint::from_text(&cp.to_text()).unwrap(), cp);
    }

    #[test]
    fn trace_messages_with_tabs_and_newlines_survive() {
        let cp = CampaignCheckpoint {
            legs_completed: 0,
            sim_time: SimTime::ZERO,
            outcomes: Vec::new(),
            trace: vec![TraceEntry {
                time: SimTime::ZERO,
                component: "client",
                message: "odd\nmessage".to_string(),
            }],
        };
        let back = CampaignCheckpoint::from_text(&cp.to_text()).unwrap();
        assert_eq!(back.trace[0].message, "odd\nmessage");
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(CampaignCheckpoint::from_text("").is_err());
        assert!(CampaignCheckpoint::from_text("not a checkpoint").is_err());
        let truncated = "aerorem-campaign-checkpoint v1\nlegs_completed 1\nsim_time_us 5\noutcomes 1\n";
        assert!(CampaignCheckpoint::from_text(truncated).is_err());
        let bad_count =
            "aerorem-campaign-checkpoint v1\nlegs_completed x\nsim_time_us 5\noutcomes 0\ntrace 0\n";
        assert!(CampaignCheckpoint::from_text(bad_count).is_err());
    }
}
