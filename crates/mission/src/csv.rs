//! CSV persistence for sample sets.
//!
//! The base station stores results "for later processing" (§II-C); this
//! module is that storage format — a plain CSV any downstream tool can
//! read, with a lossless round trip back into a [`SampleSet`].

use std::fmt;

use aerorem_propagation::ap::{MacAddress, Ssid};
use aerorem_propagation::WifiChannel;
use aerorem_simkit::SimTime;
use aerorem_spatial::Vec3;
use aerorem_uav::UavId;

use crate::samples::{Sample, SampleSet};

/// The CSV header written and expected by this module.
pub const CSV_HEADER: &str =
    "uav,waypoint,x,y,z,true_x,true_y,true_z,ssid,mac,channel,rssi_dbm,t_us";

/// Error from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCsvError {
    line_number: usize,
    reason: String,
}

impl ParseCsvError {
    fn new(line_number: usize, reason: impl Into<String>) -> Self {
        ParseCsvError {
            line_number,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CSV line {}: {}", self.line_number, self.reason)
    }
}

impl std::error::Error for ParseCsvError {}

/// Percent-style escaping for SSIDs: commas, quotes, newlines and percent
/// signs become `%XX`, keeping the CSV single-line and comma-splittable.
/// (Also reused by the campaign checkpoint format for trace messages.)
pub(crate) fn escape_ssid(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b',' | b'"' | b'\n' | b'\r' | b'%' => out.push_str(&format!("%{b:02X}")),
            0x20..=0x7E => out.push(b as char),
            // Non-printable and non-ASCII bytes (UTF-8 continuation bytes
            // included) are escaped byte-by-byte.
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

pub(crate) fn unescape_ssid(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&b) = bytes.get(i) {
        if b == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| "truncated escape".to_string())?;
            let v = u8::from_str_radix(
                std::str::from_utf8(hex).map_err(|_| "bad escape".to_string())?,
                16,
            )
            .map_err(|_| "bad escape".to_string())?;
            out.push(v);
            i += 3;
        } else {
            out.push(b);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| "ssid not UTF-8".to_string())
}

/// Serializes a sample set to CSV (header + one row per sample).
pub fn to_csv(samples: &SampleSet) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for s in samples.iter() {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            s.uav.0,
            s.waypoint_index,
            s.position.x,
            s.position.y,
            s.position.z,
            s.true_position.x,
            s.true_position.y,
            s.true_position.z,
            escape_ssid(s.ssid.as_str()),
            s.mac,
            s.channel.number(),
            s.rssi_dbm,
            s.timestamp.as_micros(),
        ));
    }
    out
}

/// Parses a CSV produced by [`to_csv`].
///
/// # Errors
///
/// Returns [`ParseCsvError`] naming the first malformed line; the header
/// must match [`CSV_HEADER`].
pub fn from_csv(text: &str) -> Result<SampleSet, ParseCsvError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseCsvError::new(1, "empty input"))?;
    if header.trim() != CSV_HEADER {
        return Err(ParseCsvError::new(1, format!("unexpected header {header:?}")));
    }
    let mut set = SampleSet::new();
    for (idx, line) in lines {
        let n = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 13 {
            return Err(ParseCsvError::new(
                n,
                format!("expected 13 fields, found {}", fields.len()),
            ));
        }
        let parse_f64 = |s: &str, what: &str| -> Result<f64, ParseCsvError> {
            s.parse()
                .map_err(|_| ParseCsvError::new(n, format!("bad {what}: {s:?}")))
        };
        let uav = UavId(
            fields[0]
                .parse()
                .map_err(|_| ParseCsvError::new(n, "bad uav id"))?,
        );
        let waypoint_index: usize = fields[1]
            .parse()
            .map_err(|_| ParseCsvError::new(n, "bad waypoint index"))?;
        let position = Vec3::new(
            parse_f64(fields[2], "x")?,
            parse_f64(fields[3], "y")?,
            parse_f64(fields[4], "z")?,
        );
        let true_position = Vec3::new(
            parse_f64(fields[5], "true_x")?,
            parse_f64(fields[6], "true_y")?,
            parse_f64(fields[7], "true_z")?,
        );
        let ssid = Ssid::new(
            unescape_ssid(fields[8]).map_err(|e| ParseCsvError::new(n, e))?,
        );
        let mac: MacAddress = fields[9]
            .parse()
            .map_err(|_| ParseCsvError::new(n, "bad mac"))?;
        let channel_num: u8 = fields[10]
            .parse()
            .map_err(|_| ParseCsvError::new(n, "bad channel"))?;
        let channel = WifiChannel::new(channel_num)
            .ok_or_else(|| ParseCsvError::new(n, "channel out of range"))?;
        let rssi_dbm: i32 = fields[11]
            .parse()
            .map_err(|_| ParseCsvError::new(n, "bad rssi"))?;
        let t_us: u64 = fields[12]
            .parse()
            .map_err(|_| ParseCsvError::new(n, "bad timestamp"))?;
        set.push(Sample {
            uav,
            waypoint_index,
            position,
            true_position,
            ssid,
            mac,
            channel,
            rssi_dbm,
            timestamp: SimTime::from_micros(t_us),
        });
    }
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ssid: &str) -> Sample {
        Sample {
            uav: UavId(1),
            waypoint_index: 7,
            position: Vec3::new(1.25, -0.5, 2.0),
            true_position: Vec3::new(1.27, -0.48, 2.01),
            ssid: Ssid::new(ssid),
            mac: MacAddress::from_index(42),
            channel: WifiChannel::new(11).unwrap(),
            rssi_dbm: -71,
            timestamp: SimTime::from_millis(90_500),
        }
    }

    #[test]
    fn round_trip() {
        let mut set = SampleSet::new();
        set.push(sample("HomeNet"));
        set.push(sample("weird,ssid\"with%stuff"));
        set.push(sample(""));
        let csv = to_csv(&set);
        let back = from_csv(&csv).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn empty_set_round_trips() {
        let set = SampleSet::new();
        let back = from_csv(&to_csv(&set)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn header_is_enforced() {
        assert!(from_csv("").is_err());
        assert!(from_csv("a,b,c\n").is_err());
        let good = format!("{CSV_HEADER}\n");
        assert!(from_csv(&good).is_ok());
    }

    #[test]
    fn malformed_rows_reported_with_line_numbers() {
        let cases = [
            ("1,2,3", "expected 13 fields"),
            (
                "x,7,1,1,1,1,1,1,net,02:00:00:00:00:2a,11,-71,5",
                "bad uav",
            ),
            (
                "1,7,no,1,1,1,1,1,net,02:00:00:00:00:2a,11,-71,5",
                "bad x",
            ),
            (
                "1,7,1,1,1,1,1,1,net,zz:00:00:00:00:2a,11,-71,5",
                "bad mac",
            ),
            (
                "1,7,1,1,1,1,1,1,net,02:00:00:00:00:2a,99,-71,5",
                "channel out of range",
            ),
            (
                "1,7,1,1,1,1,1,1,net,02:00:00:00:00:2a,11,n,5",
                "bad rssi",
            ),
        ];
        for (row, expect) in cases {
            let text = format!("{CSV_HEADER}\n{row}\n");
            let err = from_csv(&text).unwrap_err();
            assert!(
                err.to_string().contains(expect),
                "{row}: got {err}"
            );
            assert!(err.to_string().contains("line 2"));
        }
    }

    #[test]
    fn blank_lines_skipped() {
        let mut set = SampleSet::new();
        set.push(sample("a"));
        let mut csv = to_csv(&set);
        csv.push_str("\n\n");
        assert_eq!(from_csv(&csv).unwrap().len(), 1);
    }

    #[test]
    fn escaping_edge_cases() {
        assert_eq!(escape_ssid("a,b"), "a%2Cb");
        assert_eq!(unescape_ssid("a%2Cb").unwrap(), "a,b");
        // Unicode SSIDs survive byte-wise escaping.
        let uni = "café 👍";
        assert_eq!(unescape_ssid(&escape_ssid(uni)).unwrap(), uni);
        assert!(escape_ssid(uni).is_ascii());
        assert_eq!(unescape_ssid("plain").unwrap(), "plain");
        assert!(unescape_ssid("bad%2").is_err());
        assert!(unescape_ssid("bad%zz").is_err());
    }
}
