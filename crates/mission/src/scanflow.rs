//! The firmware ablation: what each of the paper's patches buys (QUEUE
//! experiment).
//!
//! §II-C motivates three firmware-level mechanisms. This module runs one
//! radio-off scan cycle under four configurations and reports what happens:
//!
//! | configuration                  | expected outcome                    |
//! |--------------------------------|-------------------------------------|
//! | stock (2 s WDT, 16-pkt queue)  | WDT shutdown mid-scan — UAV falls   |
//! | +10 s WDT only                 | survives, but drifts (500 ms rule)  |
//! | +WDT +feedback task            | holds position; queue still drops   |
//! | full patch (+128-pkt queue)    | holds position, zero rows lost      |

use rand::Rng;

use aerorem_localization::{AnchorConstellation, RangingConfig, RangingMode};
use aerorem_propagation::RadioEnvironment;
use aerorem_radio::crtp::{CrtpPacket, CrtpPort};
use aerorem_radio::link::{LinkConfig, RadioLink};
use aerorem_scanner::{Esp01Receiver, MeasurementContext, RemReceiver};
use aerorem_simkit::{SimDuration, SimTime};
use aerorem_spatial::{Aabb, Vec3};
use aerorem_uav::firmware::FirmwareConfig;
use aerorem_uav::{FlightMode, Uav, UavId};

/// A named firmware variant for the ablation table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirmwareVariant {
    /// Stock 2021.06: 2 s WDT, 16-packet queue, no feedback task.
    Stock,
    /// Only the watchdog extension applied.
    WdtOnly,
    /// Watchdog + feedback task, stock queue.
    WdtAndFeedback,
    /// The paper's full patch set.
    FullPatch,
}

impl FirmwareVariant {
    /// All variants in ablation order.
    pub const ALL: [FirmwareVariant; 4] = [
        FirmwareVariant::Stock,
        FirmwareVariant::WdtOnly,
        FirmwareVariant::WdtAndFeedback,
        FirmwareVariant::FullPatch,
    ];

    /// The concrete firmware configuration.
    pub fn config(self) -> FirmwareConfig {
        let stock = FirmwareConfig::stock_2021_06();
        let patched = FirmwareConfig::paper_patched();
        match self {
            FirmwareVariant::Stock => stock,
            FirmwareVariant::WdtOnly => FirmwareConfig {
                wdt_timeout: patched.wdt_timeout,
                ..stock
            },
            FirmwareVariant::WdtAndFeedback => FirmwareConfig {
                wdt_timeout: patched.wdt_timeout,
                feedback_period: patched.feedback_period,
                ..stock
            },
            FirmwareVariant::FullPatch => patched,
        }
    }

    /// Human-readable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FirmwareVariant::Stock => "stock 2021.06",
            FirmwareVariant::WdtOnly => "+10s WDT",
            FirmwareVariant::WdtAndFeedback => "+WDT +feedback task",
            FirmwareVariant::FullPatch => "full patch (+128-pkt queue)",
        }
    }
}

/// What happened during one radio-off scan cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanFlowOutcome {
    /// Which variant ran.
    pub variant: FirmwareVariant,
    /// The UAV survived the scan airborne.
    pub survived: bool,
    /// Distance from the scan position at the end of the window, meters.
    pub position_drift_m: f64,
    /// Scan rows produced by the receiver.
    pub rows_scanned: usize,
    /// Rows recovered intact by the base station after the radio came back.
    pub rows_delivered: usize,
    /// Partial rows quarantined at fragment gaps instead of being parsed.
    pub rows_quarantined: u64,
    /// CRTP packets lost to queue overflow.
    pub packets_dropped: u64,
}

/// Runs one hover + radio-off-scan cycle under the given firmware variant.
pub fn run_scan_cycle<R: Rng>(
    variant: FirmwareVariant,
    env: &RadioEnvironment,
    rng: &mut R,
) -> ScanFlowOutcome {
    let volume = Aabb::paper_volume();
    let anchors = AnchorConstellation::volume_corners(volume);
    let firmware = variant.config();
    let ranging = RangingConfig::lps_default(RangingMode::Tdoa);
    let hold = Vec3::new(volume.center().x, volume.center().y, 1.0);
    let mut uav = Uav::new(
        UavId(0),
        firmware,
        ranging,
        Vec3::new(hold.x, hold.y, 0.0),
    );
    let mut link = RadioLink::new(LinkConfig {
        tx_queue_size: firmware.tx_queue_size,
        latency_ms: 4.0,
    });
    let dt = 0.01;
    let mut now = SimTime::ZERO;

    // Fly to the hold point with live setpoints.
    for _ in 0..600 {
        now += SimDuration::from_secs_f64(dt);
        uav.commander_mut().set_setpoint(now, hold);
        uav.step(now, dt, &anchors, rng);
    }

    // Radio off; start scan. Variants with the feedback task hold position.
    link.set_radio_on(false);
    let _ = uav.commander_mut().begin_scan_hold(now, hold);
    uav.set_scanning(true);
    let scan_end = now + SimDuration::from_secs(3);
    while now < scan_end {
        now += SimDuration::from_secs_f64(dt);
        uav.step(now, dt, &anchors, rng);
    }

    // Collect the measurement and ship it through the queue.
    let mut receiver = Esp01Receiver::new();
    // lint:allow(panic-path) — fresh Esp01Receiver without fault injection: init is infallible in simulation
    receiver.init().expect("ESP initializes");
    let ctx = MeasurementContext::new(env, uav.true_position(), &[]);
    // lint:allow(panic-path) — receiver was just initialized and carries no fault injection, so measure cannot fail
    receiver.measure(&ctx, rng).expect("receiver ready");
    // lint:allow(panic-path) — the fault-free measure above always leaves observations to take
    let rows = receiver.take_observations().expect("output present");
    let mut wire = String::new();
    for o in &rows {
        wire.push_str(&aerorem_scanner::parse::format_cwlap_row(o));
        wire.push('\n');
    }
    // An over-long wire (more rows than 255 fragments can carry) ships
    // nothing, mirroring the base-station client.
    for pkt in CrtpPacket::fragment(CrtpPort::Console, 0, wire.as_bytes()).unwrap_or_default() {
        let _ = link.enqueue_uplink(pkt);
    }
    uav.set_scanning(false);
    uav.commander_mut().end_scan_hold();

    // Radio back on; fetch. Sequence-numbered reassembly delivers only
    // rows that survived intact; gap-edge partials are quarantined.
    link.set_radio_on(true);
    let delivered = link.drain_uplink();
    let recovered = CrtpPacket::reassemble(&delivered).lines();
    let rows_delivered = recovered
        .lines
        .iter()
        .filter(|l| aerorem_scanner::parse::parse_cwlap_row(l).is_ok())
        .count();

    let survived = uav.mode() == FlightMode::Airborne;
    ScanFlowOutcome {
        variant,
        survived,
        position_drift_m: uav.true_position().distance(hold),
        rows_scanned: rows.len(),
        rows_delivered,
        rows_quarantined: recovered.quarantined,
        packets_dropped: link.uplink_dropped(),
    }
}

/// Runs the full ablation, one outcome per variant.
pub fn run_ablation<R: Rng>(env: &RadioEnvironment, rng: &mut R) -> Vec<ScanFlowOutcome> {
    FirmwareVariant::ALL
        .iter()
        .map(|&v| run_scan_cycle(v, env, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerorem_propagation::building::SyntheticBuilding;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> (RadioEnvironment, StdRng) {
        let mut rng = StdRng::seed_from_u64(0x5CAF);
        let env = SyntheticBuilding::paper_like().generate(Aabb::paper_volume(), &mut rng);
        (env, rng)
    }

    #[test]
    fn stock_firmware_dies_mid_scan() {
        let (env, mut rng) = world();
        let out = run_scan_cycle(FirmwareVariant::Stock, &env, &mut rng);
        assert!(!out.survived, "2 s WDT must fire during a 3 s scan");
    }

    #[test]
    fn wdt_only_survives_but_drifts() {
        let (env, mut rng) = world();
        let out = run_scan_cycle(FirmwareVariant::WdtOnly, &env, &mut rng);
        assert!(out.survived);
        // Without the feedback task the 500 ms rule levels the UAV and it
        // drifts for ~2.5 s.
        assert!(
            out.position_drift_m > 0.05,
            "expected visible drift, got {} m",
            out.position_drift_m
        );
    }

    #[test]
    fn feedback_task_holds_position() {
        let (env, mut rng) = world();
        let out = run_scan_cycle(FirmwareVariant::WdtAndFeedback, &env, &mut rng);
        assert!(out.survived);
        assert!(
            out.position_drift_m < 0.25,
            "feedback hold drifted {} m",
            out.position_drift_m
        );
        // Stock queue: a full scan result overflows 16 packets.
        assert!(out.packets_dropped > 0);
        assert!(out.rows_delivered < out.rows_scanned);
    }

    #[test]
    fn full_patch_loses_nothing() {
        let (env, mut rng) = world();
        let out = run_scan_cycle(FirmwareVariant::FullPatch, &env, &mut rng);
        assert!(out.survived);
        assert!(out.position_drift_m < 0.25);
        assert_eq!(out.packets_dropped, 0);
        assert_eq!(out.rows_delivered, out.rows_scanned);
    }

    #[test]
    fn ablation_covers_all_variants() {
        let (env, mut rng) = world();
        let rows = run_ablation(&env, &mut rng);
        assert_eq!(rows.len(), 4);
        let labels: Vec<&str> = FirmwareVariant::ALL.iter().map(|v| v.label()).collect();
        assert!(labels.contains(&"stock 2021.06"));
        assert!(labels.contains(&"full patch (+128-pkt queue)"));
        // The ablation's headline: only the full patch both survives and
        // delivers everything.
        let full = rows
            .iter()
            .find(|r| r.variant == FirmwareVariant::FullPatch)
            .unwrap();
        assert!(full.survived && full.rows_delivered == full.rows_scanned);
    }

    #[test]
    fn variant_configs_differ_as_documented() {
        let stock = FirmwareVariant::Stock.config();
        let wdt = FirmwareVariant::WdtOnly.config();
        assert_eq!(wdt.tx_queue_size, stock.tx_queue_size);
        assert!(wdt.wdt_timeout > stock.wdt_timeout);
        assert!(!wdt.has_feedback_task());
        assert!(FirmwareVariant::WdtAndFeedback.config().has_feedback_task());
    }
}
