//! REM lattice-fill throughput: per-voxel vs batched inference.
//!
//! This is the acceptance bench for the batched hot path: it fills the
//! paper's room volume at fine resolution with the REM model (the scaled
//! one-hot kNN) and a trained MLP, once through the pre-batching
//! per-voxel reference path and once through the chunked
//! `FeatureMatrix`/`predict_batch` path, under both execution policies.
//! It asserts the two paths produce **bit-identical** grids, then writes
//! the timing table to `BENCH_2.json` at the repository root.
//!
//! Custom harness (`harness = false`): a fixed-repetition timer is enough
//! for second-scale lattice fills, and we want a machine-readable JSON
//! artifact rather than criterion's HTML report.

use std::time::Instant;

use aerorem_core::exec::ExecPolicy;
use aerorem_core::features::{preprocess, FeatureLayout, PreprocessConfig};
use aerorem_core::models::ModelKind;
use aerorem_core::rem::RemGrid;
use aerorem_mission::{Sample, SampleSet};
use aerorem_ml::mlp::{Activation, Mlp, MlpConfig};
use aerorem_ml::Regressor;
use aerorem_propagation::ap::{MacAddress, Ssid};
use aerorem_propagation::WifiChannel;
use aerorem_simkit::SimTime;
use aerorem_spatial::Aabb;
use aerorem_uav::UavId;

/// Lattice cell edge length: fine-grained, paper-style sub-25 cm mapping.
const RESOLUTION_M: f64 = 0.12;
/// MACs in the synthetic world; with their channels this pushes the
/// feature dimension past the KD-tree cutoff, so kNN exercises the
/// flat brute-force backend exactly as it does on the paper's ~80-MAC
/// feature space.
const N_MACS: u32 = 8;
/// Samples per MAC (total ≈ the paper's 2565 retained samples).
const SAMPLES_PER_MAC: usize = 300;
/// Timed repetitions per configuration (best-of to shed scheduler noise).
const REPS: usize = 3;

fn synthetic_world() -> (SampleSet, Aabb) {
    let volume = Aabb::paper_volume();
    let mut set = SampleSet::new();
    for mac in 1..=N_MACS {
        for i in 0..SAMPLES_PER_MAC {
            // Deterministic low-discrepancy-ish sweep of the volume.
            let t = i as f64 + mac as f64 * 0.37;
            let pos = volume.lerp_point(
                (t * 0.378).fract(),
                (t * 0.691).fract(),
                (t * 0.137).fract(),
            );
            let rssi = -55.0 - 3.0 * mac as f64 - 4.0 * pos.x - 2.0 * pos.y + pos.z;
            set.push(Sample {
                uav: UavId(0),
                waypoint_index: i,
                position: pos,
                true_position: pos,
                ssid: Ssid::new(format!("net{mac}")),
                mac: MacAddress::from_index(mac),
                channel: WifiChannel::new([1u8, 6, 11][(mac % 3) as usize]).unwrap(),
                rssi_dbm: rssi as i32,
                timestamp: SimTime::ZERO,
            });
        }
    }
    (set, volume)
}

struct Measurement {
    model: &'static str,
    mode: &'static str,
    exec: &'static str,
    seconds: f64,
    voxels_per_s: f64,
}

/// Best-of-`REPS` wall time for one lattice fill; returns the grid of the
/// last repetition for the bit-identity check.
fn time_fill(
    fill: impl Fn() -> RemGrid,
    model: &'static str,
    mode: &'static str,
    exec: &'static str,
) -> (Measurement, RemGrid) {
    let mut best = f64::INFINITY;
    let mut grid = fill(); // warm-up (also primes thread pools)
    for _ in 0..REPS {
        let start = Instant::now();
        grid = fill();
        best = best.min(start.elapsed().as_secs_f64());
    }
    let voxels = grid.len() as f64;
    eprintln!(
        "{model:<14} {mode:<10} {exec:<9} {best:>8.3} s  {:>10.0} voxels/s",
        voxels / best
    );
    (
        Measurement {
            model,
            mode,
            exec,
            seconds: best,
            voxels_per_s: voxels / best,
        },
        grid,
    )
}

/// Runs the per-voxel/batched × serial/parallel matrix for one fitted
/// model, asserting every combination produces the identical grid.
fn bench_model(
    name: &'static str,
    model: &dyn Regressor,
    layout: &FeatureLayout,
    volume: Aabb,
    mac: MacAddress,
    out: &mut Vec<Measurement>,
) {
    let mut reference: Option<RemGrid> = None;
    for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
        let exec = policy.label();
        let (m, grid) = time_fill(
            || {
                RemGrid::generate_per_voxel_with(model, layout, volume, RESOLUTION_M, mac, policy)
                    .expect("per-voxel fill")
            },
            name,
            "per_voxel",
            exec,
        );
        out.push(m);
        let reference = reference.get_or_insert(grid);
        let (m, batched) = time_fill(
            || {
                RemGrid::generate_with(model, layout, volume, RESOLUTION_M, mac, policy)
                    .expect("batched fill")
            },
            name,
            "batched",
            exec,
        );
        out.push(m);
        assert_eq!(
            &batched, reference,
            "{name}/{exec}: batched grid must be bit-identical to per-voxel"
        );
    }
}

fn json_escape_free(s: &str) -> &str {
    // All strings written below are static identifiers without quotes or
    // control characters; keep the writer honest anyway.
    assert!(s.chars().all(|c| c.is_ascii_graphic() && c != '"' && c != '\\'));
    s
}

fn write_json(
    path: &str,
    voxels: usize,
    train_samples: usize,
    feature_dim: usize,
    results: &[Measurement],
) {
    let mut rows = String::new();
    for (i, m) in results.iter().enumerate() {
        rows.push_str(&format!(
            "    {{\"model\": \"{}\", \"mode\": \"{}\", \"exec\": \"{}\", \"seconds\": {:.6}, \"voxels_per_s\": {:.1}}}{}\n",
            json_escape_free(m.model),
            json_escape_free(m.mode),
            json_escape_free(m.exec),
            m.seconds,
            m.voxels_per_s,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    let speedup = |model: &str, exec: &str| {
        let find = |mode: &str| {
            results
                .iter()
                .find(|m| m.model == model && m.mode == mode && m.exec == exec)
                .map(|m| m.seconds)
        };
        match (find("per_voxel"), find("batched")) {
            (Some(pv), Some(b)) if b > 0.0 => pv / b,
            _ => f64::NAN,
        }
    };
    let json = format!(
        "{{\n  \"bench\": \"rem_lattice\",\n  \"volume_m\": [3.74, 3.2, 2.1],\n  \
         \"resolution_m\": {RESOLUTION_M},\n  \"voxels\": {voxels},\n  \
         \"train_samples\": {train_samples},\n  \"feature_dim\": {feature_dim},\n  \
         \"bit_identical\": true,\n  \"results\": [\n{rows}  ],\n  \
         \"speedup_batched_vs_per_voxel\": {{\n    \
         \"knn_scaled16_serial\": {:.2},\n    \"knn_scaled16_parallel\": {:.2},\n    \
         \"mlp_serial\": {:.2},\n    \"mlp_parallel\": {:.2}\n  }}\n}}\n",
        speedup("knn_scaled16", "serial"),
        speedup("knn_scaled16", "parallel"),
        speedup("mlp", "serial"),
        speedup("mlp", "parallel"),
    );
    std::fs::write(path, json).expect("write BENCH_2.json");
    eprintln!("wrote {path}");
}

fn main() {
    // `cargo bench` passes harness flags; a custom harness ignores them.
    let (set, volume) = synthetic_world();
    let (data, layout, report) = preprocess(&set, &PreprocessConfig::paper()).expect("preprocess");
    eprintln!(
        "world: {} samples over {} MACs, feature dim {}",
        report.retained_samples,
        report.retained_macs,
        layout.dim()
    );

    let mut knn = ModelKind::KnnScaled16.build(&layout).expect("build kNN");
    knn.fit(&data.x, &data.y).expect("fit kNN");

    let mut mlp = Mlp::new(MlpConfig {
        hidden: vec![(16, Activation::Sigmoid)],
        epochs: 30,
        ..MlpConfig::paper_tuned()
    });
    mlp.fit(&data.x, &data.y).expect("fit MLP");

    let mac = MacAddress::from_index(1);
    let mut results = Vec::new();
    bench_model("knn_scaled16", knn.as_ref(), &layout, volume, mac, &mut results);
    bench_model("mlp", &mlp, &layout, volume, mac, &mut results);

    let voxels = RemGrid::generate_with(
        knn.as_ref(),
        &layout,
        volume,
        RESOLUTION_M,
        mac,
        ExecPolicy::Serial,
    )
    .expect("voxel count")
    .len();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_2.json");
    write_json(path, voxels, report.retained_samples, layout.dim(), &results);

    for model in ["knn_scaled16", "mlp"] {
        for exec in ["serial", "parallel"] {
            let sec = |mode: &str| {
                results
                    .iter()
                    .find(|m| m.model == model && m.mode == mode && m.exec == exec)
                    .map(|m| m.seconds)
                    .unwrap()
            };
            eprintln!(
                "{model}/{exec}: batched is {:.2}x the per-voxel path",
                sec("per_voxel") / sec("batched")
            );
        }
    }
}
