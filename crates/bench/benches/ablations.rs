//! Ablation benchmarks for the design choices called out in `DESIGN.md` §6:
//! kNN backend crossover, TWR vs TDoA cost, waypoint-density scaling, and
//! fleet-size scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use aerorem_localization::{AnchorConstellation, RangingConfig, RangingMode};
use aerorem_ml::kdtree::{brute_force_nearest, KdTree};
use aerorem_mission::plan::FleetPlan;
use aerorem_spatial::{Aabb, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// KD-tree vs brute force across dimensionality — justifies the automatic
/// backend switch in `KnnRegressor` (KD-tree up to 8 dims).
fn bench_knn_backends(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let n = 2000;
    let mut group = c.benchmark_group("knn_backends");
    for dim in [3usize, 8, 40] {
        let points: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(0.0..4.0)).collect())
            .collect();
        let query: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..4.0)).collect();
        let tree = KdTree::build(points.clone()).unwrap();
        group.bench_with_input(BenchmarkId::new("kdtree", dim), &dim, |b, _| {
            b.iter(|| black_box(tree.nearest(&query, 16)))
        });
        group.bench_with_input(BenchmarkId::new("brute", dim), &dim, |b, _| {
            b.iter(|| black_box(brute_force_nearest(&points, &query, 16)))
        });
    }
    group.finish();
}

/// TWR vs TDoA measurement generation cost per epoch.
fn bench_ranging_modes(c: &mut Criterion) {
    let anchors = AnchorConstellation::volume_corners(Aabb::paper_volume());
    let mut rng = StdRng::seed_from_u64(2);
    let p = Vec3::new(1.87, 1.6, 1.0);
    let mut group = c.benchmark_group("ranging");
    for mode in [RangingMode::Twr, RangingMode::Tdoa] {
        let cfg = RangingConfig::lps_default(mode);
        group.bench_with_input(
            BenchmarkId::new("epoch", format!("{mode:?}")),
            &cfg,
            |b, cfg| b.iter(|| black_box(cfg.measure(&anchors, p, &mut rng))),
        );
    }
    group.finish();
}

/// Mission planning cost vs waypoint density (the future-work question of
/// how dense a 3D REM can be sampled).
fn bench_waypoint_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_density");
    for n in [72usize, 288, 1152] {
        let plan = FleetPlan {
            total_waypoints: n,
            ..FleetPlan::paper_demo()
        };
        group.bench_with_input(BenchmarkId::new("expand", n), &plan, |b, plan| {
            b.iter(|| black_box(plan.expand(Aabb::paper_volume()).unwrap()))
        });
    }
    group.finish();
}

/// Fleet partitioning cost vs fleet size ("the system can be scaled by
/// simply adding sets of waypoints").
fn bench_fleet_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet_scaling");
    for fleet in [2usize, 4, 8] {
        let plan = FleetPlan {
            fleet_size: fleet,
            total_waypoints: 288,
            ..FleetPlan::paper_demo()
        };
        group.bench_with_input(BenchmarkId::new("expand", fleet), &plan, |b, plan| {
            b.iter(|| black_box(plan.expand(Aabb::paper_volume()).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    bench_knn_backends,
    bench_ranging_modes,
    bench_waypoint_density,
    bench_fleet_scaling
);
criterion_main!(ablations);
