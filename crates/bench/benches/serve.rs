//! REM serving throughput: batched point queries against the sharded
//! store.
//!
//! This is the acceptance bench for the serving layer (PR 6): it builds a
//! synthetic multi-AP snapshot, ingests it into `RemStore` at several
//! shard counts, and drives seeded zipfian (hot-spot) and uniform point
//! workloads through `submit_batch` at several batch sizes, under both
//! execution policies. Before any number is written it asserts the serial
//! and parallel arms return **bit-identical** response vectors, then the
//! timing rows land in the `serve` section of `BENCH_3.json` at the
//! repository root (gated by `scripts/bench_diff`), and the run fails
//! outright if the best zipfian configuration cannot sustain ≥1M point
//! queries/s — the PR's acceptance floor.
//!
//! Custom harness (`harness = false`): fixed-repetition best-of timing
//! and a machine-readable artifact, like the other PR benches.
//! `AEROREM_BENCH_SMOKE=1` shrinks the workload, keeps every identity
//! assertion, and skips the JSON write and the throughput floor.

use std::path::Path;

use aerorem_bench::bench3;
use aerorem_core::rem::RemGrid;
use aerorem_core::snapshot::RemSnapshot;
use aerorem_numerics::ExecPolicy;
use aerorem_propagation::ap::MacAddress;
use aerorem_serve::{
    point_workload, Distribution, Query, RemStore, Response, StoreConfig, WorkloadConfig,
};
use aerorem_spatial::Aabb;

/// Zipf exponent of the hot-spot workload (classic Zipf).
const ZIPF_EXPONENT: f64 = 1.0;
/// Workload seed (same seed → same queries on every host).
const SEED: u64 = 2206;
/// Acceptance floor: best zipfian configuration must sustain this many
/// point queries per second in a full (non-smoke) run.
const MIN_ZIPF_QPS: f64 = 1_000_000.0;

struct Sizes {
    dims: (usize, usize, usize),
    aps: u32,
    queries: usize,
    shard_counts: &'static [usize],
    batch_sizes: &'static [usize],
    reps: usize,
}

const FULL: Sizes = Sizes {
    dims: (64, 64, 32),
    aps: 4,
    queries: 1_000_000,
    shard_counts: &[1, 4, 8],
    batch_sizes: &[1024, 65536],
    reps: 3,
};

const SMOKE: Sizes = Sizes {
    dims: (16, 16, 8),
    aps: 2,
    queries: 20_000,
    shard_counts: &[1, 2],
    batch_sizes: &[512],
    reps: 1,
};

/// A deterministic synthetic snapshot: per-AP fields with distinct
/// spatial structure (so best-AP and coverage answers are non-trivial).
fn synthetic_snapshot(sizes: &Sizes) -> RemSnapshot {
    let (nx, ny, nz) = sizes.dims;
    let grids = (1..=sizes.aps)
        .map(|mac| {
            let values = (0..nx * ny * nz)
                .map(|i| {
                    let t = i as f64 * 0.000_737 + mac as f64 * 1.37;
                    -35.0 - 25.0 * (t.sin() * t.cos()).abs() - 2.0 * mac as f64
                })
                .collect();
            RemGrid::from_parts(
                MacAddress::from_index(mac),
                Aabb::paper_volume(),
                sizes.dims,
                values,
            )
            .expect("synthetic grid shape")
        })
        .collect();
    RemSnapshot::new(grids).expect("synthetic snapshot is non-empty")
}

/// Runs the whole workload through `submit_batch` in `batch`-sized
/// slices, returning all responses (for identity checks).
fn drain(store: &RemStore, workload: &[Query], batch: usize, policy: ExecPolicy) -> Vec<Response> {
    let mut out = Vec::with_capacity(workload.len());
    for chunk in workload.chunks(batch) {
        out.extend(store.submit_batch(chunk, policy).expect("batch answers"));
    }
    out
}

fn main() {
    let smoke = bench3::smoke();
    let sizes = if smoke { &SMOKE } else { &FULL };
    let snapshot = synthetic_snapshot(sizes);

    // The snapshot codec is on the serving path: prove the store is built
    // from bytes a reader would load, not from in-memory grids.
    let decoded = RemSnapshot::from_bytes(&snapshot.to_bytes()).expect("snapshot round-trip");
    assert_eq!(decoded, snapshot, "codec must round-trip bit-identically");

    let cells = sizes.dims.0 * sizes.dims.1 * sizes.dims.2;
    eprintln!(
        "world: {cells} cells x {} APs, {} queries per arm{}",
        sizes.aps,
        sizes.queries,
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<String> = Vec::new();
    let mut peak_zipf_qps = 0.0f64;
    for &shards in sizes.shard_counts {
        let store = RemStore::build(
            &decoded,
            StoreConfig {
                brick_edge: 8,
                shard_count: shards,
            },
        )
        .expect("store build");
        for dist in [Distribution::Zipfian, Distribution::Uniform] {
            let workload = point_workload(
                &store,
                &WorkloadConfig {
                    queries: sizes.queries,
                    seed: SEED,
                    distribution: dist,
                    exponent: ZIPF_EXPONENT,
                },
            );
            // Determinism gate: both policy arms, full response vectors.
            let reference = drain(&store, &workload, sizes.batch_sizes[0], ExecPolicy::Serial);
            let parallel = drain(&store, &workload, sizes.batch_sizes[0], ExecPolicy::Parallel);
            assert_eq!(
                reference, parallel,
                "{dist}/s{shards}: serial and parallel batches must be bit-identical"
            );
            for &batch in sizes.batch_sizes {
                for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
                    let (seconds, answers) =
                        bench3::best_of(sizes.reps, || drain(&store, &workload, batch, policy));
                    assert_eq!(answers, reference, "batch size must not change answers");
                    let qps = sizes.queries as f64 / seconds;
                    if dist == Distribution::Zipfian {
                        peak_zipf_qps = peak_zipf_qps.max(qps);
                    }
                    let variant = format!("{dist}_s{shards}_b{batch}_{}", policy.label());
                    eprintln!("{variant:<32} {seconds:>9.4} s  {qps:>12.0} q/s");
                    rows.push(bench3::row("serve_point", &variant, seconds, sizes.queries));
                }
            }
        }
    }

    if smoke {
        eprintln!("smoke run: skipping JSON write and throughput floor");
        return;
    }
    assert!(
        peak_zipf_qps >= MIN_ZIPF_QPS,
        "acceptance floor: peak zipfian throughput {peak_zipf_qps:.0} q/s < {MIN_ZIPF_QPS:.0} q/s"
    );

    let body = format!(
        "{{\n      \"cells\": {cells},\n      \"aps\": {},\n      \"queries\": {},\n      \
         \"brick_edge\": 8,\n      \"zipf_exponent\": {ZIPF_EXPONENT},\n      \
         \"bit_identical\": true,\n      \"peak_zipfian_qps\": {:.1},\n      \"rows\": [\n{}\n      ]\n    }}",
        sizes.aps,
        sizes.queries,
        peak_zipf_qps,
        rows.iter()
            .map(|r| format!("      {r}"))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_3.json"));
    bench3::write_section(path, "serve", &body);
}
