//! Campaign simulation throughput: the per-AP link cache, plus the
//! corrected batched-kNN lattice fill.
//!
//! Two stages land in the `sim_campaign` section of `BENCH_3.json`:
//!
//! 1. `campaign` — the paper-demo measurement campaign with the
//!    deterministic per-(AP, position) link cache off vs on, same seed.
//!    The cache memoizes the exact mean-RSS float, so the reports are
//!    asserted bit-identical before any number is written.
//! 2. `rem_fill_knn_batched` — the BENCH_2 follow-up: the batched
//!    scaled-one-hot kNN lattice fill under both execution policies. With
//!    the policy-aware chunk sizing, the parallel path must no longer be
//!    slower than serial on this host (BENCH_2 had recorded 31.9k vs
//!    35.8k voxels/s).
//!
//! Custom harness (`harness = false`), same conventions as
//! `train_select`: best-of-reps timing, `AEROREM_BENCH_SMOKE=1` shrinks
//! the workload and skips the JSON write.

use std::path::Path;

use aerorem_bench::bench3;
use aerorem_core::exec::ExecPolicy;
use aerorem_core::features::{preprocess, PreprocessConfig};
use aerorem_core::models::ModelKind;
use aerorem_core::rem::RemGrid;
use aerorem_mission::{Campaign, CampaignConfig, CampaignReport, FleetPlan};
use aerorem_propagation::ap::MacAddress;
use aerorem_simkit::SimDuration;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seed shared by the cached and uncached campaign arms.
const SEED: u64 = 0xAE903;

fn campaign_config(link_cache: bool, smoke: bool) -> CampaignConfig {
    let mut cfg = CampaignConfig {
        link_cache,
        ..CampaignConfig::paper_demo()
    };
    if smoke {
        cfg.fleet_plan = FleetPlan {
            fleet_size: 2,
            total_waypoints: 12,
            travel_time: SimDuration::from_secs(2),
            scan_time: SimDuration::from_secs(2),
        };
    }
    cfg
}

fn run_campaign(link_cache: bool, smoke: bool) -> CampaignReport {
    Campaign::new(campaign_config(link_cache, smoke)).run(&mut StdRng::seed_from_u64(SEED))
}

fn report_row(rows: &mut Vec<String>, stage: &str, variant: &str, seconds: f64, items: usize) {
    eprintln!(
        "{stage:<22} {variant:<10} {seconds:>9.4} s  {:>10.1} items/s",
        items as f64 / seconds
    );
    rows.push(bench3::row(stage, variant, seconds, items));
}

fn main() {
    let smoke = bench3::smoke();
    let reps = if smoke { 1 } else { 3 };
    let mut rows: Vec<String> = Vec::new();

    // --- stage 1: the measurement campaign, link cache off vs on ---
    let (uncached_s, uncached) = bench3::best_of(reps, || run_campaign(false, smoke));
    report_row(
        &mut rows,
        "campaign",
        "uncached",
        uncached_s,
        uncached.samples.len(),
    );
    let (cached_s, cached) = bench3::best_of(reps, || run_campaign(true, smoke));
    report_row(
        &mut rows,
        "campaign",
        "cached",
        cached_s,
        cached.samples.len(),
    );
    assert_eq!(
        cached.samples, uncached.samples,
        "link cache must not change a single sample"
    );
    assert_eq!(cached.total_time, uncached.total_time);
    let (hits, misses) = cached.environment.link_cache_stats();
    assert!(hits > 0, "paper-demo campaign must revisit (AP, position) pairs");
    let hit_rate = hits as f64 / (hits + misses) as f64;
    eprintln!(
        "link cache: {hits}/{} lookups hit ({:.1}%), campaign {:.2}x vs uncached",
        hits + misses,
        hit_rate * 100.0,
        uncached_s / cached_s
    );

    // --- stage 2: the link-budget evaluation the cache targets ---
    // End-to-end campaign wall time is dominated by UAV dynamics stepping,
    // so the cache's effect there sits inside scheduler noise. This stage
    // replays the radio part alone: a scan dwell evaluates every AP several
    // times per hover position (once per captured beacon), which is exactly
    // the repeated deterministic work the cache memoizes.
    let dwell_beacons = 5usize;
    let n_positions = if smoke { 60 } else { 600 };
    let eval_cfg = campaign_config(false, smoke);
    let positions: Vec<_> = (0..n_positions)
        .map(|i| {
            let t = i as f64 * 0.61803;
            eval_cfg
                .volume
                .lerp_point((t * 1.117).fract(), (t * 0.733).fract(), (t * 0.271).fract())
        })
        .collect();
    let mut eval_secs = Vec::new();
    let mut lookups = 0usize;
    let mut checksum_by_arm = Vec::new();
    for enabled in [false, true] {
        let (s, sum) = bench3::best_of(reps, || {
            // Fresh environment per repetition: the cached arm starts cold
            // and warms as a real campaign would.
            let env = eval_cfg
                .building
                .generate(eval_cfg.volume, &mut StdRng::seed_from_u64(SEED));
            env.set_link_cache_enabled(enabled);
            let mut acc = 0.0;
            lookups = 0;
            for pos in &positions {
                for ap in env.access_points() {
                    for _ in 0..dwell_beacons {
                        acc += env.mean_rss(ap, *pos);
                        lookups += 1;
                    }
                }
            }
            acc
        });
        let variant = if enabled { "cached" } else { "uncached" };
        report_row(&mut rows, "rss_eval", variant, s, lookups);
        checksum_by_arm.push(sum);
        eval_secs.push(s);
    }
    assert_eq!(
        checksum_by_arm[0].to_bits(),
        checksum_by_arm[1].to_bits(),
        "cached link-budget sums must be bit-identical"
    );
    let rss_speedup = eval_secs[0] / eval_secs[1];
    eprintln!("rss_eval: cache gives {rss_speedup:.2}x on the link-budget stage");

    // --- stage 3: batched kNN lattice fill, serial vs parallel ---
    let resolution = if smoke { 0.5 } else { 0.12 };
    let (set, volume) = {
        // Reuse the campaign's own samples as training data so the stage
        // reflects the real pipeline hand-off.
        (uncached.samples.clone(), campaign_config(false, smoke).volume)
    };
    // The shrunken smoke campaign yields too few samples per MAC for the
    // paper's retention threshold; keep every MAC there.
    let prep_cfg = if smoke {
        PreprocessConfig {
            min_samples_per_mac: 1,
        }
    } else {
        PreprocessConfig::paper()
    };
    let (data, layout, prep) = preprocess(&set, &prep_cfg).expect("preprocess");
    eprintln!(
        "rem training set: {} samples, feature dim {}",
        prep.retained_samples,
        layout.dim()
    );
    let mut knn = ModelKind::KnnScaled16.build(&layout).expect("build kNN");
    knn.fit(&data.x, &data.y).expect("fit kNN");
    let mac = MacAddress::from_index(1);
    let mut secs = Vec::new();
    let mut reference: Option<RemGrid> = None;
    for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
        let (s, grid) = bench3::best_of(reps, || {
            RemGrid::generate_with(knn.as_ref(), &layout, volume, resolution, mac, policy)
                .expect("batched fill")
        });
        report_row(&mut rows, "rem_fill_knn_batched", policy.label(), s, grid.len());
        match &reference {
            Some(r) => assert_eq!(&grid, r, "policies must agree bit for bit"),
            None => reference = Some(grid),
        }
        secs.push(s);
    }
    let (serial_s, parallel_s) = (secs[0], secs[1]);
    eprintln!(
        "rem fill: parallel is {:.2}x serial wall time",
        parallel_s / serial_s
    );

    if !smoke {
        assert!(
            parallel_s <= serial_s * 1.15,
            "batched-parallel fill regressed vs serial again: {parallel_s:.3}s vs {serial_s:.3}s"
        );
        assert!(
            rss_speedup > 1.0,
            "link cache must measurably reduce the link-budget stage, got {rss_speedup:.2}x"
        );
        let body = format!(
            "{{\n      \"campaign_samples\": {},\n      \"link_cache_hits\": {},\n      \
             \"link_cache_misses\": {},\n      \"link_cache_hit_rate\": {:.4},\n      \
             \"campaign_speedup_cached\": {:.2},\n      \"rss_eval_speedup_cached\": {:.2},\n      \
             \"rem_voxels\": {},\n      \
             \"bit_identical\": true,\n      \"rows\": [\n{}\n      ]\n    }}",
            cached.samples.len(),
            hits,
            misses,
            hit_rate,
            uncached_s / cached_s,
            rss_speedup,
            reference.as_ref().map_or(0, RemGrid::len),
            rows.iter()
                .map(|r| format!("        {r}"))
                .collect::<Vec<_>>()
                .join(",\n"),
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_3.json");
        bench3::write_section(Path::new(path), "sim_campaign", &body);
    } else {
        eprintln!("smoke mode: skipping BENCH_3.json write");
    }
}
