//! Model-selection throughput: grid search, k-fold CV, and variogram
//! fitting, before and after the PR-3 training hot path.
//!
//! The "baseline" arms reproduce the pre-PR implementations inline: a
//! deep-copying `train_test_split`, row-nested `fit`, a per-row
//! `predict_one` scoring loop, per-fold dataset copies, and the naive
//! O(n²) nested-row variogram pair loop. The "serial"/"parallel" arms run
//! the shipped `grid_search_with` / `cross_validate_with` /
//! `empirical_variogram_matrix` paths, which train through borrowed
//! `DatasetView`s and the batched `fit_batch`/`predict_batch` contract.
//! Every arm is asserted **bit-identical** to the baseline before any
//! number is written, then the timing table lands in the `train_select`
//! section of `BENCH_3.json` at the repository root.
//!
//! Custom harness (`harness = false`): fixed-repetition best-of timing and
//! a machine-readable artifact, exactly as `rem_lattice` does for
//! inference. `AEROREM_BENCH_SMOKE=1` shrinks the workload, keeps the
//! identity assertions, and skips the JSON write.

use std::path::Path;

use aerorem_bench::bench3;
use aerorem_core::features::{preprocess, PreprocessConfig};
use aerorem_mission::{Sample, SampleSet};
use aerorem_ml::crossval::{cross_validate_with, kfold_indices};
use aerorem_ml::dataset::Dataset;
use aerorem_ml::gridsearch::{grid_search_with, knn_grid};
use aerorem_ml::knn::KnnRegressor;
use aerorem_ml::kriging::{
    empirical_variogram_matrix, fit_variogram_with, VariogramBin, VariogramKind,
};
use aerorem_ml::{FeatureMatrix, Regressor};
use aerorem_numerics::exec::ExecPolicy;
use aerorem_numerics::stats::rmse;
use aerorem_propagation::ap::{MacAddress, Ssid};
use aerorem_propagation::WifiChannel;
use aerorem_simkit::SimTime;
use aerorem_spatial::Aabb;
use aerorem_uav::UavId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// MACs in the synthetic world (matches `rem_lattice`: pushes the feature
/// dimension past the KD-tree cutoff, like the paper's ~80-MAC space).
const N_MACS: u32 = 8;
/// Grid-search validation fraction.
const VAL_FRACTION: f64 = 0.25;
/// Seed shared by all arms of a stage so every arm sees the same split.
const SEED: u64 = 42;

struct Sizes {
    samples_per_mac: usize,
    ks: &'static [usize],
    cv_folds: usize,
    variogram_points: usize,
    reps: usize,
}

const FULL: Sizes = Sizes {
    samples_per_mac: 300,
    ks: &[1, 2, 3, 4, 8, 16, 32, 64],
    cv_folds: 4,
    variogram_points: 1500,
    reps: 3,
};

const SMOKE: Sizes = Sizes {
    samples_per_mac: 40,
    ks: &[1, 3],
    cv_folds: 3,
    variogram_points: 150,
    reps: 1,
};

fn synthetic_world(samples_per_mac: usize) -> SampleSet {
    let volume = Aabb::paper_volume();
    let mut set = SampleSet::new();
    for mac in 1..=N_MACS {
        for i in 0..samples_per_mac {
            let t = i as f64 + mac as f64 * 0.37;
            let pos = volume.lerp_point(
                (t * 0.378).fract(),
                (t * 0.691).fract(),
                (t * 0.137).fract(),
            );
            let rssi = -55.0 - 3.0 * mac as f64 - 4.0 * pos.x - 2.0 * pos.y + pos.z;
            set.push(Sample {
                uav: UavId(0),
                waypoint_index: i,
                position: pos,
                true_position: pos,
                ssid: Ssid::new(format!("net{mac}")),
                mac: MacAddress::from_index(mac),
                channel: WifiChannel::new([1u8, 6, 11][(mac % 3) as usize]).unwrap(),
                rssi_dbm: rssi as i32,
                timestamp: SimTime::ZERO,
            });
        }
    }
    set
}

/// The pre-PR grid search: one deep-copying split, then a serial loop of
/// row-nested `fit` + per-row `predict_one` scoring. Returns
/// `(name, rmse)` sorted ascending, the same ranking contract as
/// `GridSearchResult`.
fn baseline_grid_search<R: Rng>(
    ks: &[usize],
    train: &Dataset,
    rng: &mut R,
) -> Vec<(String, f64)> {
    let (fit, val) = train
        .train_test_split(1.0 - VAL_FRACTION, rng)
        .expect("split");
    let mut scores = Vec::new();
    for (name, make) in knn_grid(ks) {
        let mut model = make();
        if model.fit(&fit.x, &fit.y).is_err() {
            continue;
        }
        let preds: Vec<f64> = val
            .x
            .iter()
            .map(|r| model.predict_one(r).expect("predict"))
            .collect();
        scores.push((name, rmse(&preds, &val.y)));
    }
    scores.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite RMSE"));
    scores
}

/// The pre-PR cross-validation: per-fold deep copies of the training rows,
/// row-nested `fit`, per-row `predict_one`.
fn baseline_cross_validate<R: Rng>(data: &Dataset, k: usize, rng: &mut R) -> Vec<f64> {
    let folds = kfold_indices(data.len(), k, rng).expect("folds");
    (0..k)
        .map(|held_out| {
            let train_idx: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != held_out)
                .flat_map(|(_, f)| f.iter().copied())
                .collect();
            let tx: Vec<Vec<f64>> = train_idx.iter().map(|&i| data.x[i].clone()).collect();
            let ty: Vec<f64> = train_idx.iter().map(|&i| data.y[i]).collect();
            let mut model = KnnRegressor::paper_tuned();
            model.fit(&tx, &ty).expect("fit");
            let preds: Vec<f64> = folds[held_out]
                .iter()
                .map(|&i| model.predict_one(&data.x[i]).expect("predict"))
                .collect();
            let truth: Vec<f64> = folds[held_out].iter().map(|&i| data.y[i]).collect();
            rmse(&preds, &truth)
        })
        .collect()
}

/// The pre-PR empirical variogram: nested rows, one global accumulator,
/// ascending `i < j` pair order. The blocked version visits pairs in the
/// same order but reassociates the sums through per-block partials, so it
/// matches this loop to float tolerance (and is bit-identical across
/// execution policies), not bit-identical to it.
fn naive_variogram(
    points: &[Vec<f64>],
    values: &[f64],
    n_bins: usize,
    max_lag: f64,
) -> Vec<VariogramBin> {
    let width = max_lag / n_bins as f64;
    let mut sum_gamma = vec![0.0; n_bins];
    let mut sum_lag = vec![0.0; n_bins];
    let mut count = vec![0usize; n_bins];
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let h = points[i]
                .iter()
                .zip(&points[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            if h >= max_lag {
                continue;
            }
            let bin = ((h / width) as usize).min(n_bins - 1);
            sum_gamma[bin] += 0.5 * (values[i] - values[j]).powi(2);
            sum_lag[bin] += h;
            count[bin] += 1;
        }
    }
    (0..n_bins)
        .filter(|&b| count[b] > 0)
        .map(|b| VariogramBin {
            lag: sum_lag[b] / count[b] as f64,
            gamma: sum_gamma[b] / count[b] as f64,
            pairs: count[b],
        })
        .collect()
}

fn report_row(rows: &mut Vec<String>, stage: &str, variant: &str, seconds: f64, items: usize) {
    eprintln!(
        "{stage:<20} {variant:<16} {seconds:>9.4} s  {:>10.1} items/s",
        items as f64 / seconds
    );
    rows.push(bench3::row(stage, variant, seconds, items));
}

fn main() {
    let smoke = bench3::smoke();
    let sizes = if smoke { SMOKE } else { FULL };
    let set = synthetic_world(sizes.samples_per_mac);
    let (data, layout, report) = preprocess(&set, &PreprocessConfig::paper()).expect("preprocess");
    eprintln!(
        "world: {} samples over {} MACs, feature dim {}{}",
        report.retained_samples,
        report.retained_macs,
        layout.dim(),
        if smoke { " (smoke)" } else { "" }
    );
    let n_candidates = sizes.ks.len() * 4;
    let mut rows: Vec<String> = Vec::new();

    // --- grid search ---
    let (base_s, base_scores) = bench3::best_of(sizes.reps, || {
        baseline_grid_search(sizes.ks, &data, &mut StdRng::seed_from_u64(SEED))
    });
    report_row(&mut rows, "grid_search", "baseline", base_s, n_candidates);
    let mut grid_secs = Vec::new();
    for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
        let (s, result) = bench3::best_of(sizes.reps, || {
            grid_search_with(
                knn_grid(sizes.ks),
                &data,
                VAL_FRACTION,
                &mut StdRng::seed_from_u64(SEED),
                policy,
            )
            .expect("grid search")
        });
        report_row(&mut rows, "grid_search", policy.label(), s, n_candidates);
        let got: Vec<(String, f64)> = result
            .scores
            .iter()
            .map(|c| (c.name.clone(), c.rmse))
            .collect();
        assert_eq!(
            got,
            base_scores,
            "grid_search/{}: ranking must be bit-identical to the pre-PR loop",
            policy.label()
        );
        grid_secs.push(s);
    }

    // --- k-fold cross-validation ---
    let (cv_base_s, cv_base) = bench3::best_of(sizes.reps, || {
        baseline_cross_validate(&data, sizes.cv_folds, &mut StdRng::seed_from_u64(SEED))
    });
    report_row(&mut rows, "cross_validate", "baseline", cv_base_s, sizes.cv_folds);
    let mut cv_secs = Vec::new();
    for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
        let (s, folds) = bench3::best_of(sizes.reps, || {
            cross_validate_with(
                &data,
                sizes.cv_folds,
                &mut StdRng::seed_from_u64(SEED),
                KnnRegressor::paper_tuned,
                policy,
            )
            .expect("cross validate")
        });
        report_row(&mut rows, "cross_validate", policy.label(), s, sizes.cv_folds);
        assert_eq!(
            folds,
            cv_base,
            "cross_validate/{}: per-fold RMSEs must be bit-identical to the pre-PR loop",
            policy.label()
        );
        cv_secs.push(s);
    }

    // --- empirical variogram + model fit ---
    let n_pts = sizes.variogram_points;
    let (n_bins, max_lag) = (15usize, 5.0f64);
    let pts: Vec<Vec<f64>> = (0..n_pts)
        .map(|i| {
            let t = i as f64 * 0.61803;
            vec![
                (t * 1.117).fract() * 6.0,
                (t * 0.733).fract() * 5.0,
                (t * 0.271).fract() * 2.5,
            ]
        })
        .collect();
    let vals: Vec<f64> = pts
        .iter()
        .map(|p| -50.0 - 2.0 * p[0] - p[1] + 0.5 * p[2])
        .collect();
    let (naive_s, naive_bins) =
        bench3::best_of(sizes.reps, || naive_variogram(&pts, &vals, n_bins, max_lag));
    report_row(&mut rows, "empirical_variogram", "naive", naive_s, n_pts);
    let xm = FeatureMatrix::from_rows(&pts).expect("points");
    let mut blocked_by_policy = Vec::new();
    for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
        let (s, bins) = bench3::best_of(sizes.reps, || {
            empirical_variogram_matrix(&xm, &vals, n_bins, max_lag, policy).expect("variogram")
        });
        let variant = if policy == ExecPolicy::Serial {
            "blocked_serial"
        } else {
            "blocked_parallel"
        };
        report_row(&mut rows, "empirical_variogram", variant, s, n_pts);
        assert_eq!(bins.len(), naive_bins.len());
        for (b, n) in bins.iter().zip(&naive_bins) {
            // Same pairs in each bin; sums agree to reassociation error.
            assert_eq!(b.pairs, n.pairs, "empirical_variogram/{variant}: bin pairing changed");
            assert!(
                (b.lag - n.lag).abs() <= 1e-9 * n.lag.abs().max(1.0)
                    && (b.gamma - n.gamma).abs() <= 1e-9 * n.gamma.abs().max(1.0),
                "empirical_variogram/{variant}: bins drifted from the naive loop: {b:?} vs {n:?}"
            );
        }
        blocked_by_policy.push(bins);
    }
    assert_eq!(
        blocked_by_policy[0], blocked_by_policy[1],
        "empirical_variogram: serial and parallel must agree bit for bit"
    );
    let blocked_bins = blocked_by_policy.pop().expect("two policies ran");
    for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
        // 288 dense grid candidates, see `fit_variogram_with`.
        let (s, fitted) = bench3::best_of(sizes.reps, || {
            fit_variogram_with(&blocked_bins, VariogramKind::Exponential, policy).expect("fit")
        });
        report_row(&mut rows, "fit_variogram", policy.label(), s, 288);
        let serial_ref =
            fit_variogram_with(&blocked_bins, VariogramKind::Exponential, ExecPolicy::Serial)
                .expect("fit");
        assert_eq!(fitted, serial_ref, "fit_variogram/{}", policy.label());
    }

    // Model selection = the grid search plus the CV pass; compare the
    // pre-PR serial loops against the best shipped arm.
    let new_best = grid_secs
        .iter()
        .zip(&cv_secs)
        .map(|(g, c)| g + c)
        .fold(f64::INFINITY, f64::min);
    let speedup = (base_s + cv_base_s) / new_best;
    eprintln!("model selection: {speedup:.2}x vs pre-PR serial loops");
    if !smoke {
        assert!(
            speedup >= 3.0,
            "model-selection speedup {speedup:.2}x fell below the 3x acceptance bar"
        );
        let body = format!(
            "{{\n      \"train_samples\": {},\n      \"feature_dim\": {},\n      \
             \"grid_candidates\": {},\n      \"cv_folds\": {},\n      \
             \"variogram_points\": {},\n      \"bit_identical\": true,\n      \
             \"model_selection_speedup\": {:.2},\n      \"rows\": [\n{}\n      ]\n    }}",
            report.retained_samples,
            layout.dim(),
            n_candidates,
            sizes.cv_folds,
            n_pts,
            speedup,
            rows.iter()
                .map(|r| format!("        {r}"))
                .collect::<Vec<_>>()
                .join(",\n"),
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_3.json");
        bench3::write_section(Path::new(path), "train_select", &body);
    } else {
        eprintln!("smoke mode: skipping BENCH_3.json write");
    }
}
