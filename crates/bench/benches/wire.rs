//! Wire round-trip throughput and latency: the serving daemon behind the
//! real protocol, over loopback TCP and a Unix-domain socket.
//!
//! This is the acceptance bench for `aerorem-served` (PR 9): it freezes a
//! synthetic multi-AP snapshot, starts an in-process [`Daemon`] on both
//! transports, and drives the seeded zipfian point workload through
//! [`WireClient`] with pipelined request frames, under both execution
//! policies. Before any number is written it asserts the responses that
//! crossed the wire are **bit-identical** to an in-process
//! `submit_batch` over the same store, then the timing rows (queries/s
//! plus p99 single-query round-trip latency) land in `BENCH_6.json` at
//! the repository root (gated by `scripts/bench_diff`), and the run
//! fails outright if the best configuration cannot sustain ≥100k point
//! queries/s through the socket — the PR's acceptance floor.
//!
//! Custom harness (`harness = false`): fixed-repetition best-of timing
//! and a machine-readable artifact, like the other PR benches.
//! `AEROREM_BENCH_SMOKE=1` shrinks the workload, keeps every identity
//! assertion, and skips the JSON write and the throughput floor.

use std::path::Path;
use std::time::Instant;

use aerorem_bench::bench3;
use aerorem_core::rem::RemGrid;
use aerorem_core::snapshot::RemSnapshot;
use aerorem_numerics::ExecPolicy;
use aerorem_propagation::ap::MacAddress;
use aerorem_serve::{
    point_workload, Daemon, DaemonConfig, Distribution, Listener, Query, RemStore, Response,
    StoreConfig, WireClient, WorkloadConfig,
};
use aerorem_spatial::Aabb;

/// Workload seed (same seed → same queries on every host).
const SEED: u64 = 2206;
/// Request frames kept in flight per connection while draining.
const PIPELINE_DEPTH: usize = 16;
/// Acceptance floor: best configuration must push this many point
/// queries per second through a loopback socket in a full run.
const MIN_WIRE_QPS: f64 = 100_000.0;

struct Sizes {
    dims: (usize, usize, usize),
    aps: u32,
    queries: usize,
    batch_sizes: &'static [usize],
    latency_probes: usize,
    reps: usize,
}

const FULL: Sizes = Sizes {
    dims: (32, 32, 16),
    aps: 3,
    queries: 200_000,
    batch_sizes: &[256, 4096],
    latency_probes: 2_000,
    reps: 3,
};

const SMOKE: Sizes = Sizes {
    dims: (8, 8, 4),
    aps: 2,
    queries: 4_000,
    batch_sizes: &[256],
    latency_probes: 100,
    reps: 1,
};

/// A deterministic synthetic snapshot (same shape family as the serve
/// bench: per-AP fields with distinct spatial structure).
fn synthetic_snapshot(sizes: &Sizes) -> RemSnapshot {
    let (nx, ny, nz) = sizes.dims;
    let grids = (1..=sizes.aps)
        .map(|mac| {
            let values = (0..nx * ny * nz)
                .map(|i| {
                    let t = i as f64 * 0.000_737 + mac as f64 * 1.37;
                    -35.0 - 25.0 * (t.sin() * t.cos()).abs() - 2.0 * mac as f64
                })
                .collect();
            RemGrid::from_parts(
                MacAddress::from_index(mac),
                Aabb::paper_volume(),
                sizes.dims,
                values,
            )
            .expect("synthetic grid shape")
        })
        .collect();
    RemSnapshot::new(grids).expect("synthetic snapshot is non-empty")
}

/// Drains the whole workload through one connection with a window of
/// pipelined request frames of `batch` queries each, returning all
/// responses in workload order (for identity checks).
///
/// The window depth shrinks as `batch` grows so the bytes in flight
/// stay bounded: with a blocking client and a thread-per-connection
/// daemon, a deep window of large frames fills both socket buffers and
/// deadlocks — the daemon blocks writing replies nobody is reading
/// while the client blocks writing the next request.
fn drain_wire(client: &mut WireClient, workload: &[Query], batch: usize) -> Vec<Response> {
    let depth = PIPELINE_DEPTH.min((8192 / batch).max(1));
    let mut out = Vec::with_capacity(workload.len());
    let chunks: Vec<&[Query]> = workload.chunks(batch).collect();
    let mut pending = std::collections::VecDeque::with_capacity(depth);
    for chunk in chunks {
        if pending.len() == depth {
            let seq = pending.pop_front().expect("non-empty window");
            let (_, responses) = client.recv_response(seq).expect("pipelined reply");
            out.extend(responses);
        }
        pending.push_back(client.send_query(0, chunk).expect("send request frame"));
    }
    while let Some(seq) = pending.pop_front() {
        let (_, responses) = client.recv_response(seq).expect("pipelined reply");
        out.extend(responses);
    }
    out
}

/// p99 of per-probe round-trip times, in seconds.
fn p99(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let idx = (samples.len() * 99).div_ceil(100).saturating_sub(1);
    samples[idx]
}

fn main() {
    let smoke = bench3::smoke();
    let sizes = if smoke { &SMOKE } else { &FULL };
    let snapshot = synthetic_snapshot(sizes);
    let store_config = StoreConfig {
        brick_edge: 8,
        shard_count: 4,
    };

    // Ground truth: the same snapshot answered in-process, no sockets.
    let store = RemStore::build(&snapshot, store_config).expect("store build");
    let workload = point_workload(
        &store,
        &WorkloadConfig {
            queries: sizes.queries,
            seed: SEED,
            distribution: Distribution::Zipfian,
            exponent: 1.0,
        },
    );
    let reference = store
        .submit_batch(&workload, ExecPolicy::Serial)
        .expect("in-process batch answers");

    let cells = sizes.dims.0 * sizes.dims.1 * sizes.dims.2;
    eprintln!(
        "world: {cells} cells x {} APs, {} queries per arm{}",
        sizes.aps,
        sizes.queries,
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<String> = Vec::new();
    let mut peak_qps = 0.0f64;
    let mut worst_p99_us = 0.0f64;
    for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
        let daemon = Daemon::new(DaemonConfig {
            policy,
            store: store_config,
        });
        daemon
            .load("bench", &snapshot.to_bytes())
            .expect("snapshot loads");
        let tcp = Listener::bind_tcp("127.0.0.1:0").expect("bind tcp loopback");
        let tcp_addr = tcp
            .endpoint()
            .strip_prefix("tcp ")
            .expect("tcp endpoint")
            .to_string();
        let sock = std::env::temp_dir().join(format!(
            "aerorem-wire-bench-{}-{}.sock",
            std::process::id(),
            policy.label()
        ));
        let uds = Listener::bind_uds(&sock).expect("bind uds");
        let handle = daemon.start(vec![tcp, uds]);

        let connect = |transport: &str| -> WireClient {
            match transport {
                "tcp" => WireClient::connect_tcp(&tcp_addr).expect("connect tcp"),
                _ => WireClient::connect_uds(&sock).expect("connect uds"),
            }
        };

        let mut shutdown_client = None;
        for transport in ["uds", "tcp"] {
            // Identity gate: everything that crosses the wire must match
            // the in-process answers bit for bit.
            let mut client = connect(transport);
            let over_wire = drain_wire(&mut client, &workload, sizes.batch_sizes[0]);
            assert_eq!(
                over_wire, reference,
                "{transport}/{}: wire responses must be bit-identical to in-process answers",
                policy.label()
            );

            for &batch in sizes.batch_sizes {
                let (seconds, answers) =
                    bench3::best_of(sizes.reps, || drain_wire(&mut client, &workload, batch));
                assert_eq!(answers, reference, "batch size must not change answers");
                let qps = sizes.queries as f64 / seconds;
                peak_qps = peak_qps.max(qps);
                // `exec-<policy>`, not a bare `_serial`/`_parallel`
                // suffix: wire timings are transport-dominated, so the
                // bench_diff parallel-never-loses ratio gate (a PR-7
                // executor invariant) must not pair these rows.
                let variant = format!("{transport}_b{batch}_exec-{}", policy.label());
                eprintln!("{variant:<28} {seconds:>9.4} s  {qps:>12.0} q/s");
                rows.push(bench3::row("wire_point", &variant, seconds, sizes.queries));
            }

            // Latency: unpipelined single-query round trips, p99.
            let mut samples: Vec<f64> = (0..sizes.latency_probes)
                .map(|i| {
                    let probe = &workload[i % workload.len()..][..1];
                    let start = Instant::now();
                    let (_, responses) = client.query(0, probe).expect("latency probe");
                    let elapsed = start.elapsed().as_secs_f64();
                    assert_eq!(responses.len(), 1);
                    elapsed
                })
                .collect();
            let p99_s = p99(&mut samples);
            worst_p99_us = worst_p99_us.max(p99_s * 1e6);
            let variant = format!("{transport}_p99_exec-{}", policy.label());
            eprintln!("{variant:<28} {:>9.1} us round trip", p99_s * 1e6);
            rows.push(bench3::row("wire_latency", &variant, p99_s, 1));

            shutdown_client = Some(client);
        }

        shutdown_client
            .expect("at least one transport ran")
            .shutdown()
            .expect("daemon acknowledges shutdown");
        handle.join();
    }

    if smoke {
        eprintln!("smoke run: skipping JSON write and throughput floor");
        return;
    }
    assert!(
        peak_qps >= MIN_WIRE_QPS,
        "acceptance floor: peak wire throughput {peak_qps:.0} q/s < {MIN_WIRE_QPS:.0} q/s"
    );

    let body = format!(
        "{{\n      \"cells\": {cells},\n      \"aps\": {},\n      \"queries\": {},\n      \
         \"pipeline_depth\": {PIPELINE_DEPTH},\n      \"latency_probes\": {},\n      \
         \"bit_identical\": true,\n      \"peak_wire_qps\": {:.1},\n      \
         \"worst_p99_us\": {:.1},\n      \"rows\": [\n{}\n      ]\n    }}",
        sizes.aps,
        sizes.queries,
        sizes.latency_probes,
        peak_qps,
        worst_p99_us,
        rows.iter()
            .map(|r| format!("      {r}"))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json"));
    bench3::write_section_titled(path, "aerorem wire serving (PR 9)", "wire", &body);
}
