//! One Criterion benchmark per paper artifact: how long each figure /
//! statistic takes to regenerate. The *values* come from the `experiments`
//! binary; these benches track the cost of the pipelines behind them.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aerorem_bench::{endurance, fig5, fig6, fig7, fig8, loc, prep, queue};
use aerorem_mission::campaign::{Campaign, CampaignConfig};
use aerorem_mission::plan::FleetPlan;
use aerorem_simkit::SimDuration;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reduced campaign (2 UAVs × 8 waypoints) keeps per-iteration cost sane
/// while exercising the identical code path as the 72-waypoint demo.
fn small_campaign() -> aerorem_mission::campaign::CampaignReport {
    let cfg = CampaignConfig {
        fleet_plan: FleetPlan {
            fleet_size: 2,
            total_waypoints: 16,
            travel_time: SimDuration::from_secs(2),
            scan_time: SimDuration::from_secs(2),
        },
        ..CampaignConfig::paper_demo()
    };
    let mut rng = StdRng::seed_from_u64(0xBE7C);
    Campaign::new(cfg).run(&mut rng)
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_interference_sweep", |b| {
        b.iter(|| black_box(fig5::run(black_box(1))))
    });
}

fn bench_fig6_fig7_campaign(c: &mut Criterion) {
    // The campaign is the shared substrate of Figures 6 and 7.
    let mut group = c.benchmark_group("campaign");
    group.sample_size(10);
    group.bench_function("fig6_fig7_small_campaign", |b| {
        b.iter(|| {
            let report = small_campaign();
            let f6 = fig6::run(&report);
            let f7 = fig7::run(&report);
            black_box((f6, f7))
        })
    });
    group.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let report = small_campaign();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("fig8_model_zoo", |b| {
        b.iter(|| black_box(fig8::run(black_box(&report), false, 3).unwrap()))
    });
    group.finish();
}

fn bench_endurance(c: &mut Criterion) {
    let mut group = c.benchmark_group("endurance");
    group.sample_size(10);
    group.bench_function("endurance_test", |b| {
        b.iter(|| black_box(endurance::run(black_box(4))))
    });
    group.finish();
}

fn bench_prep(c: &mut Criterion) {
    let report = small_campaign();
    c.bench_function("prep_preprocessing", |b| {
        b.iter(|| black_box(prep::run(black_box(&report)).unwrap()))
    });
}

fn bench_loc(c: &mut Criterion) {
    let mut group = c.benchmark_group("loc");
    group.sample_size(10);
    group.bench_function("loc_anchor_sweep", |b| {
        b.iter(|| black_box(loc::run(black_box(5))))
    });
    group.finish();
}

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue");
    group.sample_size(10);
    group.bench_function("queue_firmware_ablation", |b| {
        b.iter(|| black_box(queue::run(black_box(6))))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_fig5,
    bench_fig6_fig7_campaign,
    bench_fig8,
    bench_endurance,
    bench_prep,
    bench_loc,
    bench_queue
);
criterion_main!(figures);
