//! Micro-benchmarks of the substrates: the hot inner loops every experiment
//! rides on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use aerorem_localization::{AnchorConstellation, Ekf, RangingConfig, RangingMode};
use aerorem_ml::kriging::{KrigingConfig, OrdinaryKriging};
use aerorem_ml::mlp::{Mlp, MlpConfig};
use aerorem_ml::Regressor;
use aerorem_propagation::building::SyntheticBuilding;
use aerorem_propagation::scan::{perform_scan, ScanConfig};
use aerorem_propagation::shadowing::ShadowingField;
use aerorem_spatial::{Aabb, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_shadowing(c: &mut Criterion) {
    let field = ShadowingField::new(4.0, 2.0, 7);
    let mut i = 0u64;
    c.bench_function("shadowing_sample", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(field.sample(i % 73, Vec3::new((i % 100) as f64 * 0.1, 1.0, 1.0)))
        })
    });
}

fn bench_mean_rss(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let env = SyntheticBuilding::paper_like().generate(Aabb::paper_volume(), &mut rng);
    let ap = &env.access_points()[0];
    c.bench_function("mean_rss_with_walls", |b| {
        b.iter(|| black_box(env.mean_rss(black_box(ap), Vec3::new(1.5, 1.5, 1.0))))
    });
}

fn bench_scan(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let env = SyntheticBuilding::paper_like().generate(Aabb::paper_volume(), &mut rng);
    let cfg = ScanConfig::paper_default();
    c.bench_function("full_ap_scan", |b| {
        b.iter(|| {
            black_box(perform_scan(
                &env,
                Vec3::new(1.87, 1.6, 1.0),
                &[],
                &cfg,
                &mut rng,
            ))
        })
    });
}

fn bench_ekf(c: &mut Criterion) {
    let anchors = AnchorConstellation::volume_corners(Aabb::paper_volume());
    let cfg = RangingConfig::lps_default(RangingMode::Tdoa);
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("ekf_predict_update_epoch", |b| {
        let mut ekf = Ekf::new(Vec3::new(1.8, 1.6, 1.0), 0.5);
        b.iter(|| {
            ekf.predict(0.01);
            let meas = cfg.measure(&anchors, Vec3::new(1.87, 1.6, 1.0), &mut rng);
            let _ = ekf.update_ranging(&anchors, &meas, 0.0016);
            black_box(ekf.position())
        })
    });
}

fn bench_mlp_epoch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let x: Vec<Vec<f64>> = (0..256)
        .map(|_| (0..40).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let y: Vec<f64> = (0..256).map(|_| rng.gen_range(-90.0..-50.0)).collect();
    let mut group = c.benchmark_group("mlp");
    group.sample_size(10);
    group.bench_function("mlp_train_20_epochs", |b| {
        b.iter(|| {
            let mut net = Mlp::new(MlpConfig {
                epochs: 20,
                ..MlpConfig::paper_tuned()
            });
            net.fit(&x, &y).unwrap();
            black_box(net.predict_one(&x[0]).unwrap())
        })
    });
    group.finish();
}

fn bench_kriging(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    for n in [100usize, 400] {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..4.0)).collect())
            .collect();
        let y: Vec<f64> = x.iter().map(|r| -70.0 - 2.0 * r[0] + r[1]).collect();
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&x, &y).unwrap();
        let mut group = c.benchmark_group("kriging");
        group.bench_with_input(BenchmarkId::new("predict", n), &ok, |b, ok| {
            b.iter(|| black_box(ok.predict_one(&[1.5, 2.0, 1.0]).unwrap()))
        });
        group.finish();
    }
}

criterion_group!(
    substrates,
    bench_shadowing,
    bench_mean_rss,
    bench_scan,
    bench_ekf,
    bench_mlp_epoch,
    bench_kriging
);
criterion_main!(substrates);
