//! Executor scaling: thread count × chunk size across the chunked hot
//! paths (PR 7).
//!
//! This is the acceptance bench for the chunked `exec` rebuild. It sweeps
//! worker count (via the `AEROREM_EXEC_THREADS` override) and chunk size
//! (via `Granularity`) over a raw-kernel workload, then times the real
//! migrated stages — grid search, the batched REM lattice fill, the
//! blocked empirical variogram, and sharded point serving — under both
//! execution policies. Every arm is asserted **bit-identical** to its
//! serial reference before any number is written; the executor's
//! determinism contract makes worker count and chunking invisible in the
//! output, so the sweep can only move wall time.
//!
//! Perf gates are hardware-conditional: with ≥ 2 cores the default
//! parallel arm must reach ≥ 2× serial on `grid_search` and
//! `rem_fill_knn_batched`; on a single-core host (where the executor's
//! `workers == 1` path is an inline serial loop) parallel must instead
//! stay within 10 % of serial — the PR's "parallel never loses" floor.
//! The blocked variogram must beat the naive pair loop by ≥ 1.1× on any
//! host, and no `serve_point` variant may lose to its serial pair.
//! Forced-thread sweep rows whose worker count exceeds the host's
//! physical parallelism are tagged `_oversub` (e.g. `parallel_t4_oversub`
//! on a single-core host): they measure scheduler churn rather than
//! scaling, so `scripts/bench_diff` skips its parallel-never-loses gate
//! on them.
//!
//! Timing rows land in the `scaling` section of `BENCH_4.json` at the
//! repository root (gated by `scripts/bench_diff`). Custom harness
//! (`harness = false`); `AEROREM_BENCH_SMOKE=1` shrinks the workload,
//! keeps every identity assertion, and skips the JSON write and the perf
//! gates.

use std::path::Path;

use aerorem_bench::bench3;
use aerorem_core::exec::{self, Granularity};
use aerorem_core::features::{preprocess, PreprocessConfig};
use aerorem_core::models::ModelKind;
use aerorem_core::rem::RemGrid;
use aerorem_core::snapshot::RemSnapshot;
use aerorem_mission::{Sample, SampleSet};
use aerorem_ml::gridsearch::{grid_search_with, knn_grid};
use aerorem_ml::kriging::{empirical_variogram_matrix, VariogramBin};
use aerorem_ml::FeatureMatrix;
use aerorem_numerics::kernels::sq_euclidean;
use aerorem_numerics::ExecPolicy;
use aerorem_propagation::ap::{MacAddress, Ssid};
use aerorem_propagation::WifiChannel;
use aerorem_serve::{point_workload, Distribution, RemStore, StoreConfig, WorkloadConfig};
use aerorem_simkit::SimTime;
use aerorem_spatial::Aabb;
use aerorem_uav::UavId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// MACs in the synthetic world (matches the other PR benches).
const N_MACS: u32 = 8;
/// Grid-search validation fraction and split seed, shared by all arms.
const VAL_FRACTION: f64 = 0.25;
const SEED: u64 = 42;
/// Parity tolerance: on hosts where parallelism cannot win, the parallel
/// arm must stay within this factor of serial (best-of timing).
const PARITY_FACTOR: f64 = 1.10;

struct Sizes {
    samples_per_mac: usize,
    ks: &'static [usize],
    kernel_rows: usize,
    kernel_dim: usize,
    chunk_sizes: &'static [usize],
    thread_sweep: &'static [usize],
    rem_resolution_m: f64,
    variogram_points: usize,
    serve_dims: (usize, usize, usize),
    serve_queries: usize,
    serve_batches: &'static [usize],
    reps: usize,
}

const FULL: Sizes = Sizes {
    samples_per_mac: 200,
    ks: &[1, 2, 3, 4, 8, 16, 32, 64],
    kernel_rows: 20_000,
    kernel_dim: 16,
    chunk_sizes: &[8, 64, 512, 4096],
    thread_sweep: &[1, 2, 4],
    rem_resolution_m: 0.15,
    variogram_points: 1500,
    serve_dims: (32, 32, 16),
    serve_queries: 200_000,
    serve_batches: &[1024, 65536],
    reps: 3,
};

const SMOKE: Sizes = Sizes {
    samples_per_mac: 40,
    ks: &[1, 3],
    kernel_rows: 2_000,
    kernel_dim: 8,
    chunk_sizes: &[8, 512],
    thread_sweep: &[1, 2],
    rem_resolution_m: 0.4,
    variogram_points: 150,
    serve_dims: (16, 16, 8),
    serve_queries: 20_000,
    serve_batches: &[512],
    reps: 1,
};

fn synthetic_world(samples_per_mac: usize) -> SampleSet {
    let volume = Aabb::paper_volume();
    let mut set = SampleSet::new();
    for mac in 1..=N_MACS {
        for i in 0..samples_per_mac {
            let t = i as f64 + mac as f64 * 0.37;
            let pos = volume.lerp_point(
                (t * 0.378).fract(),
                (t * 0.691).fract(),
                (t * 0.137).fract(),
            );
            let rssi = -55.0 - 3.0 * mac as f64 - 4.0 * pos.x - 2.0 * pos.y + pos.z;
            set.push(Sample {
                uav: UavId(0),
                waypoint_index: i,
                position: pos,
                true_position: pos,
                ssid: Ssid::new(format!("net{mac}")),
                mac: MacAddress::from_index(mac),
                channel: WifiChannel::new([1u8, 6, 11][(mac % 3) as usize]).unwrap(),
                rssi_dbm: rssi as i32,
                timestamp: SimTime::ZERO,
            });
        }
    }
    set
}

/// The pre-PR empirical variogram: nested rows, one global accumulator.
/// Kept as the timing baseline the blocked rewrite must beat.
fn naive_variogram(
    points: &[Vec<f64>],
    values: &[f64],
    n_bins: usize,
    max_lag: f64,
) -> Vec<VariogramBin> {
    let width = max_lag / n_bins as f64;
    let mut sum_gamma = vec![0.0; n_bins];
    let mut sum_lag = vec![0.0; n_bins];
    let mut count = vec![0usize; n_bins];
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let h = points[i]
                .iter()
                .zip(&points[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            if h >= max_lag {
                continue;
            }
            let bin = ((h / width) as usize).min(n_bins - 1);
            sum_gamma[bin] += 0.5 * (values[i] - values[j]).powi(2);
            sum_lag[bin] += h;
            count[bin] += 1;
        }
    }
    (0..n_bins)
        .filter(|&b| count[b] > 0)
        .map(|b| VariogramBin {
            lag: sum_lag[b] / count[b] as f64,
            gamma: sum_gamma[b] / count[b] as f64,
            pairs: count[b],
        })
        .collect()
}

/// Runs `f` with `AEROREM_EXEC_THREADS` pinned to `n`, then restores the
/// previous value. The override only affects the parallel arm's worker
/// count; results are policy- and worker-count-independent by contract.
fn with_forced_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    let prev = std::env::var_os("AEROREM_EXEC_THREADS");
    std::env::set_var("AEROREM_EXEC_THREADS", n.to_string());
    let out = f();
    match prev {
        Some(v) => std::env::set_var("AEROREM_EXEC_THREADS", v),
        None => std::env::remove_var("AEROREM_EXEC_THREADS"),
    }
    out
}

fn report_row(rows: &mut Vec<String>, stage: &str, variant: &str, seconds: f64, items: usize) {
    eprintln!(
        "{stage:<22} {variant:<20} {seconds:>9.4} s  {:>12.1} items/s",
        items as f64 / seconds
    );
    rows.push(bench3::row(stage, variant, seconds, items));
}

/// Suffix for forced-thread sweep rows whose worker count exceeds the
/// host's physical parallelism: those arms time scheduler churn, not
/// scaling, so they are tagged and `scripts/bench_diff` excludes them
/// from the parallel-never-loses gate.
fn oversub_tag(threads: usize, hw_threads: usize) -> &'static str {
    if threads > hw_threads {
        "_oversub"
    } else {
        ""
    }
}

/// Asserts the hardware-conditional speedup gate for one stage's default
/// serial/parallel pair.
fn gate_pair(stage: &str, serial_s: f64, parallel_s: f64, hw_threads: usize) {
    if hw_threads >= 2 {
        assert!(
            parallel_s * 2.0 <= serial_s,
            "{stage}: parallel ({parallel_s:.4}s) must be >= 2x serial ({serial_s:.4}s) on a {hw_threads}-core host"
        );
    } else {
        assert!(
            parallel_s <= serial_s * PARITY_FACTOR,
            "{stage}: parallel ({parallel_s:.4}s) must not lose to serial ({serial_s:.4}s) on a single-core host"
        );
    }
}

fn main() {
    let smoke = bench3::smoke();
    let sizes = if smoke { &SMOKE } else { &FULL };
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "host parallelism: {hw_threads} thread(s){}",
        if smoke { " (smoke)" } else { "" }
    );
    let mut rows: Vec<String> = Vec::new();

    // --- raw kernel: chunk size x thread count over map_chunks ---
    // One item = one sq_euclidean row against a fixed query; cheap enough
    // that executor bookkeeping dominates at small chunks, which is
    // exactly what the sweep is probing.
    let dim = sizes.kernel_dim;
    let points: Vec<Vec<f64>> = (0..sizes.kernel_rows)
        .map(|i| {
            (0..dim)
                .map(|d| ((i * dim + d) as f64 * 0.618_033).fract() * 10.0)
                .collect()
        })
        .collect();
    let query: Vec<f64> = (0..dim).map(|d| d as f64 * 0.5).collect();
    let reference: Vec<f64> = points.iter().map(|p| sq_euclidean(p, &query)).collect();
    for &chunk in sizes.chunk_sizes {
        let gran = Granularity::new(chunk, chunk);
        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
            let run = || -> Vec<f64> {
                exec::map_chunks(policy, gran, &points, |_, block| {
                    block.iter().map(|p| sq_euclidean(p, &query)).collect::<Vec<f64>>()
                })
                .into_iter()
                .flatten()
                .collect()
            };
            assert_eq!(
                run(),
                reference,
                "kernel_chunks/c{chunk}/{}: chunking must be invisible in the output",
                policy.label()
            );
            let (s, _) = bench3::best_of(sizes.reps, run);
            let variant = format!("c{chunk}_{}", policy.label());
            report_row(&mut rows, "kernel_chunks", &variant, s, sizes.kernel_rows);
        }
    }
    // Thread sweep at the largest chunk: forced worker counts, including
    // oversubscription past the physical core count.
    {
        let chunk = *sizes.chunk_sizes.last().expect("chunk sweep non-empty");
        let gran = Granularity::new(chunk, chunk);
        for &threads in sizes.thread_sweep {
            let run = || -> Vec<f64> {
                with_forced_threads(threads, || {
                    exec::map_chunks(ExecPolicy::Parallel, gran, &points, |_, block| {
                        block.iter().map(|p| sq_euclidean(p, &query)).collect::<Vec<f64>>()
                    })
                    .into_iter()
                    .flatten()
                    .collect()
                })
            };
            assert_eq!(
                run(),
                reference,
                "kernel_chunks/t{threads}: worker count must be invisible in the output"
            );
            let (s, _) = bench3::best_of(sizes.reps, run);
            let variant = format!(
                "c{chunk}_parallel_t{threads}{}",
                oversub_tag(threads, hw_threads)
            );
            report_row(&mut rows, "kernel_chunks", &variant, s, sizes.kernel_rows);
        }
    }

    // --- grid search (per-item granularity: expensive, uneven items) ---
    let set = synthetic_world(sizes.samples_per_mac);
    let (data, layout, report) = preprocess(&set, &PreprocessConfig::paper()).expect("preprocess");
    eprintln!(
        "world: {} samples over {} MACs, feature dim {}",
        report.retained_samples,
        report.retained_macs,
        layout.dim()
    );
    let n_candidates = sizes.ks.len() * 4;
    let grid_ref = grid_search_with(
        knn_grid(sizes.ks),
        &data,
        VAL_FRACTION,
        &mut StdRng::seed_from_u64(SEED),
        ExecPolicy::Serial,
    )
    .expect("grid search");
    let mut grid_secs = [0.0f64; 2];
    for (i, policy) in [ExecPolicy::Serial, ExecPolicy::Parallel].into_iter().enumerate() {
        let (s, result) = bench3::best_of(sizes.reps, || {
            grid_search_with(
                knn_grid(sizes.ks),
                &data,
                VAL_FRACTION,
                &mut StdRng::seed_from_u64(SEED),
                policy,
            )
            .expect("grid search")
        });
        assert_eq!(
            result.scores, grid_ref.scores,
            "grid_search/{}: ranking must be bit-identical to serial",
            policy.label()
        );
        report_row(&mut rows, "grid_search", policy.label(), s, n_candidates);
        grid_secs[i] = s;
    }

    // --- batched REM lattice fill ---
    let mut knn = ModelKind::KnnScaled16.build(&layout).expect("build kNN");
    knn.fit(&data.x, &data.y).expect("fit kNN");
    let volume = Aabb::paper_volume();
    let mac = MacAddress::from_index(1);
    let fill = |policy: ExecPolicy| {
        RemGrid::generate_with(
            knn.as_ref(),
            &layout,
            volume,
            sizes.rem_resolution_m,
            mac,
            policy,
        )
        .expect("lattice fill")
    };
    let rem_ref = fill(ExecPolicy::Serial);
    let voxels = rem_ref.len();
    let mut rem_secs = [0.0f64; 2];
    for (i, policy) in [ExecPolicy::Serial, ExecPolicy::Parallel].into_iter().enumerate() {
        let (s, grid) = bench3::best_of(sizes.reps, || fill(policy));
        assert_eq!(
            grid, rem_ref,
            "rem_fill_knn_batched/{}: grid must be bit-identical to serial",
            policy.label()
        );
        report_row(&mut rows, "rem_fill_knn_batched", policy.label(), s, voxels);
        rem_secs[i] = s;
    }
    // Forced-thread sweep on the fill: informational on a small host,
    // the scaling curve on a big one (identity still asserted).
    for &threads in sizes.thread_sweep {
        let (s, grid) = bench3::best_of(sizes.reps, || {
            with_forced_threads(threads, || fill(ExecPolicy::Parallel))
        });
        assert_eq!(grid, rem_ref, "rem_fill_knn_batched/t{threads}");
        let variant = format!("parallel_t{threads}{}", oversub_tag(threads, hw_threads));
        report_row(&mut rows, "rem_fill_knn_batched", &variant, s, voxels);
    }

    // --- empirical variogram: naive pair loop vs blocked rewrite ---
    let n_pts = sizes.variogram_points;
    let (n_bins, max_lag) = (15usize, 5.0f64);
    let pts: Vec<Vec<f64>> = (0..n_pts)
        .map(|i| {
            let t = i as f64 * 0.61803;
            vec![
                (t * 1.117).fract() * 6.0,
                (t * 0.733).fract() * 5.0,
                (t * 0.271).fract() * 2.5,
            ]
        })
        .collect();
    let vals: Vec<f64> = pts
        .iter()
        .map(|p| -50.0 - 2.0 * p[0] - p[1] + 0.5 * p[2])
        .collect();
    let (naive_s, naive_bins) =
        bench3::best_of(sizes.reps, || naive_variogram(&pts, &vals, n_bins, max_lag));
    report_row(&mut rows, "empirical_variogram", "naive", naive_s, n_pts);
    let xm = FeatureMatrix::from_rows(&pts).expect("points");
    let mut blocked_serial_s = f64::INFINITY;
    let mut blocked: Option<Vec<VariogramBin>> = None;
    for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
        let (s, bins) = bench3::best_of(sizes.reps, || {
            empirical_variogram_matrix(&xm, &vals, n_bins, max_lag, policy).expect("variogram")
        });
        let variant = if policy == ExecPolicy::Serial {
            blocked_serial_s = s;
            "blocked_serial"
        } else {
            "blocked_parallel"
        };
        report_row(&mut rows, "empirical_variogram", variant, s, n_pts);
        assert_eq!(bins.len(), naive_bins.len());
        for (b, n) in bins.iter().zip(&naive_bins) {
            // Same pairs per bin; sums agree to reassociation error.
            assert_eq!(b.pairs, n.pairs, "empirical_variogram/{variant}: pairing changed");
            assert!(
                (b.lag - n.lag).abs() <= 1e-9 * n.lag.abs().max(1.0)
                    && (b.gamma - n.gamma).abs() <= 1e-9 * n.gamma.abs().max(1.0),
                "empirical_variogram/{variant}: bins drifted from the naive loop"
            );
        }
        match &blocked {
            Some(first) => assert_eq!(
                first, &bins,
                "empirical_variogram: serial and parallel must agree bit for bit"
            ),
            None => blocked = Some(bins),
        }
    }

    // --- sharded point serving (small-batch fallback in play) ---
    let (nx, ny, nz) = sizes.serve_dims;
    let grids = (1..=4u32)
        .map(|m| {
            let values = (0..nx * ny * nz)
                .map(|i| {
                    let t = i as f64 * 0.000_737 + m as f64 * 1.37;
                    -35.0 - 25.0 * (t.sin() * t.cos()).abs() - 2.0 * m as f64
                })
                .collect();
            RemGrid::from_parts(MacAddress::from_index(m), volume, sizes.serve_dims, values)
                .expect("serve grid")
        })
        .collect();
    let store = RemStore::build(
        &RemSnapshot::new(grids).expect("serve snapshot"),
        StoreConfig {
            brick_edge: 8,
            shard_count: 4,
        },
    )
    .expect("store build");
    let workload = point_workload(
        &store,
        &WorkloadConfig {
            queries: sizes.serve_queries,
            seed: 2206,
            distribution: Distribution::Zipfian,
            exponent: 1.0,
        },
    );
    let serve_ref: Vec<_> = workload.iter().map(|q| store.answer(q)).collect();
    for &batch in sizes.serve_batches {
        let mut pair = [0.0f64; 2];
        for (i, policy) in [ExecPolicy::Serial, ExecPolicy::Parallel].into_iter().enumerate() {
            let run = || {
                let mut out = Vec::with_capacity(workload.len());
                for slice in workload.chunks(batch) {
                    out.extend(store.submit_batch(slice, policy).expect("batch answers"));
                }
                out
            };
            assert_eq!(
                run(),
                serve_ref,
                "serve_point/b{batch}/{}: answers must be bit-identical",
                policy.label()
            );
            let (s, _) = bench3::best_of(sizes.reps, run);
            let variant = format!("b{batch}_{}", policy.label());
            report_row(&mut rows, "serve_point", &variant, s, sizes.serve_queries);
            pair[i] = s;
        }
        if !smoke {
            assert!(
                pair[1] <= pair[0] * PARITY_FACTOR,
                "serve_point/b{batch}: parallel ({:.4}s) must not lose to serial ({:.4}s)",
                pair[1],
                pair[0]
            );
        }
    }

    if smoke {
        eprintln!("smoke run: skipping perf gates and BENCH_4.json write");
        return;
    }
    gate_pair("grid_search", grid_secs[0], grid_secs[1], hw_threads);
    gate_pair("rem_fill_knn_batched", rem_secs[0], rem_secs[1], hw_threads);
    assert!(
        blocked_serial_s * 1.1 <= naive_s,
        "empirical_variogram: blocked_serial ({blocked_serial_s:.4}s) must beat naive ({naive_s:.4}s) by >= 1.1x"
    );

    let body = format!(
        "{{\n      \"host_threads\": {hw_threads},\n      \"kernel_rows\": {},\n      \
         \"grid_candidates\": {n_candidates},\n      \"rem_voxels\": {voxels},\n      \
         \"variogram_points\": {n_pts},\n      \"serve_queries\": {},\n      \
         \"bit_identical\": true,\n      \"rows\": [\n{}\n      ]\n    }}",
        sizes.kernel_rows,
        sizes.serve_queries,
        rows.iter()
            .map(|r| format!("        {r}"))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_4.json"));
    bench3::write_section_titled(
        path,
        "aerorem parallel executor scaling (PR 7)",
        "scaling",
        &body,
    );
}
