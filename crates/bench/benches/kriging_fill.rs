//! Kriging lattice fill: the PR-8 acceptance bench.
//!
//! Fills the paper's room volume (prediction **and** variance per voxel)
//! with the ordinary-kriging estimator five ways:
//!
//! * `per_voxel_prepr` — an inline reproduction of the pre-PR path: a
//!   fresh query encode and `KrigingScratch`-equivalent per voxel (the
//!   `rem.rs:415` bug), brute-force neighbour scan, full distance-ordered
//!   `(k+1)²` system assembly, and a from-scratch `Matrix::solve` per
//!   voxel. This is the timing baseline the ≥ 3× acceptance gate divides
//!   by.
//! * `per_item_serial` — the shipped per-item path with one hoisted
//!   scratch: the **bit reference** every shipped arm must match exactly.
//! * `batched_serial` / `batched_parallel` —
//!   `predict_with_variance_batch_with` under both policies.
//! * `rem_fill_serial` / `rem_fill_parallel` —
//!   `RemGrid::generate_with_variance`, the end-to-end lattice fill
//!   (encode + solve + σ), asserted bit-identical to the serial
//!   `generate_with_confidence` walk.
//!
//! The pre-PR arm assembled the system in neighbour-distance order while
//! the shipped solver canonicalizes to index order, so the two agree only
//! to LU reordering error — the baseline is checked against the reference
//! within 1e-6, while every shipped arm is asserted **bit-identical** to
//! `per_item_serial` before any number is written. Factor-cache hit rates
//! are reported per arm and land in the `kriging_fill` section of
//! `BENCH_5.json` (gated by `scripts/bench_diff`). Custom harness
//! (`harness = false`); `AEROREM_BENCH_SMOKE=1` shrinks the lattice, keeps
//! every identity assertion, and skips the JSON write and the speedup
//! gate.

use std::path::Path;

use aerorem_bench::bench3;
use aerorem_core::exec::ExecPolicy;
use aerorem_core::features::{preprocess, PreprocessConfig};
use aerorem_core::instrument::Instrumentation;
use aerorem_core::rem::RemGrid;
use aerorem_mission::{Sample, SampleSet};
use aerorem_ml::kdtree::brute_force_topk_into;
use aerorem_ml::kriging::{KrigingCacheStats, KrigingConfig, KrigingScratch, OrdinaryKriging};
use aerorem_ml::{FeatureMatrix, Regressor};
use aerorem_numerics::kernels::sq_euclidean;
use aerorem_numerics::Matrix;
use aerorem_propagation::ap::{MacAddress, Ssid};
use aerorem_propagation::WifiChannel;
use aerorem_simkit::SimTime;
use aerorem_spatial::{Aabb, Vec3};
use aerorem_uav::UavId;

/// MACs in the synthetic world. All beacon on one channel, so the feature
/// dimension is 3 + 3 + 1 = 7 ≤ the KD-tree cutoff — this bench exercises
/// the tree-backed neighbour search (the brute-force backend is covered by
/// the high-dimensional worlds in `rem_lattice` and `scaling`).
const N_MACS: u32 = 3;
/// Neighbours per kriging solve (the default `KrigingConfig`).
const MAX_NEIGHBORS: usize = 24;
/// Acceptance bar: end-to-end lattice fill vs the pre-PR per-voxel path.
const MIN_SPEEDUP: f64 = 3.0;

/// Scan locations per axis: a 4×3×3 sweep = 36 waypoints, the paper's
/// §III-A endurance-test count.
const WAYPOINTS: (usize, usize, usize) = (4, 3, 3);

struct Sizes {
    samples_per_waypoint: usize,
    resolution_m: f64,
    reps: usize,
}

const FULL: Sizes = Sizes {
    samples_per_waypoint: 24,
    resolution_m: 0.08,
    reps: 3,
};

const SMOKE: Sizes = Sizes {
    samples_per_waypoint: 24,
    resolution_m: 0.4,
    reps: 1,
};

/// Waypoint-clustered sampling, matching how the paper's campaign actually
/// collects data: the UAV hovers at each scan location and records a burst
/// of samples with centimetre hover drift (§III-A: 36 scan locations,
/// dozens of samples each). Clustered training data is what makes
/// consecutive lattice voxels share their kriging neighbour set — the
/// regime the factor cache is built for (a scattered-sample world churns
/// the neighbour set at nearly every voxel step).
fn synthetic_world(samples_per_waypoint: usize) -> (SampleSet, Aabb) {
    let volume = Aabb::paper_volume();
    let (wx, wy, wz) = WAYPOINTS;
    let mut set = SampleSet::new();
    for mac in 1..=N_MACS {
        let mut waypoint = 0usize;
        for ix in 0..wx {
            for iy in 0..wy {
                for iz in 0..wz {
                    let centre = volume.lerp_point(
                        (ix as f64 + 0.5) / wx as f64,
                        (iy as f64 + 0.5) / wy as f64,
                        (iz as f64 + 0.5) / wz as f64,
                    );
                    for s in 0..samples_per_waypoint {
                        // ±3 cm deterministic low-discrepancy hover drift.
                        let t = (waypoint * samples_per_waypoint + s) as f64
                            + mac as f64 * 0.37;
                        let jitter = |u: f64| (u.fract() - 0.5) * 0.06;
                        let pos = Vec3::new(
                            centre.x + jitter(t * 0.378),
                            centre.y + jitter(t * 0.691),
                            centre.z + jitter(t * 0.137),
                        );
                        let rssi =
                            -55.0 - 3.0 * mac as f64 - 4.0 * pos.x - 2.0 * pos.y + pos.z;
                        set.push(Sample {
                            uav: UavId(0),
                            waypoint_index: waypoint,
                            position: pos,
                            true_position: pos,
                            ssid: Ssid::new(format!("net{mac}")),
                            mac: MacAddress::from_index(mac),
                            channel: WifiChannel::new(1).unwrap(),
                            rssi_dbm: rssi as i32,
                            timestamp: SimTime::ZERO,
                        });
                    }
                    waypoint += 1;
                }
            }
        }
    }
    (set, volume)
}

/// The pre-PR kriging solve, reproduced verbatim from the seed of this PR:
/// brute-force neighbour scan, full `(k+1)²` assembly in **distance**
/// order (every inter-neighbour γ recomputed), `Matrix::solve` factoring
/// from scratch — with every buffer freshly allocated per query, exactly
/// as the pre-PR variance fill did.
fn prepr_predict_with_variance(
    x: &FeatureMatrix,
    y: &[f64],
    gamma: &dyn Fn(f64) -> f64,
    q: &[f64],
) -> (f64, f64) {
    let mut cand = Vec::new();
    let mut nn: Vec<(usize, f64)> = Vec::new();
    brute_force_topk_into(x.as_slice(), x.dim(), q, MAX_NEIGHBORS, &mut cand, &mut nn);
    if let Some(&(i, d)) = nn.first() {
        if d < 1e-12 {
            return (y[i], 0.0);
        }
    }
    let n = nn.len();
    let mut a = Matrix::zeros(n + 1, n + 1);
    let mut b = vec![0.0; n + 1];
    for (ri, &(i, _)) in nn.iter().enumerate() {
        for (rj, &(j, _)) in nn.iter().enumerate() {
            let h = sq_euclidean(x.row(i), x.row(j)).sqrt();
            a[(ri, rj)] = gamma(h);
        }
        a[(ri, n)] = 1.0;
        a[(n, ri)] = 1.0;
        b[ri] = gamma(nn[ri].1);
    }
    b[n] = 1.0;
    for ri in 0..n {
        a[(ri, ri)] += 1e-10;
    }
    let sol = a.solve(&b).expect("pre-PR kriging system");
    let pred: f64 = nn
        .iter()
        .enumerate()
        .map(|(ri, &(i, _))| sol[ri] * y[i])
        .sum();
    let variance: f64 = (0..n).map(|ri| sol[ri] * b[ri]).sum::<f64>() + sol[n];
    (pred, variance.max(0.0))
}

fn report_row(rows: &mut Vec<String>, variant: &str, seconds: f64, items: usize) {
    eprintln!(
        "kriging_fill {variant:<18} {seconds:>9.4} s  {:>12.1} voxels/s",
        items as f64 / seconds
    );
    rows.push(bench3::row("kriging_fill", variant, seconds, items));
}

/// One JSON line of cache counters for an arm, indented for the section
/// body.
fn cache_entry(arm: &str, stats: KrigingCacheStats) -> String {
    format!(
        "        \"{}\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}}",
        bench3::json_escape_free(arm),
        stats.hits,
        stats.misses,
        stats.hit_rate()
    )
}

fn main() {
    let smoke = bench3::smoke();
    let sizes = if smoke { &SMOKE } else { &FULL };
    let hw_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "host parallelism: {hw_threads} thread(s){}",
        if smoke { " (smoke)" } else { "" }
    );

    let (set, volume) = synthetic_world(sizes.samples_per_waypoint);
    let (data, layout, report) = preprocess(&set, &PreprocessConfig::paper()).expect("preprocess");
    eprintln!(
        "world: {} samples over {} MACs, feature dim {}",
        report.retained_samples,
        report.retained_macs,
        layout.dim()
    );
    assert!(
        layout.dim() <= 8,
        "bench world must stay within the KD-tree cutoff (dim {} > 8)",
        layout.dim()
    );

    let mut ok = OrdinaryKriging::new(KrigingConfig::default());
    ok.fit(&data.x, &data.y).expect("fit kriging");
    let vgram = ok.variogram().expect("fitted variogram");
    let xm = FeatureMatrix::from_rows(&data.x).expect("training matrix");
    let mac = MacAddress::from_index(1);

    // The reference fill also supplies the voxel-centre query list (its
    // cells iterate in the same [z][y][x] order the grids store).
    let (ref_grid, ref_sigma) =
        RemGrid::generate_with_confidence(&ok, &layout, volume, sizes.resolution_m, mac)
            .expect("confidence fill");
    let queries: Vec<Vec<f64>> = ref_grid
        .cells()
        .map(|(p, _)| layout.encode_query(p, mac).expect("encode voxel"))
        .collect();
    let qm = FeatureMatrix::from_rows(&queries).expect("query matrix");
    let voxels = queries.len();
    eprintln!(
        "lattice: {voxels} voxels at {} m, k = {MAX_NEIGHBORS}",
        sizes.resolution_m
    );

    let mut rows: Vec<String> = Vec::new();

    // --- bit reference: shipped per-item path, one hoisted scratch ------
    let run_per_item = || -> (Vec<f64>, Vec<f64>) {
        let mut scratch = KrigingScratch::new();
        let mut preds = Vec::with_capacity(voxels);
        let mut vars = Vec::with_capacity(voxels);
        for q in &queries {
            let (p, v) = ok.predict_with_variance_with(q, &mut scratch).expect("predict");
            preds.push(p);
            vars.push(v);
        }
        (preds, vars)
    };
    let (ref_preds, ref_vars) = run_per_item();

    // --- baseline: the pre-PR per-voxel path (tolerance-checked) --------
    // Canonical index-ordering changed the assembly order, so the old and
    // new solutions agree to LU reordering error, not bit-for-bit.
    let gamma = |h: f64| vgram.gamma(h);
    for (i, q) in queries.iter().enumerate() {
        let (p, v) = prepr_predict_with_variance(&xm, &data.y, &gamma, q);
        assert!(
            (p - ref_preds[i]).abs() <= 1e-6 * ref_preds[i].abs().max(1.0)
                && (v - ref_vars[i]).abs() <= 1e-6 * ref_vars[i].abs().max(1.0),
            "voxel {i}: pre-PR baseline drifted from the shipped solver \
             ({p} vs {} / {v} vs {})",
            ref_preds[i],
            ref_vars[i]
        );
    }
    // Timed end-to-end like the pre-PR fill ran: a fresh encode allocation
    // per voxel, then the fresh-buffer solve.
    let (prepr_s, _) = bench3::best_of(sizes.reps, || {
        let mut acc = 0.0;
        for (p, _) in ref_grid.cells() {
            let q = layout.encode_query(p, mac).expect("encode voxel");
            let (pred, var) = prepr_predict_with_variance(&xm, &data.y, &gamma, &q);
            acc += pred + var;
        }
        acc
    });
    report_row(&mut rows, "per_voxel_prepr", prepr_s, voxels);

    let (per_item_s, out) = bench3::best_of(sizes.reps, run_per_item);
    assert_eq!(
        (&out.0, &out.1),
        (&ref_preds, &ref_vars),
        "per_item_serial: repeated runs must be bit-identical"
    );
    report_row(&mut rows, "per_item_serial", per_item_s, voxels);

    // --- batched arms: bit-identical to per-item under both policies ----
    let mut cache_lines: Vec<String> = Vec::new();
    let mut batched_secs = [0.0f64; 2];
    for (i, policy) in [ExecPolicy::Serial, ExecPolicy::Parallel].into_iter().enumerate() {
        let arm = format!("batched_{}", policy.label());
        let run = || {
            ok.predict_with_variance_batch_with(&qm, policy)
                .expect("batched predict")
        };
        let (preds, vars, stats) = run();
        assert_eq!(
            (&preds, &vars),
            (&ref_preds, &ref_vars),
            "{arm}: batched output must be bit-identical to per_item_serial"
        );
        assert_eq!(
            stats.total(),
            voxels as u64,
            "{arm}: every voxel must be counted as a hit or a miss"
        );
        let (s, _) = bench3::best_of(sizes.reps, run);
        eprintln!(
            "{arm}: cache {}/{} hit ({:.1}%)",
            stats.hits,
            stats.total(),
            stats.hit_rate() * 100.0
        );
        cache_lines.push(cache_entry(&arm, stats));
        report_row(&mut rows, &arm, s, voxels);
        batched_secs[i] = s;
    }

    // --- end-to-end REM fill: encode + solve + sigma, both policies -----
    let mut rem_secs = [0.0f64; 2];
    for (i, policy) in [ExecPolicy::Serial, ExecPolicy::Parallel].into_iter().enumerate() {
        let arm = format!("rem_fill_{}", policy.label());
        let run = || {
            let mut inst = Instrumentation::new();
            RemGrid::generate_with_variance(
                &ok,
                &layout,
                volume,
                sizes.resolution_m,
                mac,
                policy,
                &mut inst,
            )
            .expect("variance fill")
        };
        let (grid, sigma, stats) = run();
        assert_eq!(
            (&grid, &sigma),
            (&ref_grid, &ref_sigma),
            "{arm}: grids must be bit-identical to generate_with_confidence"
        );
        let (s, _) = bench3::best_of(sizes.reps, run);
        eprintln!(
            "{arm}: cache {}/{} hit ({:.1}%)",
            stats.hits,
            stats.total(),
            stats.hit_rate() * 100.0
        );
        cache_lines.push(cache_entry(&arm, stats));
        report_row(&mut rows, &arm, s, voxels);
        rem_secs[i] = s;
    }

    // The gate divides the end-to-end pre-PR fill (its per-voxel encode
    // was as fresh-allocated as its solve; the encode share is negligible
    // next to the (k+1)³ factorization) by the best shipped fill.
    let best_fill = rem_secs[0]
        .min(rem_secs[1])
        .min(batched_secs[0])
        .min(batched_secs[1]);
    let speedup = prepr_s / best_fill;
    eprintln!("kriging fill: {speedup:.2}x vs the pre-PR per-voxel path");

    if smoke {
        eprintln!("smoke run: skipping speedup gate and BENCH_5.json write");
        return;
    }
    assert!(
        speedup >= MIN_SPEEDUP,
        "kriging-fill speedup {speedup:.2}x fell below the {MIN_SPEEDUP}x acceptance bar"
    );

    let body = format!(
        "{{\n      \"host_threads\": {hw_threads},\n      \
         \"train_samples\": {},\n      \"feature_dim\": {},\n      \
         \"voxels\": {voxels},\n      \"max_neighbors\": {MAX_NEIGHBORS},\n      \
         \"kd_tree\": true,\n      \"bit_identical\": true,\n      \
         \"speedup_vs_per_voxel_prepr\": {speedup:.2},\n      \
         \"cache\": {{\n{}\n      }},\n      \"rows\": [\n{}\n      ]\n    }}",
        report.retained_samples,
        layout.dim(),
        cache_lines.join(",\n"),
        rows.iter()
            .map(|r| format!("        {r}"))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    let path = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_5.json"));
    bench3::write_section_titled(path, "aerorem kriging hot path (PR 8)", "kriging_fill", &body);
}
