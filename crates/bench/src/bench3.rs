//! Section-merging writer for `BENCH_3.json`.
//!
//! PR 3 ships two custom-harness benches — `train_select` and
//! `sim_campaign` — that report into a single JSON artifact at the
//! repository root. Each bench owns one entry under `"sections"`; the
//! writer re-reads the file and splices the fresh section in, so the
//! benches can run in any order without clobbering each other's numbers.
//!
//! The artifact is only ever produced by this writer, so the parser can
//! rely on its exact shape: a top-level object with a `"bench"` string and
//! a `"sections"` object whose values are balanced JSON objects containing
//! no string escapes. Timing rows are rendered one per line (see [`row`])
//! so line-oriented tooling — `scripts/bench_diff` — can extract them with
//! `awk` instead of a JSON parser.

use std::fs;
use std::path::Path;
use std::time::Instant;

/// True when `AEROREM_BENCH_SMOKE` is set: benches shrink their workloads,
/// run a single repetition, keep every bit-identity assertion, and skip the
/// JSON write so a smoke run never overwrites committed full-size numbers.
pub fn smoke() -> bool {
    std::env::var_os("AEROREM_BENCH_SMOKE").is_some()
}

/// Asserts `s` needs no JSON escaping (it is a plain ASCII identifier) and
/// passes it through.
pub fn json_escape_free(s: &str) -> &str {
    assert!(
        s.chars().all(|c| c.is_ascii_graphic() && c != '"' && c != '\\'),
        "bench identifiers must be escape-free: {s:?}"
    );
    s
}

/// Best-of-`reps` wall time of `f` after one untimed warm-up call.
/// Returns the best time and the last repetition's output for identity
/// checks.
pub fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut out = f(); // warm-up: page in data, prime thread pools
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        // lint:allow(wall-clock) — benchmark harness: timing the workload is the whole point
        let start = Instant::now();
        out = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, out)
}

/// Renders one single-line timing row:
/// `{"stage": ..., "variant": ..., "seconds": ..., "items": ...,
/// "items_per_s": ...}`. One row per line is a format contract with
/// `scripts/bench_diff`.
pub fn row(stage: &str, variant: &str, seconds: f64, items: usize) -> String {
    format!(
        "{{\"stage\": \"{}\", \"variant\": \"{}\", \"seconds\": {:.6}, \
         \"items\": {}, \"items_per_s\": {:.1}}}",
        json_escape_free(stage),
        json_escape_free(variant),
        seconds,
        items,
        items as f64 / seconds
    )
}

/// Splits the `"sections"` object of a previously written report into
/// `(name, raw JSON object)` pairs, in file order. Returns an empty list
/// for missing files or content this writer did not produce.
fn split_sections(text: &str) -> Vec<(String, String)> {
    let Some(key) = text.find("\"sections\"") else {
        return Vec::new();
    };
    let bytes = text.as_bytes();
    let mut i = match text[key..].find('{') {
        Some(off) => key + off + 1,
        None => return Vec::new(),
    };
    let mut out = Vec::new();
    loop {
        while i < bytes.len() && (bytes[i].is_ascii_whitespace() || bytes[i] == b',') {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'"' {
            // End of the sections object (or a shape we did not write).
            return out;
        }
        i += 1;
        let name_start = i;
        while i < bytes.len() && bytes[i] != b'"' {
            i += 1;
        }
        if i >= bytes.len() {
            return out;
        }
        let name = text[name_start..i].to_string();
        i += 1;
        while i < bytes.len() && (bytes[i].is_ascii_whitespace() || bytes[i] == b':') {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'{' {
            return out;
        }
        let body_start = i;
        let mut depth = 0usize;
        let mut in_string = false;
        while i < bytes.len() {
            match bytes[i] {
                b'"' => in_string = !in_string,
                b'{' if !in_string => depth += 1,
                b'}' if !in_string => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        if i >= bytes.len() {
            return out;
        }
        out.push((name, text[body_start..=i].to_string()));
        i += 1;
    }
}

/// Merges `body` — a balanced, escape-free JSON object literal — into the
/// report at `path` under `sections.<name>`, preserving every other
/// section already present, and rewrites the artifact with the PR-3 title.
///
/// # Panics
///
/// Panics when `body` is not an object literal, contains escapes, or the
/// file cannot be written.
pub fn write_section(path: &Path, name: &str, body: &str) {
    write_section_titled(
        path,
        "aerorem training & simulation hot paths (PR 3)",
        name,
        body,
    );
}

/// [`write_section`] with an explicit top-level `"bench"` title, so other
/// artifacts (`BENCH_4.json`'s scaling report) can share the writer and its
/// one-row-per-line format contract without inheriting the PR-3 header.
///
/// # Panics
///
/// Panics when `body` is not an object literal, contains escapes, or the
/// file cannot be written.
pub fn write_section_titled(path: &Path, title: &str, name: &str, body: &str) {
    let trimmed = body.trim();
    assert!(
        trimmed.starts_with('{') && trimmed.ends_with('}'),
        "section body must be a JSON object literal"
    );
    assert!(!body.contains('\\'), "section body must be escape-free");
    json_escape_free(name);
    assert!(
        title.chars().all(|c| c != '"' && c != '\\'),
        "bench title must be escape-free: {title:?}"
    );
    let mut sections = fs::read_to_string(path)
        .map(|t| split_sections(&t))
        .unwrap_or_default();
    match sections.iter_mut().find(|(n, _)| n == name) {
        Some(slot) => slot.1 = trimmed.to_string(),
        None => sections.push((name.to_string(), trimmed.to_string())),
    }
    let mut out = format!("{{\n  \"bench\": \"{title}\",\n  \"sections\": {{\n");
    for (i, (n, b)) in sections.iter().enumerate() {
        out.push_str(&format!("    \"{n}\": {b}"));
        out.push_str(if i + 1 < sections.len() { ",\n" } else { "\n" });
    }
    out.push_str("  }\n}\n");
    fs::write(path, out).expect("write bench report");
    eprintln!("wrote section \"{name}\" to {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("aerorem_bench3_{name}.json"))
    }

    #[test]
    fn writes_a_fresh_report() {
        let path = tmp("fresh");
        let _ = fs::remove_file(&path);
        write_section(&path, "alpha", "{\"rows\": [\n{\"stage\": \"s\"}\n]}");
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"alpha\""));
        assert!(text.starts_with("{\n  \"bench\""));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn merging_preserves_the_other_section() {
        let path = tmp("merge");
        let _ = fs::remove_file(&path);
        write_section(&path, "alpha", "{\"v\": 1}");
        write_section(&path, "beta", "{\"v\": 2}");
        write_section(&path, "alpha", "{\"v\": 3}");
        let text = fs::read_to_string(&path).unwrap();
        let sections = split_sections(&text);
        assert_eq!(
            sections,
            vec![
                ("alpha".to_string(), "{\"v\": 3}".to_string()),
                ("beta".to_string(), "{\"v\": 2}".to_string()),
            ]
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn nested_objects_and_strings_survive_the_scan() {
        let body = "{\"meta\": {\"label\": \"k=3 {w}\", \"n\": 7},\n\"rows\": [\n{\"a\": 1}\n]}";
        let path = tmp("nested");
        let _ = fs::remove_file(&path);
        write_section(&path, "deep", body);
        let text = fs::read_to_string(&path).unwrap();
        let sections = split_sections(&text);
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].1, body);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn foreign_or_missing_content_yields_no_sections() {
        assert!(split_sections("").is_empty());
        assert!(split_sections("{\"other\": 1}").is_empty());
        assert!(split_sections("\"sections\" nonsense").is_empty());
    }

    #[test]
    fn titled_variant_controls_the_header() {
        let path = tmp("titled");
        let _ = fs::remove_file(&path);
        write_section_titled(&path, "scaling report", "sweep", "{\"v\": 1}");
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\n  \"bench\": \"scaling report\",\n"));
        assert!(text.contains("\"sweep\""));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rows_are_single_line() {
        let r = row("grid_search", "parallel", 0.5, 32);
        assert!(!r.contains('\n'));
        assert!(r.contains("\"items_per_s\": 64.0"));
    }
}
