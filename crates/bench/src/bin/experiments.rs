//! Regenerates the paper's figures and statistics.
//!
//! ```text
//! experiments [--seed N] <fig5|fig6|fig7|fig8|endurance|stats|prep|loc|queue|all>
//! experiments [--seed N] <fig8ext|density|fleet|lighthouse|shadow|sequential|adaptive|imurate|montecarlo|timing|ext>
//! ```

#![forbid(unsafe_code)]

use aerorem_bench::{
    adaptive, density, imurate, montecarlo, endurance, faults, fig5, fig6, fig7, fig8, fleet, lighthouse_cmp, loc, paper_campaign,
    pipeline_timing, prep, queue, sequential, shadow, stats,
};
use aerorem_bench::DEFAULT_SEED;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = DEFAULT_SEED;
    let mut commands = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            cmd => commands.push(cmd.to_string()),
        }
        i += 1;
    }
    if commands.is_empty() {
        usage("no experiment named");
    }
    if commands.iter().any(|c| c == "all") {
        commands = [
            "fig5", "fig6", "fig7", "fig8", "endurance", "stats", "prep", "loc", "queue",
            "faults",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    if commands.iter().any(|c| c == "ext") {
        commands = [
            "fig8ext",
            "density",
            "fleet",
            "lighthouse",
            "shadow",
            "sequential",
            "adaptive",
            "imurate",
        ]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    // Experiments sharing the campaign reuse a single run.
    let needs_campaign = commands
        .iter()
        .any(|c| matches!(c.as_str(), "fig6" | "fig7" | "fig8" | "fig8ext" | "stats" | "prep"));
    let campaign = if needs_campaign {
        eprintln!("running the 2-UAV / 72-waypoint campaign (seed {seed})...");
        Some(paper_campaign(seed))
    } else {
        None
    };

    for cmd in &commands {
        let output = match cmd.as_str() {
            "fig5" => fig5::render(&fig5::run(seed)),
            "fig6" => fig6::render(&fig6::run(campaign.as_ref().expect("campaign"))),
            "fig7" => fig7::render(&fig7::run(campaign.as_ref().expect("campaign"))),
            "fig8" => match fig8::run(campaign.as_ref().expect("campaign"), false, seed) {
                Ok(f) => fig8::render(&f),
                Err(e) => format!("fig8 failed: {e}\n"),
            },
            "fig8ext" => match fig8::run(campaign.as_ref().expect("campaign"), true, seed) {
                Ok(f) => fig8::render(&f),
                Err(e) => format!("fig8ext failed: {e}\n"),
            },
            "endurance" => endurance::render(&endurance::run(seed)),
            "stats" => stats::render(campaign.as_ref().expect("campaign")),
            "prep" => match prep::run(campaign.as_ref().expect("campaign")) {
                Ok(r) => prep::render(&r),
                Err(e) => format!("prep failed: {e}\n"),
            },
            "loc" => loc::render(&loc::run(seed)),
            "density" => match density::run(&[18, 36, 72, 144], seed) {
                Ok(rows) => density::render(&rows),
                Err(e) => format!("density failed: {e}\n"),
            },
            "fleet" => fleet::render(&fleet::run(&[1, 2, 4], seed)),
            "lighthouse" => lighthouse_cmp::render(&lighthouse_cmp::run(seed)),
            "shadow" => shadow::render(&shadow::run(&[0.5, 1.0, 2.0, 4.0], seed)),
            "sequential" => sequential::render(&sequential::run(seed)),
            "imurate" => imurate::render(&imurate::run(seed)),
            "montecarlo" => {
                montecarlo::render(&montecarlo::run(&[seed, seed + 1, seed + 2, seed + 3, seed + 4]))
            }
            "adaptive" => match adaptive::run(seed) {
                Ok(rows) => adaptive::render(&rows),
                Err(e) => format!("adaptive failed: {e}\n"),
            },
            "timing" => match pipeline_timing::run(seed) {
                Ok(rows) => pipeline_timing::render(&rows),
                Err(e) => format!("timing failed: {e}\n"),
            },
            "queue" => queue::render(&queue::run(seed)),
            "faults" => faults::render(&faults::run(seed)),
            other => usage(&format!("unknown experiment {other:?}")),
        };
        println!("=== {cmd} ===\n{output}");
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: experiments [--seed N] <fig5|fig6|fig7|fig8|fig8ext|endurance|stats|prep|loc|queue|density|fleet|lighthouse|shadow|sequential|adaptive|imurate|montecarlo|timing|all|ext>"
    );
    std::process::exit(2);
}
