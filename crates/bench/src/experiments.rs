//! The experiment implementations.

use aerorem_mission::campaign::{Campaign, CampaignConfig, CampaignReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default seed used by the `experiments` binary (`--seed` overrides).
pub const DEFAULT_SEED: u64 = 2206;

/// Runs the paper's full two-UAV campaign once — shared input of the
/// Figure 6/7/8 and stats/prep experiments.
pub fn paper_campaign(seed: u64) -> CampaignReport {
    let mut rng = StdRng::seed_from_u64(seed);
    Campaign::new(CampaignConfig::paper_demo()).run(&mut rng)
}

/// Figure 5: self-interference of the Crazyradio.
pub mod fig5 {
    use aerorem_propagation::building::SyntheticBuilding;
    use aerorem_propagation::channel::FIGURE5_NRF_FREQS_MHZ;
    use aerorem_propagation::scan::{detections_per_channel, perform_scan, ScanConfig};
    use aerorem_radio::Crazyradio;
    use aerorem_spatial::{Aabb, Vec3};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Scans per configuration (the paper did 3).
    pub const SCANS_PER_CONFIG: usize = 3;

    /// One series of the figure: a radio configuration and the mean AP
    /// count per Wi-Fi channel.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Series {
        /// `Some(freq)` for an active Crazyradio, `None` for radio off.
        pub radio_mhz: Option<f64>,
        /// Mean detected-AP count per channel 1..=13, in channel order.
        pub mean_per_channel: Vec<f64>,
    }

    impl Series {
        /// Total mean detections across all channels.
        pub fn total(&self) -> f64 {
            self.mean_per_channel.iter().sum()
        }
    }

    /// The full figure: one series per radio frequency plus radio-off.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Fig5 {
        /// All series, radio-off last (as the paper's baseline).
        pub series: Vec<Series>,
    }

    /// Runs the experiment: a fixed scanner position in the paper volume,
    /// 3 scans per Crazyradio frequency (2400…2525 MHz in 25 MHz steps) and
    /// 3 with the radio off.
    pub fn run(seed: u64) -> Fig5 {
        let volume = Aabb::paper_volume();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF165);
        let env = SyntheticBuilding::paper_like().generate(volume, &mut rng);
        let scanner_pos = Vec3::new(volume.center().x, volume.center().y, 1.0);
        let radio_pos = Vec3::new(-1.5, 1.6, 0.8);
        let cfg = ScanConfig::paper_default();
        let mut series = Vec::new();
        let configs: Vec<Option<f64>> = FIGURE5_NRF_FREQS_MHZ
            .iter()
            .map(|&f| Some(f))
            .chain([None])
            .collect();
        for radio_mhz in configs {
            let interferers: Vec<_> = match radio_mhz {
                Some(f) => {
                    let radio = Crazyradio::new(f, radio_pos).expect("figure-5 frequency");
                    radio.interference().into_iter().collect()
                }
                None => Vec::new(),
            };
            let mut sums = vec![0.0; 13];
            for _ in 0..SCANS_PER_CONFIG {
                let obs = perform_scan(&env, scanner_pos, &interferers, &cfg, &mut rng);
                for (i, (_, n)) in detections_per_channel(&obs, &cfg).iter().enumerate() {
                    sums[i] += *n as f64;
                }
            }
            series.push(Series {
                radio_mhz,
                mean_per_channel: sums
                    .into_iter()
                    .map(|s| s / SCANS_PER_CONFIG as f64)
                    .collect(),
            });
        }
        Fig5 { series }
    }

    /// Renders the figure as a text table (channels with no detections in
    /// any series are omitted, like the paper's plot).
    pub fn render(fig: &Fig5) -> String {
        let mut used: Vec<usize> = (0..13)
            .filter(|&c| fig.series.iter().any(|s| s.mean_per_channel[c] > 0.0))
            .collect();
        used.sort_unstable();
        let mut out = String::from("Fig5: mean APs detected per 802.11 channel\n");
        out.push_str("radio      ");
        for c in &used {
            out.push_str(&format!("ch{:<4}", c + 1));
        }
        out.push('\n');
        for s in &fig.series {
            let label = match s.radio_mhz {
                Some(f) => format!("{f:.0} MHz"),
                None => "OFF".to_string(),
            };
            out.push_str(&format!("{label:<10} "));
            for c in &used {
                out.push_str(&format!("{:<6.1}", s.mean_per_channel[*c]));
            }
            out.push_str(&format!(" | total {:.1}\n", s.total()));
        }
        out
    }
}

/// Figure 6: samples per UAV and scanned location.
pub mod fig6 {
    use aerorem_mission::campaign::CampaignReport;
    use aerorem_uav::UavId;

    /// Per-waypoint sample counts for one UAV.
    #[derive(Debug, Clone, PartialEq)]
    pub struct UavSeries {
        /// The UAV.
        pub uav: UavId,
        /// `(waypoint index, samples collected there)` in visit order.
        pub per_location: Vec<(usize, usize)>,
    }

    /// The figure: one series per UAV.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Fig6 {
        /// Per-UAV series, UAV A first.
        pub series: Vec<UavSeries>,
    }

    /// Extracts the figure from a campaign report.
    pub fn run(report: &CampaignReport) -> Fig6 {
        let counts = report.samples.counts_per_location();
        let mut series = Vec::new();
        for leg in &report.legs {
            let per_location: Vec<(usize, usize)> = (0..leg.waypoints_planned)
                .map(|w| (w, counts.get(&(leg.uav, w)).copied().unwrap_or(0)))
                .collect();
            series.push(UavSeries {
                uav: leg.uav,
                per_location,
            });
        }
        Fig6 { series }
    }

    /// Renders the per-location counts plus the per-UAV totals the paper
    /// quotes (1495 vs 1201).
    pub fn render(fig: &Fig6) -> String {
        let mut out = String::from("Fig6: samples per UAV and scanned location\n");
        for s in &fig.series {
            let total: usize = s.per_location.iter().map(|(_, n)| n).sum();
            out.push_str(&format!("{} (total {total}):\n  ", s.uav));
            for (w, n) in &s.per_location {
                out.push_str(&format!("{w}:{n} "));
            }
            out.push('\n');
        }
        out
    }
}

/// Figure 7: per-axis histograms of sample counts (0.5 m bins).
pub mod fig7 {
    use aerorem_mission::campaign::CampaignReport;
    use aerorem_numerics::stats::Histogram;

    /// The figure: x-axis and y-axis histograms.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Fig7 {
        /// Histogram over sample x-coordinates.
        pub x_hist: Histogram,
        /// Histogram over sample y-coordinates.
        pub y_hist: Histogram,
    }

    /// Extracts the figure from a campaign report.
    ///
    /// # Panics
    ///
    /// Panics if the campaign produced no samples.
    pub fn run(report: &CampaignReport) -> Fig7 {
        Fig7 {
            x_hist: report
                .samples
                .axis_histogram(0, 0.5)
                .expect("campaign produced samples"),
            y_hist: report
                .samples
                .axis_histogram(1, 0.5)
                .expect("campaign produced samples"),
        }
    }

    /// Renders both histograms.
    pub fn render(fig: &Fig7) -> String {
        let mut out = String::from("Fig7: samples per 0.5 m bin\n");
        for (axis, h) in [("x", &fig.x_hist), ("y", &fig.y_hist)] {
            out.push_str(&format!("{axis}-axis:\n"));
            for (lo, hi, n) in h.iter() {
                out.push_str(&format!(
                    "  [{lo:>5.2}, {hi:>5.2}) {n:>5} {}\n",
                    "#".repeat((n / 20) as usize)
                ));
            }
        }
        out
    }
}

/// Figure 8: RMSE per prediction model.
pub mod fig8 {
    use aerorem_core::features::{preprocess, PreprocessConfig};
    use aerorem_core::models::{evaluate_all, ModelKind, ModelScore};
    use aerorem_mission::campaign::CampaignReport;
    use aerorem_ml::MlError;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The figure: one score per model.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Fig8 {
        /// RMSEs, in the paper's model order (plus extensions if requested).
        pub scores: Vec<ModelScore>,
        /// Samples retained by preprocessing.
        pub retained: usize,
    }

    /// Runs preprocessing + the Figure-8 protocol (75/25 split) over a
    /// campaign's samples.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing and estimator errors.
    pub fn run(
        report: &CampaignReport,
        include_extensions: bool,
        seed: u64,
    ) -> Result<Fig8, MlError> {
        let (data, layout, prep) = preprocess(&report.samples, &PreprocessConfig::paper())?;
        let kinds: &[ModelKind] = if include_extensions {
            &ModelKind::ALL
        } else {
            &ModelKind::PAPER_FIGURE8
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF168);
        let scores = evaluate_all(kinds, &data, &layout, &mut rng)?;
        Ok(Fig8 {
            scores,
            retained: prep.retained_samples,
        })
    }

    /// Renders the RMSE table (paper values alongside for comparison).
    pub fn render(fig: &Fig8) -> String {
        let paper_rmse = |k: ModelKind| -> Option<f64> {
            match k {
                ModelKind::MeanPerMac => Some(4.8107),
                ModelKind::KnnScaled16 => Some(4.4186),
                ModelKind::Mlp16 => Some(4.4870),
                _ => None,
            }
        };
        let mut out = format!(
            "Fig8: model RMSE on a 75/25 split ({} samples)\n{:<32} {:>10} {:>10}\n",
            fig.retained, "model", "ours[dBm]", "paper[dBm]"
        );
        for s in &fig.scores {
            let p = paper_rmse(s.kind)
                .map(|v| format!("{v:>10.4}"))
                .unwrap_or_else(|| format!("{:>10}", "-"));
            out.push_str(&format!("{:<32} {:>10.4} {p}\n", s.kind.label(), s.rmse_dbm));
        }
        out
    }
}

/// §III-A endurance test.
pub mod endurance {
    use aerorem_mission::endurance::{run_endurance_test, EnduranceConfig, EnduranceResult};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs the endurance test with the paper's parameters.
    pub fn run(seed: u64) -> EnduranceResult {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE4D);
        run_endurance_test(&EnduranceConfig::paper(), &mut rng)
    }

    /// Renders the result next to the paper's 36 scans / 6 min 12 s.
    pub fn render(r: &EnduranceResult) -> String {
        format!(
            "Endurance: {} scans over {} (paper: 36 scans over 06:12)\nfinal battery fraction: {:.1}%\n",
            r.scans_completed,
            r.endurance,
            r.final_battery_fraction * 100.0
        )
    }
}

/// §III-A collection statistics.
pub mod stats {
    use aerorem_mission::campaign::CampaignReport;

    /// Renders the collection statistics block with the paper's numbers
    /// alongside.
    pub fn render(report: &CampaignReport) -> String {
        let counts = report.samples.counts_per_uav();
        let mut per_uav: Vec<String> = counts
            .iter()
            .map(|(u, n)| format!("{u}: {n}"))
            .collect();
        per_uav.sort();
        format!(
            "Collection stats (paper values in parentheses)\n\
             total samples:  {} (2696)\n\
             per UAV:        {} (1495 / 1201)\n\
             distinct MACs:  {} (73)\n\
             distinct SSIDs: {} (49)\n\
             mean RSS:       {:.1} dBm (≈ -73)\n\
             UAV active:     {}\n\
             localization error of annotations: {:.3} m\n",
            report.samples.len(),
            per_uav.join(", "),
            report.samples.distinct_macs(),
            report.samples.distinct_ssids(),
            report.samples.mean_rssi_dbm().unwrap_or(f64::NAN),
            report
                .legs
                .iter()
                .map(|l| format!("{} {}", l.uav, l.active_time))
                .collect::<Vec<_>>()
                .join(", "),
            report.samples.mean_annotation_error_m().unwrap_or(f64::NAN),
        )
    }
}

/// §III-B preprocessing retention.
pub mod prep {
    use aerorem_core::features::{preprocess, PreprocessConfig, PreprocessReport};
    use aerorem_mission::campaign::CampaignReport;
    use aerorem_ml::MlError;

    /// Runs the paper's preprocessing over a campaign.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing errors.
    pub fn run(report: &CampaignReport) -> Result<PreprocessReport, MlError> {
        preprocess(&report.samples, &PreprocessConfig::paper()).map(|(_, _, r)| r)
    }

    /// Renders retention next to the paper's 2565 kept / 131 dropped.
    pub fn render(r: &PreprocessReport) -> String {
        format!(
            "Preprocessing (MACs with <16 samples dropped)\n\
             retained samples: {} (paper: 2565)\n\
             dropped samples:  {} (paper: 131)\n\
             retained MACs:    {} of {}\n",
            r.retained_samples, r.dropped_samples, r.retained_macs, r.total_macs
        )
    }
}

/// §II-B localization accuracy.
pub mod loc {
    use aerorem_localization::anchors::AnchorConstellation;
    use aerorem_localization::eval::{anchor_count_sweep, AnchorSweepRow};
    use aerorem_spatial::{Aabb, Vec3};

    /// Runs the anchor-count sweep at the endurance hover point.
    pub fn run(seed: u64) -> Vec<AnchorSweepRow> {
        let anchors = AnchorConstellation::volume_corners(Aabb::paper_volume());
        anchor_count_sweep(&anchors, Vec3::new(1.87, 1.60, 1.0), 4, 5, seed ^ 0x10C)
    }

    /// Renders the sweep (paper: ~9 cm with 6 anchors, TDoA slightly
    /// better).
    pub fn render(rows: &[AnchorSweepRow]) -> String {
        let mut out = String::from(
            "Localization: hover RMSE vs anchor count (paper: ~9 cm @ 6 anchors)\n\
             anchors  TWR [m]   TDoA [m]\n",
        );
        for r in rows {
            out.push_str(&format!(
                "{:>7}  {:>8.3}  {:>8.3}\n",
                r.anchors, r.twr_rmse_m, r.tdoa_rmse_m
            ));
        }
        out
    }
}

/// §II-C firmware ablation.
pub mod queue {
    use aerorem_mission::scanflow::{run_ablation, ScanFlowOutcome};
    use aerorem_propagation::building::SyntheticBuilding;
    use aerorem_spatial::Aabb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs the four-variant firmware ablation.
    pub fn run(seed: u64) -> Vec<ScanFlowOutcome> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0E0E);
        let env = SyntheticBuilding::paper_like().generate(Aabb::paper_volume(), &mut rng);
        run_ablation(&env, &mut rng)
    }

    /// Renders the ablation table.
    pub fn render(rows: &[ScanFlowOutcome]) -> String {
        let mut out = String::from(
            "Firmware ablation: one radio-off 3 s scan cycle\n\
             variant                       survived  drift[m]  rows  delivered  dropped pkts\n",
        );
        for r in rows {
            out.push_str(&format!(
                "{:<29} {:>8} {:>9.3} {:>5} {:>10} {:>13}\n",
                r.variant.label(),
                if r.survived { "yes" } else { "NO" },
                r.position_drift_m,
                r.rows_scanned,
                r.rows_delivered,
                r.packets_dropped
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_radio_off_beats_every_active_frequency() {
        let fig = fig5::run(7);
        assert_eq!(fig.series.len(), 7);
        let off = fig.series.last().unwrap();
        assert!(off.radio_mhz.is_none());
        for s in &fig.series[..6] {
            assert!(
                off.total() > s.total(),
                "radio off ({}) must detect more than {:?} ({})",
                off.total(),
                s.radio_mhz,
                s.total()
            );
        }
        let txt = fig5::render(&fig);
        assert!(txt.contains("OFF"));
        assert!(txt.contains("2400 MHz"));
    }

    #[test]
    fn fig5_co_channel_suppression_is_localized() {
        // A 2450 MHz carrier lands inside channels 7-10 and should wipe
        // them out; a 2525 MHz carrier (above the Wi-Fi band) only causes
        // broadband desense there. Sum over seeds to damp scan noise.
        let mut mid_band_2450 = 0.0;
        let mut mid_band_2525 = 0.0;
        for seed in 11..14 {
            let fig = fig5::run(seed);
            let at = |mhz: f64| {
                fig.series
                    .iter()
                    .find(|s| s.radio_mhz == Some(mhz))
                    .unwrap()
                    .clone()
            };
            mid_band_2450 += at(2450.0).mean_per_channel[6..10].iter().sum::<f64>();
            mid_band_2525 += at(2525.0).mean_per_channel[6..10].iter().sum::<f64>();
        }
        assert!(
            mid_band_2450 < mid_band_2525,
            "2450 MHz carrier should suppress ch7-10 harder: {mid_band_2450} vs {mid_band_2525}"
        );
    }

    #[test]
    fn endurance_render_contains_paper_reference() {
        let r = endurance::run(3);
        let txt = endurance::render(&r);
        assert!(txt.contains("06:12"));
        assert!(r.scans_completed > 20);
    }

    #[test]
    fn loc_sweep_renders() {
        let rows = loc::run(5);
        assert_eq!(rows.len(), 5);
        let txt = loc::render(&rows);
        assert!(txt.contains("anchors"));
    }

    #[test]
    fn queue_ablation_headline() {
        let rows = queue::run(9);
        let txt = queue::render(&rows);
        assert!(txt.contains("stock 2021.06"));
        // Stock dies; full patch survives and delivers all rows.
        assert!(!rows[0].survived);
        let full = rows.last().unwrap();
        assert!(full.survived);
        assert_eq!(full.rows_delivered, full.rows_scanned);
    }
}

/// Future-work experiment: waypoint density vs REM quality.
///
/// The paper's conclusion proposes "deriving the fundamental limitations on
/// the density of 3D REMs". This sweep varies the waypoint count (scaling
/// the fleet so each UAV stays within its battery budget), trains the best
/// kNN on each dataset, and scores it against the hidden ground-truth
/// surface at unvisited positions.
pub mod density {
    use aerorem_core::models::ModelKind;
    use aerorem_core::pipeline::{PipelineConfig, RemPipeline};
    use aerorem_mission::campaign::CampaignConfig;
    use aerorem_mission::plan::FleetPlan;
    use aerorem_ml::MlError;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One row of the density sweep.
    #[derive(Debug, Clone, PartialEq)]
    pub struct DensityRow {
        /// Total waypoints flown.
        pub waypoints: usize,
        /// UAVs used (each ≤ 36 waypoints, the battery budget).
        pub fleet: usize,
        /// Samples collected.
        pub samples: usize,
        /// RMSE against the hidden ground-truth surface, dB.
        pub ground_truth_rmse_db: f64,
        /// Total campaign time, seconds.
        pub campaign_secs: f64,
    }

    /// Runs the sweep over the given waypoint counts.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn run(waypoint_counts: &[usize], seed: u64) -> Result<Vec<DensityRow>, MlError> {
        let mut rows = Vec::new();
        for &waypoints in waypoint_counts {
            // One UAV per 36 waypoints: the endurance budget of §III-A.
            let fleet = waypoints.div_ceil(36).max(1);
            let config = PipelineConfig {
                campaign: CampaignConfig {
                    fleet_plan: FleetPlan {
                        fleet_size: fleet,
                        total_waypoints: waypoints,
                        ..FleetPlan::paper_demo()
                    },
                    ..CampaignConfig::paper_demo()
                },
                // Scale the paper's 16-sample retention bar down for
                // sparse missions, where no MAC can reach 16 detections.
                preprocess: aerorem_core::features::PreprocessConfig {
                    min_samples_per_mac: (waypoints / 4).clamp(4, 16),
                },
                eval_models: vec![ModelKind::KnnScaled16],
                ..PipelineConfig::paper_demo()
            };
            // Same world per sweep point: seed the world identically, vary
            // only the mission.
            let mut rng = StdRng::seed_from_u64(seed ^ 0xDE45);
            let result = RemPipeline::new(config).run(&mut rng)?;
            let mut eval_rng = StdRng::seed_from_u64(seed ^ 0xEA15);
            let rmse = result.ground_truth_rmse(150, &mut eval_rng)?;
            rows.push(DensityRow {
                waypoints,
                fleet,
                samples: result.campaign.samples.len(),
                ground_truth_rmse_db: rmse,
                campaign_secs: result.campaign.total_time.as_secs_f64(),
            });
        }
        Ok(rows)
    }

    /// Renders the sweep.
    pub fn render(rows: &[DensityRow]) -> String {
        let mut out = String::from(
            "REM density sweep (future work: density limits)\n\
             waypoints  fleet  samples  GT-RMSE[dB]  campaign[s]\n",
        );
        for r in rows {
            out.push_str(&format!(
                "{:>9} {:>6} {:>8} {:>12.2} {:>12.0}\n",
                r.waypoints, r.fleet, r.samples, r.ground_truth_rmse_db, r.campaign_secs
            ));
        }
        out
    }
}

/// Fleet-scaling experiment: "the system can be scaled by simply adding
/// sets of waypoints" (§III-A).
///
/// Runs the 72-waypoint demo with fleets of different sizes. A single UAV
/// cannot finish 72 waypoints on one battery — the leg aborts when the pack
/// goes erratic — which is precisely why the paper flies two.
pub mod fleet {
    use aerorem_mission::campaign::{Campaign, CampaignConfig};
    use aerorem_mission::plan::FleetPlan;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One row of the fleet sweep.
    #[derive(Debug, Clone, PartialEq)]
    pub struct FleetRow {
        /// UAVs flown sequentially.
        pub fleet: usize,
        /// Waypoints visited across the fleet (of 72 planned).
        pub waypoints_visited: usize,
        /// Legs that ended on a battery abort.
        pub battery_aborts: usize,
        /// Samples collected.
        pub samples: usize,
        /// Total campaign time, seconds (including battery-swap gaps).
        pub campaign_secs: f64,
    }

    /// Runs the sweep over fleet sizes.
    pub fn run(fleet_sizes: &[usize], seed: u64) -> Vec<FleetRow> {
        fleet_sizes
            .iter()
            .map(|&fleet| {
                let config = CampaignConfig {
                    fleet_plan: FleetPlan {
                        fleet_size: fleet,
                        ..FleetPlan::paper_demo()
                    },
                    ..CampaignConfig::paper_demo()
                };
                let mut rng = StdRng::seed_from_u64(seed ^ 0xF1EE7);
                let report = Campaign::new(config).run(&mut rng);
                FleetRow {
                    fleet,
                    waypoints_visited: report.legs.iter().map(|l| l.waypoints_visited).sum(),
                    battery_aborts: report
                        .legs
                        .iter()
                        .filter(|l| l.aborted_on_battery)
                        .count(),
                    samples: report.samples.len(),
                    campaign_secs: report.total_time.as_secs_f64(),
                }
            })
            .collect()
    }

    /// Renders the sweep.
    pub fn render(rows: &[FleetRow]) -> String {
        let mut out = String::from(
            "Fleet scaling over the 72-waypoint demo\n\
             fleet  visited/72  battery aborts  samples  campaign[s]\n",
        );
        for r in rows {
            out.push_str(&format!(
                "{:>5} {:>11} {:>15} {:>8} {:>12.0}\n",
                r.fleet, r.waypoints_visited, r.battery_aborts, r.samples, r.campaign_secs
            ));
        }
        out
    }
}

/// Future-work experiment: Lighthouse vs UWB localization (§IV).
///
/// The conclusion proposes replacing UWB with Bitcraze's Lighthouse system,
/// "which features comparable precision, while requiring less anchors and
/// being cheaper" — and which vacates the 2.4 GHz band entirely. This
/// experiment pits 2 Lighthouse base stations against 4–8 UWB anchors on
/// the same hover task.
pub mod lighthouse_cmp {
    use aerorem_localization::anchors::AnchorConstellation;
    use aerorem_localization::eval::hover_rmse;
    use aerorem_localization::lighthouse::LighthouseSystem;
    use aerorem_localization::{Ekf, RangingConfig, RangingMode};
    use aerorem_spatial::{Aabb, Vec3};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One compared system.
    #[derive(Debug, Clone, PartialEq)]
    pub struct SystemRow {
        /// Description, e.g. `"UWB TWR, 6 anchors"`.
        pub system: String,
        /// Infrastructure devices needed.
        pub infrastructure: usize,
        /// Hover RMSE in meters.
        pub rmse_m: f64,
        /// Whether it occupies the 2.4 GHz ISM band (self-interference with
        /// the Wi-Fi REM receiver).
        pub occupies_2g4: bool,
    }

    /// Runs the comparison at the endurance hover point.
    pub fn run(seed: u64) -> Vec<SystemRow> {
        let volume = Aabb::paper_volume();
        let truth = Vec3::new(1.87, 1.60, 1.0);
        let anchors = AnchorConstellation::volume_corners(volume);
        let mut rows = Vec::new();
        for n in [4usize, 6, 8] {
            for mode in [RangingMode::Twr, RangingMode::Tdoa] {
                let cfg = RangingConfig::lps_default(mode);
                let rmse = hover_rmse(&anchors.take(n), &cfg, truth, 400, seed ^ n as u64);
                rows.push(SystemRow {
                    system: format!("UWB {mode:?}, {n} anchors"),
                    infrastructure: n,
                    rmse_m: rmse,
                    // UWB itself is not 2.4 GHz, but the paper notes the
                    // *control* radio shares the band; the UWB system is
                    // out-of-band for the Wi-Fi receiver.
                    occupies_2g4: false,
                });
            }
        }
        // Lighthouse: 2 base stations, infrared — nothing in any RF band.
        let sys = LighthouseSystem::two_station(volume);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11F);
        let mut ekf = Ekf::new(truth + Vec3::splat(0.25), 0.5);
        let mut errs = Vec::new();
        for step in 0..400 {
            ekf.predict(0.01);
            let meas = sys.measure(truth, &mut rng);
            sys.update_ekf(&mut ekf, &meas).expect("stations valid");
            if step >= 100 {
                errs.push(ekf.position().distance(truth));
            }
        }
        let rmse = (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt();
        rows.push(SystemRow {
            system: "Lighthouse, 2 base stations".to_string(),
            infrastructure: 2,
            rmse_m: rmse,
            occupies_2g4: false,
        });
        rows
    }

    /// Renders the comparison.
    pub fn render(rows: &[SystemRow]) -> String {
        let mut out = String::from(
            "Localization system comparison (future work: Lighthouse)\n\
             system                        devices  hover RMSE [m]\n",
        );
        for r in rows {
            out.push_str(&format!(
                "{:<29} {:>7} {:>15.3}\n",
                r.system, r.infrastructure, r.rmse_m
            ));
        }
        out
    }
}

/// Ablation: shadowing decorrelation distance vs REM predictability.
///
/// The whole premise of REM interpolation is that shadow fading is
/// spatially correlated — nearby samples share the same obstructions. This
/// sweep regenerates the world with different Gudmundson decorrelation
/// distances and measures how well a kNN trained on the 72-waypoint lattice
/// predicts held-out positions. Short correlation → noise-like shadowing →
/// interpolation cannot work; long correlation → smooth fields → easy.
pub mod shadow {
    use aerorem_ml::knn::KnnRegressor;
    use aerorem_ml::Regressor;
    use aerorem_numerics::stats;
    use aerorem_propagation::building::SyntheticBuilding;
    use aerorem_spatial::grid::WaypointGrid;
    use aerorem_spatial::Aabb;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// One row of the sweep.
    #[derive(Debug, Clone, PartialEq)]
    pub struct ShadowRow {
        /// Decorrelation distance in meters.
        pub correlation_m: f64,
        /// kNN RMSE against the mean-RSS surface at held-out points, dB.
        pub rmse_db: f64,
    }

    /// Runs the sweep over decorrelation distances.
    pub fn run(correlations_m: &[f64], seed: u64) -> Vec<ShadowRow> {
        let volume = Aabb::paper_volume();
        let train_grid = WaypointGrid::even(volume, 72).expect("72 waypoints");
        correlations_m
            .iter()
            .map(|&corr| {
                let mut cfg = SyntheticBuilding::paper_like();
                cfg.shadowing = (3.2, corr);
                let mut rng = StdRng::seed_from_u64(seed ^ 0x5AAD);
                let env = cfg.generate(volume, &mut rng);
                // Evaluate per audible AP on xyz features.
                let mut all_pred = Vec::new();
                let mut all_true = Vec::new();
                for ap in env.access_points().iter().take(24) {
                    let x: Vec<Vec<f64>> = train_grid
                        .iter()
                        .map(|p| vec![p.x, p.y, p.z])
                        .collect();
                    let y: Vec<f64> =
                        train_grid.iter().map(|p| env.mean_rss(ap, *p)).collect();
                    if y.iter().all(|&v| v < -92.0) {
                        continue; // inaudible AP
                    }
                    let mut knn = KnnRegressor::paper_tuned();
                    knn.fit(&x, &y).expect("valid training data");
                    for _ in 0..12 {
                        let q = volume.lerp_point(rng.gen(), rng.gen(), rng.gen());
                        all_pred
                            .push(knn.predict_one(&[q.x, q.y, q.z]).expect("fitted"));
                        all_true.push(env.mean_rss(ap, q));
                    }
                }
                ShadowRow {
                    correlation_m: corr,
                    rmse_db: stats::rmse(&all_pred, &all_true),
                }
            })
            .collect()
    }

    /// Renders the sweep.
    pub fn render(rows: &[ShadowRow]) -> String {
        let mut out = String::from(
            "Shadowing-correlation ablation (kNN on the 72-point lattice)\n\
             decorrelation [m]  RMSE [dB]\n",
        );
        for r in rows {
            out.push_str(&format!(
                "{:>17.1} {:>10.2}\n",
                r.correlation_m, r.rmse_db
            ));
        }
        out
    }
}

/// Design-decision experiment: sequential vs concurrent UAV operation.
///
/// §III-A: "To mitigate interference among UAVs, the UAVs are run in a
/// sequence, not jointly." This experiment quantifies that choice: the
/// same two-leg mission flown (a) sequentially as in the paper, and (b)
/// "concurrently", where the *other* UAV's Crazyradio stays on the air
/// during every scan.
pub mod sequential {
    use aerorem_localization::{AnchorConstellation, RangingConfig, RangingMode};
    use aerorem_mission::basestation::BaseStationClient;
    use aerorem_mission::plan::FleetPlan;
    use aerorem_propagation::building::SyntheticBuilding;
    use aerorem_radio::Crazyradio;
    use aerorem_simkit::SimTime;
    use aerorem_spatial::{Aabb, Vec3};
    use aerorem_uav::firmware::FirmwareConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Outcome of one scheduling strategy.
    #[derive(Debug, Clone, PartialEq)]
    pub struct ScheduleRow {
        /// `"sequential"` or `"concurrent"`.
        pub schedule: &'static str,
        /// Total samples recovered across both legs.
        pub samples: usize,
    }

    /// Runs both schedules over the same 24-waypoint world.
    pub fn run(seed: u64) -> Vec<ScheduleRow> {
        let volume = Aabb::paper_volume();
        let plan = FleetPlan {
            fleet_size: 2,
            total_waypoints: 24,
            ..FleetPlan::paper_demo()
        }
        .expand(volume)
        .expect("valid plan");
        let firmware = FirmwareConfig::paper_patched();
        let ranging = RangingConfig::lps_default(RangingMode::Tdoa);
        let radio_pos = Vec3::new(-1.5, 1.6, 0.8);

        let fly = |background: bool, rng: &mut StdRng| -> usize {
            let env = SyntheticBuilding::paper_like().generate(volume, rng);
            let mut total = 0usize;
            for leg in &plan.legs {
                let mut client =
                    BaseStationClient::new(2450.0, radio_pos, firmware, ranging);
                if background {
                    // The other UAV's dongle keeps polling on its own
                    // channel from the base-station table.
                    let other = Crazyradio::new(2475.0, radio_pos + Vec3::new(0.3, 0.0, 0.0))
                        .expect("in-band")
                        .interference()
                        .expect("transmitting");
                    client = client.with_background_interference(vec![other]);
                }
                let anchors = AnchorConstellation::volume_corners(volume);
                let (outcome, _) =
                    client.fly_leg(&plan, leg, &env, &anchors, SimTime::ZERO, rng);
                total += outcome.samples.len();
            }
            total
        };

        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E0);
        let seq = fly(false, &mut rng);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E0);
        let conc = fly(true, &mut rng);
        vec![
            ScheduleRow {
                schedule: "sequential",
                samples: seq,
            },
            ScheduleRow {
                schedule: "concurrent",
                samples: conc,
            },
        ]
    }

    /// Renders the comparison.
    pub fn render(rows: &[ScheduleRow]) -> String {
        let mut out = String::from(
            "Sequential vs concurrent UAV operation (24 waypoints, 2 UAVs)\n\
             schedule     samples\n",
        );
        for r in rows {
            out.push_str(&format!("{:<12} {:>7}\n", r.schedule, r.samples));
        }
        out
    }
}

/// Extension experiment: uncertainty-driven adaptive resurvey.
///
/// After a partial initial survey (a coarse first leg that covers only
/// part of the volume — the realistic shape of an interrupted or
/// battery-limited first pass), where should the UAV go next? This
/// experiment compares two follow-up strategies with the same budget:
/// waypoints chosen by uncertainty-mass capture over the kriging
/// confidence maps (`aerorem_core::adaptive`) vs uniformly random
/// waypoints. Both follow-up legs are actually flown; the final REMs are
/// scored against the hidden ground truth over the *full* volume, so a
/// strategy that never visits the unsurveyed region pays for it.
pub mod adaptive {
    use aerorem_core::adaptive::select_uncertain_waypoints;
    use aerorem_core::features::{preprocess, PreprocessConfig};
    use aerorem_core::models::ModelKind;
    use aerorem_core::rem::RemGrid;
    use aerorem_localization::{AnchorConstellation, RangingConfig, RangingMode};
    use aerorem_mission::basestation::BaseStationClient;
    use aerorem_mission::plan::{FleetPlan, UavLeg};
    use aerorem_mission::SampleSet;
    use aerorem_ml::kriging::{KrigingConfig, OrdinaryKriging};
    use aerorem_ml::{MlError, Regressor};
    use aerorem_propagation::building::SyntheticBuilding;
    use aerorem_propagation::RadioEnvironment;
    use aerorem_simkit::SimTime;
    use aerorem_spatial::{Aabb, Vec3};
    use aerorem_uav::firmware::FirmwareConfig;
    use aerorem_uav::UavId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Follow-up waypoints per strategy.
    pub const FOLLOW_UP_WAYPOINTS: usize = 12;

    /// One strategy's outcome.
    #[derive(Debug, Clone, PartialEq)]
    pub struct StrategyRow {
        /// `"initial"`, `"adaptive"`, or `"random"`.
        pub strategy: &'static str,
        /// Samples available to the model after this stage.
        pub samples: usize,
        /// RMSE against the hidden mean-RSS surface.
        pub ground_truth_rmse_db: f64,
    }

    fn ground_truth_rmse(
        samples: &SampleSet,
        env: &RadioEnvironment,
        volume: Aabb,
        seed: u64,
    ) -> Result<f64, MlError> {
        let (data, layout, _) = preprocess(
            samples,
            &PreprocessConfig {
                min_samples_per_mac: 6,
            },
        )?;
        let mut model = ModelKind::KnnScaled16.build(&layout)?;
        model.fit(&data.x, &data.y)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut se = 0.0;
        let mut count = 0usize;
        for _ in 0..120 {
            let p = volume.lerp_point(rng.gen(), rng.gen(), rng.gen());
            for mac in layout.macs() {
                let Some(ap) = env.access_point(mac) else { continue };
                let truth = env.mean_rss(ap, p);
                if truth < -90.0 {
                    continue;
                }
                let row = layout.encode_query(p, mac)?;
                let pred = model.predict_one(&row)?;
                se += (pred - truth) * (pred - truth);
                count += 1;
            }
        }
        Ok((se / count.max(1) as f64).sqrt())
    }

    /// Runs the comparison.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing/estimator errors.
    pub fn run(seed: u64) -> Result<Vec<StrategyRow>, MlError> {
        let volume = Aabb::paper_volume();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xADA9);
        let env = SyntheticBuilding::paper_like().generate(volume, &mut rng);
        let anchors = AnchorConstellation::volume_corners(volume);
        let firmware = FirmwareConfig::paper_patched();
        let ranging = RangingConfig::lps_default(RangingMode::Tdoa);
        let mut client =
            BaseStationClient::new(2450.0, Vec3::new(-1.5, 1.6, 0.8), firmware, ranging);

        // --- Initial partial survey: 16 waypoints over half of the volume
        // (a coarse first pass that ran out of battery before the far end).
        let size = volume.size();
        let surveyed = Aabb::new(
            volume.min(),
            Vec3::new(
                volume.min().x + 0.5 * size.x,
                volume.max().y,
                volume.max().z,
            ),
        )
        .expect("non-degenerate partial volume");
        let plan = FleetPlan {
            fleet_size: 1,
            total_waypoints: 16,
            ..FleetPlan::paper_demo()
        }
        .expand(surveyed)
        .expect("valid plan");
        let (initial, _) =
            client.fly_leg(&plan, &plan.legs[0], &env, &anchors, SimTime::ZERO, &mut rng);
        let initial_samples = initial.samples.clone();

        // --- Confidence maps from the initial data (5 strongest MACs). ---
        let (data, layout, _) = preprocess(
            &initial_samples,
            &PreprocessConfig {
                min_samples_per_mac: 6,
            },
        )?;
        let mut ok = OrdinaryKriging::new(KrigingConfig::default());
        ok.fit(&data.x, &data.y)?;
        let sigma_grids: Vec<RemGrid> = layout
            .macs()
            .into_iter()
            .take(5)
            .map(|mac| {
                RemGrid::generate_with_confidence(&ok, &layout, volume, 0.4, mac)
                    .map(|(_, sigma)| sigma)
            })
            .collect::<Result<_, _>>()?;

        // --- Follow-up legs: adaptive vs random, same budget. ---
        let adaptive_wps = select_uncertain_waypoints(&sigma_grids, FOLLOW_UP_WAYPOINTS, 0.5);
        let mut random_rng = StdRng::seed_from_u64(seed ^ 0x2A4D);
        let random_wps: Vec<Vec3> = (0..FOLLOW_UP_WAYPOINTS)
            .map(|_| {
                volume.lerp_point(random_rng.gen(), random_rng.gen(), random_rng.gen())
            })
            .collect();

        let mut fly_follow_up = |wps: Vec<Vec3>, rng: &mut StdRng| {
            let start = wps.first().copied().unwrap_or(volume.center());
            let leg = UavLeg {
                uav: UavId(1),
                radio_address_id: 2,
                start: Vec3::new(start.x, start.y, volume.min().z),
                yaw: 0.0,
                waypoints: wps,
                waypoint_offset: 0,
            };
            let (outcome, _) =
                client.fly_leg(&plan, &leg, &env, &anchors, SimTime::ZERO, rng);
            outcome.samples
        };
        // Clone the RNG state so both strategies see identical stochasticity.
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0xF01);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0xF01);
        let adaptive_extra = fly_follow_up(adaptive_wps, &mut rng_a);
        let random_extra = fly_follow_up(random_wps, &mut rng_b);

        let mut adaptive_set = initial_samples.clone();
        adaptive_set.merge(adaptive_extra);
        let mut random_set = initial_samples.clone();
        random_set.merge(random_extra);

        Ok(vec![
            StrategyRow {
                strategy: "initial",
                samples: initial_samples.len(),
                ground_truth_rmse_db: ground_truth_rmse(&initial_samples, &env, volume, seed)?,
            },
            StrategyRow {
                strategy: "adaptive",
                samples: adaptive_set.len(),
                ground_truth_rmse_db: ground_truth_rmse(&adaptive_set, &env, volume, seed)?,
            },
            StrategyRow {
                strategy: "random",
                samples: random_set.len(),
                ground_truth_rmse_db: ground_truth_rmse(&random_set, &env, volume, seed)?,
            },
        ])
    }

    /// Renders the comparison.
    pub fn render(rows: &[StrategyRow]) -> String {
        let mut out = String::from(
            "Adaptive resurvey: 16 initial waypoints + 12 follow-ups\n\
             strategy   samples  GT-RMSE[dB]\n",
        );
        for r in rows {
            out.push_str(&format!(
                "{:<10} {:>7} {:>12.2}\n",
                r.strategy, r.samples, r.ground_truth_rmse_db
            ));
        }
        out
    }
}

/// Ablation: ranging rate vs localization error, with and without IMU
/// aiding.
///
/// §II-B's estimator fuses UWB with the IMU (Mueller et al.). At the demo's
/// 100 Hz ranging rate the blind constant-velocity filter is fine; this
/// sweep shows where the IMU becomes load-bearing: sparse fixes during a
/// maneuver.
pub mod imurate {
    use aerorem_localization::anchors::AnchorConstellation;
    use aerorem_localization::imu::{Imu, ImuConfig};
    use aerorem_localization::{Ekf, RangingConfig, RangingMode};
    use aerorem_spatial::{Aabb, Vec3};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One row of the sweep.
    #[derive(Debug, Clone, PartialEq)]
    pub struct ImuRateRow {
        /// Ranging fixes per second.
        pub fix_hz: f64,
        /// Worst-case position error without IMU aiding, meters.
        pub blind_worst_m: f64,
        /// Worst-case position error with IMU aiding, meters.
        pub aided_worst_m: f64,
    }

    fn maneuver_worst(fix_every: usize, use_imu: bool, seed: u64) -> f64 {
        let anchors = AnchorConstellation::volume_corners(Aabb::paper_volume());
        let cfg = RangingConfig::lps_default(RangingMode::Twr);
        let var = cfg.noise_std_m * cfg.noise_std_m;
        let mut rng = StdRng::seed_from_u64(seed);
        let imu = Imu::new(ImuConfig::crazyflie_bmi088(), &mut rng);
        let accel = Vec3::new(0.8, -0.5, 0.15);
        let dt = 0.01;
        let mut truth_pos = Vec3::new(0.5, 2.5, 0.5);
        let mut truth_vel = Vec3::ZERO;
        let mut ekf = Ekf::new(truth_pos, 1.0);
        let mut worst: f64 = 0.0;
        for step in 0..400 {
            truth_vel += accel * dt;
            truth_pos += truth_vel * dt;
            if use_imu {
                let meas = imu.measure(accel, &mut rng);
                ekf.predict_with_accel(dt, meas, 0.15);
            } else {
                ekf.predict(dt);
            }
            if step % fix_every == 0 {
                let meas = cfg.measure(&anchors, truth_pos, &mut rng);
                let _ = ekf.update_ranging(&anchors, &meas, var);
            }
            if step > 100 {
                worst = worst.max(ekf.position().distance(truth_pos));
            }
        }
        worst
    }

    /// Runs the sweep over fix intervals (in 10 ms steps): 100, 10, 4, 2 Hz.
    pub fn run(seed: u64) -> Vec<ImuRateRow> {
        [1usize, 10, 25, 50]
            .iter()
            .map(|&every| ImuRateRow {
                fix_hz: 100.0 / every as f64,
                blind_worst_m: maneuver_worst(every, false, seed ^ 0x101),
                aided_worst_m: maneuver_worst(every, true, seed ^ 0x101),
            })
            .collect()
    }

    /// Renders the sweep.
    pub fn render(rows: &[ImuRateRow]) -> String {
        let mut out = String::from(
            "IMU aiding vs ranging rate (worst error during a maneuver)\n\
             fixes/s   blind [m]   IMU-aided [m]\n",
        );
        for r in rows {
            out.push_str(&format!(
                "{:>7.0} {:>10.3} {:>14.3}\n",
                r.fix_hz, r.blind_worst_m, r.aided_worst_m
            ));
        }
        out
    }
}

/// Robustness check: the headline statistics across independent worlds.
///
/// Every number in the paper comes from one apartment on one afternoon;
/// every number in this reproduction comes from one seed. This experiment
/// reruns the full campaign across several seeds and reports mean ± std of
/// the headline statistics, so the reader can see which conclusions are
/// stable and which are single-world luck.
pub mod montecarlo {
    use aerorem_numerics::stats;
    use aerorem_uav::UavId;

    /// Aggregate over seeds.
    #[derive(Debug, Clone, PartialEq)]
    pub struct MonteCarlo {
        /// Seeds evaluated.
        pub seeds: Vec<u64>,
        /// Total samples per seed.
        pub totals: Vec<f64>,
        /// UAV A minus UAV B sample counts per seed.
        pub ab_gaps: Vec<f64>,
        /// Mean RSS per seed, dBm.
        pub mean_rss: Vec<f64>,
        /// Distinct MACs per seed.
        pub macs: Vec<f64>,
    }

    /// Runs the full paper campaign once per seed.
    pub fn run(seeds: &[u64]) -> MonteCarlo {
        let mut mc = MonteCarlo {
            seeds: seeds.to_vec(),
            totals: Vec::new(),
            ab_gaps: Vec::new(),
            mean_rss: Vec::new(),
            macs: Vec::new(),
        };
        for &seed in seeds {
            let report = super::paper_campaign(seed);
            let counts = report.samples.counts_per_uav();
            mc.totals.push(report.samples.len() as f64);
            mc.ab_gaps.push(
                counts.get(&UavId(0)).copied().unwrap_or(0) as f64
                    - counts.get(&UavId(1)).copied().unwrap_or(0) as f64,
            );
            mc.mean_rss
                .push(report.samples.mean_rssi_dbm().unwrap_or(f64::NAN));
            mc.macs.push(report.samples.distinct_macs() as f64);
        }
        mc
    }

    fn fmt_row(name: &str, paper: &str, xs: &[f64]) -> String {
        format!(
            "{name:<18} {paper:>12} {:>10.1} ± {:<8.1}\n",
            stats::mean(xs).unwrap_or(f64::NAN),
            stats::std_dev(xs).unwrap_or(f64::NAN)
        )
    }

    /// Renders the aggregate table.
    pub fn render(mc: &MonteCarlo) -> String {
        let mut out = format!(
            "Campaign statistics over {} independent worlds (mean ± std)\n{:<18} {:>12} {:>10}\n",
            mc.seeds.len(),
            "statistic",
            "paper",
            "ours"
        );
        out.push_str(&fmt_row("total samples", "2696", &mc.totals));
        out.push_str(&fmt_row("A - B gap", "294", &mc.ab_gaps));
        out.push_str(&fmt_row("mean RSS [dBm]", "-73", &mc.mean_rss));
        out.push_str(&fmt_row("distinct MACs", "73", &mc.macs));
        out
    }
}

/// Tentpole instrumentation experiment: serial vs parallel end-to-end
/// pipeline timing.
///
/// Runs the paper's full demo pipeline twice with the same seed — once
/// under [`ExecPolicy::Serial`], once under [`ExecPolicy::Parallel`] — and
/// tabulates the per-stage wall-clock timings from the pipeline's built-in
/// instrumentation, including REM generation for the strongest MAC. The
/// two runs must produce identical model scores (the parallel paths are
/// deterministic); `run` asserts this, so the experiment doubles as an
/// end-to-end determinism check.
pub mod pipeline_timing {
    use aerorem_core::exec::ExecPolicy;
    use aerorem_core::instrument::Instrumentation;
    use aerorem_core::pipeline::{PipelineConfig, RemPipeline};
    use aerorem_ml::MlError;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One policy's instrumented run.
    #[derive(Debug, Clone)]
    pub struct PolicyRow {
        /// Which execution policy.
        pub policy: ExecPolicy,
        /// The pipeline's stage timings plus REM generation.
        pub instrumentation: Instrumentation,
    }

    /// Runs the demo pipeline under both policies.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    ///
    /// # Panics
    ///
    /// Panics if the serial and parallel runs disagree on any model score —
    /// that would be a determinism bug.
    pub fn run(seed: u64) -> Result<Vec<PolicyRow>, MlError> {
        let mut rows = Vec::new();
        let mut scores = Vec::new();
        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
            let mut rng = StdRng::seed_from_u64(seed);
            let result =
                RemPipeline::with_policy(PipelineConfig::paper_demo(), policy).run(&mut rng)?;
            let mut inst = result.instrumentation.clone();
            if let Some(mac) = result.strongest_mac() {
                let rem = inst.time("generate_rem", || result.generate_rem(mac))?;
                inst.count("rem_voxels", rem.len() as u64);
            }
            scores.push(result.scores.clone());
            rows.push(PolicyRow {
                policy,
                instrumentation: inst,
            });
        }
        assert_eq!(
            scores[0], scores[1],
            "serial and parallel pipelines must produce identical scores"
        );
        Ok(rows)
    }

    /// Renders the stage-by-stage comparison with per-stage speedups.
    pub fn render(rows: &[PolicyRow]) -> String {
        let mut out = String::from("End-to-end paper demo: serial vs parallel wall clock\n");
        for row in rows {
            if let Some(threads) = row.instrumentation.get_label("threads") {
                out.push_str(&format!("{}: {threads} thread(s)\n", row.policy));
            }
        }
        let [serial, parallel] = rows else {
            return out;
        };
        out.push_str(&format!(
            "{:<18} {:>12} {:>14} {:>9}\n",
            "stage", "serial [ms]", "parallel [ms]", "speedup"
        ));
        let mut lines = Vec::new();
        for (stage, sd) in serial.instrumentation.stages() {
            let Some(pd) = parallel.instrumentation.stage(stage) else {
                continue;
            };
            lines.push((stage.to_string(), sd, pd));
        }
        lines.push((
            "total".to_string(),
            serial.instrumentation.total(),
            parallel.instrumentation.total(),
        ));
        for (stage, sd, pd) in lines {
            let (s_ms, p_ms) = (sd.as_secs_f64() * 1e3, pd.as_secs_f64() * 1e3);
            let speedup = if p_ms > 0.0 { s_ms / p_ms } else { f64::NAN };
            out.push_str(&format!(
                "{stage:<18} {s_ms:>12.1} {p_ms:>14.1} {speedup:>8.2}x\n"
            ));
        }
        out
    }
}

/// Fault-recovery experiment: recovered vs lost waypoints under injected
/// fault rates.
///
/// Each row flies the same single-UAV campaign twice at the same seed —
/// once with the pre-recovery behaviour ([`RetryPolicy::none`], no
/// re-flights) and once with the paper-default recovery stack (2-retry
/// policy plus one tail re-flight) — under a deterministic receiver-fault
/// schedule of increasing severity. The table reports how many waypoints
/// actually yielded samples and what the transport still lost, backing the
/// EXPERIMENTS.md recovered-vs-lost table.
pub mod faults {
    use std::collections::BTreeSet;

    use aerorem_mission::campaign::{Campaign, CampaignConfig, CampaignReport};
    use aerorem_mission::plan::FleetPlan;
    use aerorem_mission::recovery::{RetryPolicy, ScanFaultInjection};
    use aerorem_simkit::SimDuration;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// One fault schedule's baseline-vs-recovery comparison.
    #[derive(Debug, Clone)]
    pub struct FaultRow {
        /// Human-readable schedule label.
        pub label: &'static str,
        /// The injected schedule (`None` = healthy hardware).
        pub injection: Option<ScanFaultInjection>,
        /// Waypoints that yielded samples without any recovery machinery.
        pub baseline_sampled: usize,
        /// Samples collected without any recovery machinery.
        pub baseline_samples: usize,
        /// Waypoints that yielded samples with retries + re-flights.
        pub recovered_sampled: usize,
        /// Samples collected with retries + re-flights.
        pub recovered_samples: usize,
        /// Scans saved by a retry in the recovery run.
        pub scans_recovered: u64,
        /// Rows still lost outright in the recovery run.
        pub rows_lost: u64,
        /// Rows quarantined at fragment gaps in the recovery run.
        pub rows_corrupted: u64,
    }

    /// The swept schedules: healthy, a transient fault, a sticky fault the
    /// retry budget covers, and a sticky fault that defeats it.
    pub const SCHEDULES: [(&str, Option<ScanFaultInjection>); 4] = [
        ("healthy", None),
        (
            "1-in-5 transient",
            Some(ScanFaultInjection { period: 5, burst: 1 }),
        ),
        (
            "2-in-5 sticky",
            Some(ScanFaultInjection { period: 5, burst: 2 }),
        ),
        (
            "3-in-4 sticky",
            Some(ScanFaultInjection { period: 4, burst: 3 }),
        ),
    ];

    fn config(
        recovering: bool,
        injection: Option<ScanFaultInjection>,
        waypoints: usize,
    ) -> CampaignConfig {
        CampaignConfig {
            fleet_plan: FleetPlan {
                fleet_size: 1,
                total_waypoints: waypoints,
                travel_time: SimDuration::from_secs(2),
                scan_time: SimDuration::from_secs(2),
            },
            scan_fault_injection: injection,
            retry_policy: if recovering {
                RetryPolicy::paper_default()
            } else {
                RetryPolicy::none()
            },
            max_leg_reflights: usize::from(recovering),
            ..CampaignConfig::paper_demo()
        }
    }

    fn sampled_waypoints(report: &CampaignReport) -> usize {
        report
            .samples
            .iter()
            .map(|s| s.waypoint_index)
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Runs the sweep at its default size (12 waypoints per campaign).
    pub fn run(seed: u64) -> Vec<FaultRow> {
        run_with(seed, 12, &SCHEDULES)
    }

    /// Runs the sweep over explicit schedules and campaign size.
    pub fn run_with(
        seed: u64,
        waypoints: usize,
        schedules: &[(&'static str, Option<ScanFaultInjection>)],
    ) -> Vec<FaultRow> {
        schedules
            .iter()
            .map(|&(label, injection)| {
                let baseline = Campaign::new(config(false, injection, waypoints))
                    .run(&mut StdRng::seed_from_u64(seed));
                let recovered = Campaign::new(config(true, injection, waypoints))
                    .run(&mut StdRng::seed_from_u64(seed));
                let sum = |f: fn(&aerorem_mission::basestation::LegOutcome) -> u64| {
                    recovered.legs.iter().map(f).sum::<u64>()
                };
                FaultRow {
                    label,
                    injection,
                    baseline_sampled: sampled_waypoints(&baseline),
                    baseline_samples: baseline.samples.len(),
                    recovered_sampled: sampled_waypoints(&recovered),
                    recovered_samples: recovered.samples.len(),
                    scans_recovered: sum(|l| l.scans_recovered),
                    rows_lost: sum(|l| l.rows_lost),
                    rows_corrupted: sum(|l| l.rows_corrupted),
                }
            })
            .collect()
    }

    /// Renders the recovered-vs-lost table.
    pub fn render(rows: &[FaultRow]) -> String {
        let mut out = String::from(
            "Fault recovery: sampled waypoints and samples, no-recovery vs retries+re-flight\n\
             schedule           wp(base)  wp(rec)  samples(base)  samples(rec)  saved  lost  quarantined\n",
        );
        for r in rows {
            out.push_str(&format!(
                "{:<18} {:>8} {:>8} {:>14} {:>13} {:>6} {:>5} {:>12}\n",
                r.label,
                r.baseline_sampled,
                r.recovered_sampled,
                r.baseline_samples,
                r.recovered_samples,
                r.scans_recovered,
                r.rows_lost,
                r.rows_corrupted
            ));
        }
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn recovery_never_loses_to_baseline() {
            // One transient schedule at a small size keeps the test fast.
            let rows = run_with(
                11,
                6,
                &[(
                    "1-in-3 transient",
                    Some(ScanFaultInjection { period: 3, burst: 1 }),
                )],
            );
            assert_eq!(rows.len(), 1);
            let r = &rows[0];
            assert!(r.scans_recovered > 0, "the schedule must fault");
            assert!(r.recovered_samples > r.baseline_samples);
            assert!(r.recovered_sampled >= r.baseline_sampled);
            let txt = render(&rows);
            assert!(txt.contains("1-in-3 transient"));
            assert!(txt.contains("saved"));
        }
    }
}
