//! Experiment harness: regenerates every data figure and reported statistic
//! of the paper.
//!
//! One module per experiment (see `DESIGN.md` §4 for the index):
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig5`] | Figure 5 — APs detected per channel vs Crazyradio frequency |
//! | [`fig6`] | Figure 6 — samples per UAV and scanned location |
//! | [`fig7`] | Figure 7 — per-axis 0.5 m histograms of sample counts |
//! | [`fig8`] | Figure 8 — RMSE per prediction model |
//! | [`endurance`] | §III-A endurance test (36 scans / 6 min 12 s) |
//! | [`stats`] | §III-A collection statistics (2696 samples, 73 MACs, …) |
//! | [`prep`] | §III-B preprocessing retention (2565 kept / 131 dropped) |
//! | [`loc`] | §II-B localization accuracy vs anchor count and mode |
//! | [`queue`] | §II-C firmware ablation (WDT / feedback task / queue) |
//!
//! Every experiment takes an explicit seed and returns a typed result with
//! a `render()` that prints the same rows/series the paper reports. The
//! `experiments` binary is a thin argument parser over these functions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench3;
pub mod experiments;

pub use experiments::*;
