//! Dense row-major matrices with the factorizations needed by the toolchain.
//!
//! The EKF in `aerorem-localization` needs small (≤ 9×9) symmetric solves and
//! the ordinary-kriging solver in `aerorem-ml` needs moderately sized
//! (≤ a few hundred) general solves; both are served by [`Matrix`].

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Error type for all fallible numerics operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NumericsError {
    /// Two operands had incompatible dimensions, e.g. multiplying a 2×3 by a 2×3.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand (rows, cols).
        lhs: (usize, usize),
        /// Dimensions of the right operand (rows, cols).
        rhs: (usize, usize),
    },
    /// A factorization failed because the matrix is singular (or, for
    /// Cholesky, not positive definite).
    Singular {
        /// Which factorization failed.
        op: &'static str,
    },
    /// A constructor was given rows of unequal length or zero size.
    MalformedInput {
        /// What was wrong with the input.
        reason: &'static str,
    },
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            NumericsError::Singular { op } => {
                write!(f, "matrix is singular or not positive definite in {op}")
            }
            NumericsError::MalformedInput { reason } => {
                write!(f, "malformed matrix input: {reason}")
            }
        }
    }
}

impl std::error::Error for NumericsError {}

/// A dense, row-major, heap-allocated matrix of `f64`.
///
/// # Examples
///
/// ```
/// use aerorem_numerics::Matrix;
///
/// let i = Matrix::identity(3);
/// let a = Matrix::filled(3, 3, 2.0);
/// let b = (&i * &a).unwrap();
/// assert_eq!(b[(1, 1)], 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates an `n × n` diagonal matrix from the given diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if `diag` is empty.
    pub fn diagonal(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::MalformedInput`] if `rows` is empty, any row
    /// is empty, or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NumericsError> {
        if rows.is_empty() {
            return Err(NumericsError::MalformedInput {
                reason: "no rows provided",
            });
        }
        let cols = rows[0].len();
        if cols == 0 {
            return Err(NumericsError::MalformedInput {
                reason: "rows must be non-empty",
            });
        }
        if rows.iter().any(|r| r.len() != cols) {
            return Err(NumericsError::MalformedInput {
                reason: "rows have unequal lengths",
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::MalformedInput`] if `data.len() != rows * cols`
    /// or either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, NumericsError> {
        if rows == 0 || cols == 0 {
            return Err(NumericsError::MalformedInput {
                reason: "dimensions must be non-zero",
            });
        }
        if data.len() != rows * cols {
            return Err(NumericsError::MalformedInput {
                reason: "data length does not match dimensions",
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a single-column matrix from a slice.
    pub fn column(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// A view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the given row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, NumericsError> {
        if self.cols != rhs.rows {
            return Err(NumericsError::DimensionMismatch {
                op: "matmul",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Cache-blocked matrix product `self * rhs` (i-k-j loop order with a
    /// tiled `k` dimension, see [`crate::kernels::matmul_ikj_into`]).
    ///
    /// Produces the same values as [`Matrix::matmul`] — each output entry is
    /// accumulated in strictly ascending `k` — but streams over contiguous
    /// rows of both operands, which is substantially faster for the larger
    /// batched-inference products (MLP layer forward passes over thousands of
    /// rows).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] when
    /// `self.cols() != rhs.rows()`.
    pub fn matmul_blocked(&self, rhs: &Matrix) -> Result<Matrix, NumericsError> {
        if self.cols != rhs.rows {
            return Err(NumericsError::DimensionMismatch {
                op: "matmul_blocked",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::kernels::matmul_ikj_into(
            &self.data,
            self.rows,
            self.cols,
            &rhs.data,
            rhs.cols,
            &mut out.data,
        );
        Ok(out)
    }

    /// Overwrites every entry with `value`, keeping the allocation. Used by
    /// callers that recycle a scratch matrix across solves (e.g. the batched
    /// kriging path).
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] when `self.cols() != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if self.cols != v.len() {
            return Err(NumericsError::DimensionMismatch {
                op: "matvec",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            *o = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Scales every entry by `s`, returning a new matrix.
    pub fn scaled(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        for x in &mut out.data {
            *x *= s;
        }
        out
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] when shapes differ.
    pub fn add_mat(&self, rhs: &Matrix) -> Result<Matrix, NumericsError> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] when shapes differ.
    pub fn sub_mat(&self, rhs: &Matrix) -> Result<Matrix, NumericsError> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, NumericsError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(NumericsError::DimensionMismatch {
                op,
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Symmetrizes the matrix in place: `A ← (A + Aᵀ) / 2`.
    ///
    /// Useful to fight floating-point drift of EKF covariance matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let m = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = m;
                self[(j, i)] = m;
            }
        }
    }

    /// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
    /// matrix, returning the lower-triangular factor `L`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::Singular`] when the matrix is not (numerically)
    /// positive definite, and [`NumericsError::DimensionMismatch`] when it is
    /// not square.
    pub fn cholesky(&self) -> Result<Matrix, NumericsError> {
        if !self.is_square() {
            return Err(NumericsError::DimensionMismatch {
                op: "cholesky",
                lhs: (self.rows, self.cols),
                rhs: (self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(NumericsError::Singular { op: "cholesky" });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(l)
    }

    /// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Matrix::cholesky`] and returns
    /// [`NumericsError::DimensionMismatch`] when `b.len() != self.rows()`.
    pub fn solve_spd(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if b.len() != self.rows {
            return Err(NumericsError::DimensionMismatch {
                op: "solve_spd",
                lhs: (self.rows, self.cols),
                rhs: (b.len(), 1),
            });
        }
        let l = self.cholesky()?;
        let n = self.rows;
        // forward substitution: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[(i, k)] * y[k];
            }
            y[i] = sum / l[(i, i)];
        }
        // back substitution: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[(k, i)] * x[k];
            }
            x[i] = sum / l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A x = b` for general square `A` via partially pivoted LU.
    ///
    /// Implemented as [`Matrix::lu_factor`] followed by
    /// [`LuFactors::solve_factored`]; callers that solve against the same
    /// matrix repeatedly should hold the factors and amortize the O(n³)
    /// elimination across O(n²) back-substitutions.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::Singular`] for (numerically) singular `A`,
    /// [`NumericsError::DimensionMismatch`] for non-square `A` or wrong-length `b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        if b.len() != self.rows {
            return Err(NumericsError::DimensionMismatch {
                op: "solve",
                lhs: (self.rows, self.cols),
                rhs: (b.len(), 1),
            });
        }
        let mut f = LuFactors::default();
        self.lu_factor_into(&mut f)?;
        let mut x = Vec::new();
        f.solve_factored_into(b, &mut x)?;
        Ok(x)
    }

    /// Factorizes a square matrix as `P A = L U` with partial pivoting,
    /// allocating fresh factor storage. See [`Matrix::lu_factor_into`] for
    /// the buffer-reusing variant and the bit-compatibility contract with
    /// [`Matrix::solve`].
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::Singular`] for (numerically) singular `A`,
    /// [`NumericsError::DimensionMismatch`] for non-square `A`.
    pub fn lu_factor(&self) -> Result<LuFactors, NumericsError> {
        let mut f = LuFactors::default();
        self.lu_factor_into(&mut f)?;
        Ok(f)
    }

    /// [`Matrix::lu_factor`] into caller-held storage, reusing `out`'s
    /// buffers — the hot path for factor caches that refactorize many
    /// same-sized systems.
    ///
    /// The elimination is the exact pivot-and-update sequence the historical
    /// in-place `solve` ran (strict `>` pivot selection, `1e-300` singularity
    /// threshold, `factor == 0.0` row skip), with the multiplier stored in
    /// the eliminated sub-diagonal slot instead of its ~0 residual; the
    /// residual is never read again, so `lu_factor` + `solve_factored`
    /// reproduces `solve` bit for bit — the `lu_factor_solve_matches_solve*`
    /// tests pin that equivalence.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::Singular`] for (numerically) singular `A`,
    /// [`NumericsError::DimensionMismatch`] for non-square `A`.
    pub fn lu_factor_into(&self, out: &mut LuFactors) -> Result<(), NumericsError> {
        if !self.is_square() {
            return Err(NumericsError::DimensionMismatch {
                op: "lu_factor",
                lhs: (self.rows, self.cols),
                rhs: (self.rows, self.cols),
            });
        }
        let n = self.rows;
        out.n = n;
        out.lu.clear();
        out.lu.extend_from_slice(&self.data);
        out.perm.clear();
        let a = &mut out.lu;
        // Gaussian elimination with partial pivoting.
        for col in 0..n {
            // pivot
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(NumericsError::Singular { op: "lu_solve" });
            }
            out.perm.push(pivot_row);
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                // Keep the multiplier; the eliminated slot's residual is
                // never read by the pivot search (later columns only) or the
                // back substitution (upper triangle only).
                a[r * n + col] = factor;
                if factor == 0.0 {
                    continue;
                }
                for j in (col + 1)..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
            }
        }
        Ok(())
    }

    /// Inverts a square matrix via LU solves against identity columns.
    ///
    /// # Errors
    ///
    /// Same error conditions as [`Matrix::solve`].
    pub fn inverse(&self) -> Result<Matrix, NumericsError> {
        if !self.is_square() {
            return Err(NumericsError::DimensionMismatch {
                op: "inverse",
                lhs: (self.rows, self.cols),
                rhs: (self.rows, self.cols),
            });
        }
        let n = self.rows;
        let f = self.lu_factor()?;
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        let mut col = Vec::new();
        for j in 0..n {
            e.fill(0.0);
            e[j] = 1.0;
            f.solve_factored_into(&e, &mut col)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// The maximum absolute entry (∞-norm of the flattened data).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// The trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }
}

/// A partially pivoted LU factorization of a square matrix, produced by
/// [`Matrix::lu_factor`]: `L` (unit diagonal, multipliers below) and `U`
/// packed into one `n × n` buffer, plus the pivot-row sequence.
///
/// Solving through held factors costs O(n²) per right-hand side instead of
/// re-running the O(n³) elimination, and `solve_factored` is bit-identical
/// to [`Matrix::solve`] on the same matrix — the contract the kriging
/// factor cache is built on.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct LuFactors {
    /// Packed row-major `L\U` storage, `n * n` values.
    lu: Vec<f64>,
    /// `perm[col]` is the row swapped into `col` at elimination step `col`.
    perm: Vec<usize>,
    n: usize,
}

impl LuFactors {
    /// The factored system's dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` through the held factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] when
    /// `b.len() != self.n()`.
    pub fn solve_factored(&self, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        let mut x = Vec::new();
        self.solve_factored_into(b, &mut x)?;
        Ok(x)
    }

    /// [`LuFactors::solve_factored`] into a caller-held buffer (contents
    /// replaced), so repeated solves allocate nothing.
    ///
    /// The pivot swaps are replayed on `b` in elimination order, then the
    /// forward pass applies the stored multipliers column by column —
    /// exactly the operation sequence (same operands, same order, same
    /// `factor == 0.0` skip) the historical in-place `solve` interleaved
    /// with its elimination, so the result is bit-identical to
    /// [`Matrix::solve`].
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::DimensionMismatch`] when
    /// `b.len() != self.n()`.
    pub fn solve_factored_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), NumericsError> {
        let n = self.n;
        if b.len() != n {
            return Err(NumericsError::DimensionMismatch {
                op: "solve_factored",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        x.clear();
        x.extend_from_slice(b);
        for (col, &piv) in self.perm.iter().enumerate() {
            if piv != col {
                x.swap(col, piv);
            }
        }
        // Forward substitution, L x = P b (unit diagonal).
        for col in 0..n {
            for r in (col + 1)..n {
                let factor = self.lu[r * n + col];
                if factor == 0.0 {
                    continue;
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution, U x = y. The fold runs the same left-to-right
        // subtraction sequence as the historical indexed loop.
        for i in (0..n).rev() {
            let row = &self.lu[i * n..(i + 1) * n];
            let sum = row[i + 1..]
                .iter()
                .zip(&x[i + 1..])
                .fold(x[i], |s, (&u, &xj)| s - u * xj);
            x[i] = sum / row[i];
        }
        Ok(())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Result<Matrix, NumericsError>;

    fn add(self, rhs: &Matrix) -> Self::Output {
        self.add_mat(rhs)
    }
}

impl Sub for &Matrix {
    type Output = Result<Matrix, NumericsError>;

    fn sub(self, rhs: &Matrix) -> Self::Output {
        self.sub_mat(rhs)
    }
}

impl Mul for &Matrix {
    type Output = Result<Matrix, NumericsError>;

    fn mul(self, rhs: &Matrix) -> Self::Output {
        self.matmul(rhs)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(NumericsError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            a.matmul_blocked(&b),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matmul_blocked_agrees_with_naive_on_random_shapes() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x2206);
        for _ in 0..25 {
            let m = rng.gen_range(1..=12);
            let k = rng.gen_range(1..=140); // straddles the 64-wide k-tile
            let n = rng.gen_range(1..=12);
            let mut a = Matrix::zeros(m, k);
            let mut b = Matrix::zeros(k, n);
            // Strictly positive entries so the naive path's zero-skip never
            // fires and exact bit equality is well-defined.
            for i in 0..m {
                for j in 0..k {
                    a[(i, j)] = rng.gen_range(0.1..2.0);
                }
            }
            for i in 0..k {
                for j in 0..n {
                    b[(i, j)] = rng.gen_range(0.1..2.0);
                }
            }
            assert_eq!(a.matmul_blocked(&b).unwrap(), a.matmul(&b).unwrap());
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]).unwrap();
        let l = a.cholesky().unwrap();
        let recon = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(a.cholesky(), Err(NumericsError::Singular { .. })));
    }

    #[test]
    fn solve_spd_matches_lu_solve() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 0.5], &[0.0, 0.5, 2.0]]).unwrap();
        let b = [1.0, -2.0, 3.0];
        let x1 = a.solve_spd(&b).unwrap();
        let x2 = a.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn lu_solve_requires_pivoting() {
        // a[0][0] == 0 forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lu_solve_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(NumericsError::Singular { .. })
        ));
        assert!(matches!(
            a.lu_factor(),
            Err(NumericsError::Singular { .. })
        ));
    }

    /// The historical in-place `solve`: elimination interleaved with the
    /// right-hand-side updates. `lu_factor` + `solve_factored` must
    /// reproduce its output bit for bit.
    fn reference_solve(m: &Matrix, b: &[f64]) -> Result<Vec<f64>, NumericsError> {
        let n = m.rows();
        let mut a = m.as_slice().to_vec();
        let mut x: Vec<f64> = b.to_vec();
        for col in 0..n {
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return Err(NumericsError::Singular { op: "lu_solve" });
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
                x[r] -= factor * x[col];
            }
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= a[i * n + j] * x[j];
            }
            x[i] = sum / a[i * n + i];
        }
        Ok(x)
    }

    #[test]
    fn lu_factor_solve_matches_solve_bits_on_random_systems() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x2207);
        for round in 0..60 {
            let n = rng.gen_range(1..=24);
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = rng.gen_range(-3.0..3.0);
                }
            }
            // Sprinkle exact zeros so both the pivot swaps and the
            // `factor == 0.0` skip paths fire.
            for _ in 0..n {
                let (i, j) = (rng.gen_range(0..n), rng.gen_range(0..n));
                a[(i, j)] = 0.0;
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let reference = reference_solve(&a, &b);
            let factored = a.lu_factor().map(|f| f.solve_factored(&b).unwrap());
            match (reference, factored) {
                (Ok(want), Ok(got)) => {
                    assert_eq!(got.len(), want.len());
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.to_bits(), w.to_bits(), "round {round} n {n}");
                    }
                    let via_solve = a.solve(&b).unwrap();
                    for (g, w) in via_solve.iter().zip(&want) {
                        assert_eq!(g.to_bits(), w.to_bits(), "solve() wrapper, round {round}");
                    }
                }
                (Err(_), Err(_)) => {}
                (r, f) => panic!("outcome diverged on round {round}: {r:?} vs {f:?}"),
            }
        }
    }

    #[test]
    fn factored_solves_reuse_across_rhs() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 0.5, -1.0], &[3.0, 0.0, 0.0]]).unwrap();
        let f = a.lu_factor().unwrap();
        assert_eq!(f.n(), 3);
        let mut x = Vec::new();
        for b in [[1.0, 2.0, 3.0], [0.0, -1.0, 0.5], [4.0, 4.0, 4.0]] {
            f.solve_factored_into(&b, &mut x).unwrap();
            assert_eq!(x, a.solve(&b).unwrap(), "factored solve drifted for {b:?}");
        }
        assert!(matches!(
            f.solve_factored(&[1.0, 2.0]),
            Err(NumericsError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert!((prod[(r, c)] - i[(r, c)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn symmetrize_makes_symmetric() {
        let mut a = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 1.0]]).unwrap();
        a.symmetrize();
        assert_eq!(a[(0, 1)], 3.0);
        assert_eq!(a[(1, 0)], 3.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, NumericsError::MalformedInput { .. }));
    }

    #[test]
    fn from_vec_round_trip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
        assert!(Matrix::from_vec(2, 2, vec![1.0]).is_err());
        assert!(Matrix::from_vec(0, 2, vec![]).is_err());
    }

    #[test]
    fn trace_and_norms() {
        let a = Matrix::from_rows(&[&[3.0, -4.0], &[0.0, 1.0]]).unwrap();
        assert_eq!(a.trace(), 4.0);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius_norm() - (9.0_f64 + 16.0 + 1.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn operators_delegate() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        let sum = (&a + &b).unwrap();
        assert_eq!(sum[(0, 0)], 2.0);
        let diff = (&sum - &b).unwrap();
        assert_eq!(diff, a);
        let prod = (&a * &b).unwrap();
        assert_eq!(prod, b);
    }

    #[test]
    fn display_is_nonempty() {
        let a = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let y = a.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }
}
