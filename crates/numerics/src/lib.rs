//! Small dense linear algebra, random distributions, and statistics.
//!
//! This crate is the numerical substrate for the `aerorem` workspace. The
//! broader Rust ecosystem has well-known linear-algebra crates, but the
//! reproduction is intentionally self-contained (see `DESIGN.md` §7), so this
//! crate provides exactly what the rest of the toolchain needs:
//!
//! * [`Matrix`] — a heap-allocated, row-major dense matrix with the
//!   factorizations required by the EKF ([`Matrix::cholesky`]) and by
//!   ordinary kriging ([`Matrix::solve`] via partially-pivoted LU).
//! * [`FeatureMatrix`] — contiguous row-major feature storage, the
//!   interchange type for batched inference (`Regressor::predict_batch` in
//!   `aerorem-ml`).
//! * [`kernels`] — the shared unrolled distance / cache-blocked matmul
//!   kernels whose fixed accumulation order keeps the per-item and batched
//!   prediction paths bit-identical.
//! * [`dist`] — seeded random distributions (standard normal via Box–Muller,
//!   log-normal, Rayleigh, Rician) on top of any [`rand::Rng`].
//! * [`stats`] — summary statistics (mean, variance, quantiles, RMSE) and
//!   fixed-width histogram binning used by the evaluation harness.
//! * [`codec`] — little-endian binary read/write primitives and CRC-32,
//!   the substrate for the on-disk REM snapshot format
//!   (`docs/SNAPSHOT_FORMAT.md`).
//!
//! # Examples
//!
//! Solving a small linear system:
//!
//! ```
//! use aerorem_numerics::Matrix;
//!
//! # fn main() -> Result<(), aerorem_numerics::NumericsError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let x = a.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod dist;
pub mod exec;
pub mod features;
pub mod kernels;
pub mod matrix;
pub mod stats;

pub use exec::ExecPolicy;
pub use features::FeatureMatrix;
pub use matrix::{LuFactors, Matrix, NumericsError};
