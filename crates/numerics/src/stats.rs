//! Summary statistics and fixed-width histogram binning.
//!
//! These helpers back the evaluation harness: RMSE for the Figure-8 model
//! comparison, and histogram binning for the Figure-7 per-axis sample-count
//! plots.

use serde::{Deserialize, Serialize};

/// Arithmetic mean, or `None` for an empty slice.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance, or `None` for an empty slice.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation, or `None` for an empty slice.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Root mean square error between predictions and targets.
///
/// This is the paper's Figure-8 accuracy metric.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "rmse requires equal-length slices"
    );
    assert!(!predictions.is_empty(), "rmse requires non-empty input");
    let mse = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).powi(2))
        .sum::<f64>()
        / predictions.len() as f64;
    mse.sqrt()
}

/// Mean absolute error between predictions and targets.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mae(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(
        predictions.len(),
        targets.len(),
        "mae requires equal-length slices"
    );
    assert!(!predictions.is_empty(), "mae requires non-empty input");
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / predictions.len() as f64
}

/// Coefficient of determination R².
///
/// Returns `None` when the targets have zero variance (R² undefined).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn r_squared(predictions: &[f64], targets: &[f64]) -> Option<f64> {
    assert_eq!(predictions.len(), targets.len());
    assert!(!predictions.is_empty());
    let t_mean = mean(targets)?;
    let ss_tot: f64 = targets.iter().map(|t| (t - t_mean).powi(2)).sum();
    if ss_tot == 0.0 {
        return None;
    }
    let ss_res: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (t - p).powi(2))
        .sum();
    Some(1.0 - ss_res / ss_tot)
}

/// Linearly interpolated quantile `q ∈ [0, 1]`, or `None` for empty input.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any input is NaN.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile), or `None` for empty input.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// A fixed-width 1-D histogram over `[lo, hi)`.
///
/// Used by the Figure-7 experiment to count samples per 0.5 m bin along the
/// x and y axes.
///
/// # Examples
///
/// ```
/// use aerorem_numerics::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 4.0, 0.5).unwrap();
/// h.add(0.1);
/// h.add(0.4);
/// h.add(3.9);
/// assert_eq!(h.counts()[0], 2);
/// assert_eq!(h.counts()[7], 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    width: f64,
    counts: Vec<u64>,
    outliers: u64,
}

impl Histogram {
    /// Creates a histogram spanning `[lo, hi)` with bins of width `width`.
    ///
    /// The final bin may be narrower when `(hi - lo)` is not a multiple of
    /// `width`.
    ///
    /// Returns `None` when `lo >= hi`, `width <= 0`, or any value is not
    /// finite.
    pub fn new(lo: f64, hi: f64, width: f64) -> Option<Self> {
        if lo >= hi || width <= 0.0 || !lo.is_finite() || !hi.is_finite() || !width.is_finite()
        {
            return None;
        }
        let nbins = ((hi - lo) / width).ceil() as usize;
        Some(Histogram {
            lo,
            hi,
            width,
            counts: vec![0; nbins.max(1)],
            outliers: 0,
        })
    }

    /// Adds one observation. Values outside `[lo, hi)` are counted as
    /// outliers rather than silently dropped.
    pub fn add(&mut self, x: f64) {
        if x < self.lo || x >= self.hi || !x.is_finite() {
            self.outliers += 1;
            return;
        }
        let mut idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.counts.len() {
            idx = self.counts.len() - 1;
        }
        self.counts[idx] += 1;
    }

    /// Adds every observation from the iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.add(x);
        }
    }

    /// Per-bin counts, ordered from `lo` upward.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations that fell outside `[lo, hi)`.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Total in-range observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Inclusive lower edge of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_lo(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        self.lo + i as f64 * self.width
    }

    /// Exclusive upper edge of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_hi(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of range");
        (self.lo + (i + 1) as f64 * self.width).min(self.hi)
    }

    /// Iterates over `(bin_lo, bin_hi, count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.counts.len()).map(move |i| (self.bin_lo(i), self.bin_hi(i), self.counts[i]))
    }
}

/// Computes the Pearson correlation coefficient between two equal-length
/// series, or `None` if either has zero variance or they are empty/unequal.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Ordinary least squares fit `y ≈ a + b·x`, returning `(a, b)`.
///
/// Returns `None` when the slices are empty, unequal, or `x` has zero
/// variance. Used by the variogram fitter and the endurance model
/// calibration.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<(f64, f64)> {
    if xs.len() != ys.len() || xs.is_empty() {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
    }
    if sxx == 0.0 {
        return None;
    }
    let b = sxy / sxx;
    Some((my - b * mx, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), Some(2.5));
        assert_eq!(variance(&xs), Some(1.25));
        assert_eq!(std_dev(&xs), Some(1.25_f64.sqrt()));
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
    }

    #[test]
    fn rmse_known_value() {
        let pred = [1.0, 2.0, 3.0];
        let tgt = [1.0, 4.0, 3.0];
        assert!((rmse(&pred, &tgt) - (4.0_f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmse_zero_for_perfect_prediction() {
        let xs = [5.0, -3.0, 0.1];
        assert_eq!(rmse(&xs, &xs), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn rmse_length_mismatch_panics() {
        rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn mae_known_value() {
        assert!((mae(&[0.0, 0.0], &[1.0, -3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_perfect_and_mean() {
        let t = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&t, &t).unwrap() - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r_squared(&mean_pred, &t).unwrap().abs() < 1e-12);
        assert_eq!(r_squared(&[1.0, 2.0], &[3.0, 3.0]), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(median(&xs), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 2.0, 0.5).unwrap();
        h.extend([0.0, 0.49, 0.5, 1.99, 2.0, -0.1, f64::NAN]);
        assert_eq!(h.counts(), &[2, 1, 0, 1]);
        assert_eq!(h.outliers(), 3);
        assert_eq!(h.total(), 4);
        assert_eq!(h.bin_lo(1), 0.5);
        assert_eq!(h.bin_hi(3), 2.0);
    }

    #[test]
    fn histogram_partial_last_bin() {
        let h = Histogram::new(0.0, 1.2, 0.5).unwrap();
        assert_eq!(h.counts().len(), 3);
        assert!((h.bin_hi(2) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_bad_config() {
        assert!(Histogram::new(1.0, 0.0, 0.5).is_none());
        assert!(Histogram::new(0.0, 1.0, 0.0).is_none());
        assert!(Histogram::new(0.0, f64::INFINITY, 0.5).is_none());
    }

    #[test]
    fn histogram_iter_covers_all_bins() {
        let mut h = Histogram::new(0.0, 1.0, 0.25).unwrap();
        h.add(0.1);
        let triples: Vec<_> = h.iter().collect();
        assert_eq!(triples.len(), 4);
        assert_eq!(triples[0].2, 1);
    }

    #[test]
    fn pearson_signs() {
        let x = [1.0, 2.0, 3.0];
        let y_up = [2.0, 4.0, 6.0];
        let y_down = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y_up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_down).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[1.0, 1.0, 1.0]), None);
        assert_eq!(pearson(&x, &[1.0]), None);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 0.5 * x).collect();
        let (a, b) = linear_fit(&xs, &ys).unwrap();
        assert!((a - 2.0).abs() < 1e-12);
        assert!((b - 0.5).abs() < 1e-12);
        assert_eq!(linear_fit(&[1.0, 1.0], &[2.0, 3.0]), None);
    }
}
