//! Serial-vs-parallel execution policy and the chunked executor behind the
//! toolchain's data-parallel stages.
//!
//! The `parallel` cargo feature compiles the multi-threaded paths;
//! [`ExecPolicy`] selects between them *at runtime*, so a single default
//! build can run the same pipeline both ways and verify the outputs are
//! identical (the determinism tests do exactly that). When the feature is
//! disabled, [`ExecPolicy::Parallel`] silently falls back to the serial
//! path — callers never need to gate on the feature.
//!
//! # The granularity model
//!
//! Work is never distributed item-by-item. Every entry point first splits
//! the input into contiguous **chunks** whose length is a pure function of
//! the item count and the caller's [`Granularity`] hint — *never* of the
//! worker count, the machine, or the policy. Workers then claim chunks
//! dynamically (an atomic ticket counter, so an expensive chunk on one
//! thread never strands cheap chunks behind it) and results are reassembled
//! in input order. Because both policies process the **identical** chunk
//! partition and per-item calls, `ExecPolicy::Serial` and
//! `ExecPolicy::Parallel` produce bit-identical outputs by construction —
//! including chunk-level reductions such as the blocked variogram, whose
//! partial sums are combined in ascending chunk order either way.
//!
//! # Scratch reuse
//!
//! [`ScratchPool`] hands each worker thread one reusable scratch value
//! (kNN candidate heaps, distance buffers, activation matrices) for the
//! whole run instead of allocating per item. Scratch is a *buffer*, not
//! state: a checked-out value may contain residue from earlier items, and
//! closures must overwrite rather than accumulate. The pool never lends the
//! same value to two workers at once, so `&mut` access is race-free, and
//! the proptests in this module verify scratch reuse cannot leak one item's
//! state into another's result.
//!
//! This module lives in `aerorem-numerics` (the workspace's dependency
//! root) so that every layer — `aerorem-ml`'s grid search and k-fold CV as
//! much as `aerorem-core`'s pipeline stages — shares one policy type;
//! `aerorem-core::exec` re-exports it unchanged.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// How the toolchain's data-parallel stages execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecPolicy {
    /// One thread, plain iterators — the reference path for determinism
    /// checks and single-core targets.
    Serial,
    /// Worker threads over chunked work items, reassembled in input order
    /// (the default). Identical results to [`ExecPolicy::Serial`]; falls
    /// back to it when the `parallel` feature is disabled.
    #[default]
    Parallel,
}

impl ExecPolicy {
    /// Short lowercase name (`"serial"` / `"parallel"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ExecPolicy::Serial => "serial",
            ExecPolicy::Parallel => "parallel",
        }
    }

    /// Worker threads this policy may use on the current machine.
    ///
    /// `AEROREM_EXEC_THREADS` overrides the detected core count for the
    /// parallel arm — the `scaling` bench uses it to sweep thread counts on
    /// a fixed host. Worker count never affects results, only wall time.
    #[must_use]
    pub fn threads(self) -> usize {
        match self {
            ExecPolicy::Serial => 1,
            #[cfg(feature = "parallel")]
            ExecPolicy::Parallel => std::env::var("AEROREM_EXEC_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(rayon::current_num_threads),
            #[cfg(not(feature = "parallel"))]
            ExecPolicy::Parallel => 1,
        }
    }
}

impl std::fmt::Display for ExecPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ExecPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "serial" => Ok(ExecPolicy::Serial),
            "parallel" => Ok(ExecPolicy::Parallel),
            other => Err(format!("unknown exec policy {other:?} (serial|parallel)")),
        }
    }
}

/// Target number of chunks a full-size input is split into, independent of
/// the machine: enough oversubscription that dynamic claiming balances
/// heterogeneous chunk costs across any realistic core count, few enough
/// that per-chunk bookkeeping stays invisible.
const TARGET_CHUNKS: usize = 64;

/// The caller's cost hint for one work item, steering chunk sizing.
///
/// Both fields are *item counts*. `min_chunk` is the floor: a chunk never
/// holds fewer items, because below it the per-chunk overhead (a ticket
/// claim, a scratch checkout, a result slot) would be measurable next to
/// the work itself. `items_hint` is the preferred chunk length once the
/// input is large — the cap that keeps chunks claimable for load balance.
/// Expensive items (a model fit, a `predict_batch` over a thousand rows)
/// want `per_item()`; cheap items (encoding one feature row) want
/// `rows()`-scale chunks so the closure-call overhead amortizes.
///
/// The resulting partition is a pure function of `(len, self)` — never of
/// the policy, worker count, or machine — which is what makes chunk-level
/// reductions bit-identical across [`ExecPolicy`] arms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Granularity {
    /// Minimum items per chunk (0 is treated as 1).
    pub min_chunk: usize,
    /// Preferred items per chunk for large inputs (values below
    /// `min_chunk` are treated as `min_chunk`).
    pub items_hint: usize,
}

impl Granularity {
    /// A granularity with an explicit floor and preferred chunk length.
    #[must_use]
    pub const fn new(min_chunk: usize, items_hint: usize) -> Self {
        Granularity {
            min_chunk,
            items_hint,
        }
    }

    /// For expensive items (model fits, chunk-sized batch predictions):
    /// every item is its own chunk, maximizing load balance.
    #[must_use]
    pub const fn per_item() -> Self {
        Granularity::new(1, 1)
    }

    /// For cheap per-row items (feature encoding, candidate scoring):
    /// chunks of at least 128 rows so the per-chunk overhead amortizes.
    #[must_use]
    pub const fn rows() -> Self {
        Granularity::new(128, 1024)
    }

    /// Items per chunk for an input of `len` items — a pure function of
    /// `(len, self)`, identical on every machine and policy.
    #[must_use]
    pub fn chunk_len(&self, len: usize) -> usize {
        let min = self.min_chunk.max(1);
        let hint = self.items_hint.max(min);
        len.div_ceil(TARGET_CHUNKS).clamp(min, hint)
    }
}

impl Default for Granularity {
    fn default() -> Self {
        Granularity::per_item()
    }
}

/// The executor's decision for one run: how many chunks of what length,
/// spread over how many worker threads. Pipeline instrumentation records
/// plans per stage so granularity regressions show up in `aerorem demo`
/// output rather than a profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPlan {
    /// Worker threads the run will use (1 means the inline serial path).
    pub workers: usize,
    /// Items per chunk (the last chunk may be shorter).
    pub chunk: usize,
    /// Total chunks.
    pub chunks: usize,
}

/// Computes the execution plan for `len` items under `policy` and `gran` —
/// the same arithmetic every entry point in this module uses.
#[must_use]
pub fn plan(policy: ExecPolicy, len: usize, gran: Granularity) -> ExecPlan {
    let chunk = gran.chunk_len(len);
    let chunks = len.div_ceil(chunk.max(1));
    let workers = policy.threads().min(chunks).max(1);
    ExecPlan {
        workers,
        chunk,
        chunks,
    }
}

/// A pool of reusable scratch values, one lent per worker thread at a time.
///
/// `take` pops a previously returned value or builds a fresh one; `give`
/// returns it for the next borrower. A value is owned by exactly one
/// thread between `take` and `give`, so there is no sharing to synchronize
/// beyond the pool's own free list. Values are **buffers, not state**:
/// they arrive dirty, and borrowers must fully overwrite whatever they
/// read back out.
pub struct ScratchPool<S, F: Fn() -> S> {
    make: F,
    free: Mutex<Vec<S>>,
}

impl<S, F: Fn() -> S> ScratchPool<S, F> {
    /// A pool that builds fresh scratch values with `make`.
    pub fn new(make: F) -> Self {
        ScratchPool {
            make,
            free: Mutex::new(Vec::new()),
        }
    }

    /// Checks out a scratch value (reused if available, fresh otherwise).
    pub fn take(&self) -> S {
        self.free
            .lock()
            .expect("scratch pool lock poisoned")
            .pop()
            .unwrap_or_else(|| (self.make)())
    }

    /// Returns a scratch value to the pool for reuse.
    pub fn give(&self, s: S) {
        self.free
            .lock()
            .expect("scratch pool lock poisoned") // lint:allow(panic-reach) — poisoning means a worker already panicked; re-raising keeps the original failure visible instead of masking it
            .push(s);
    }

    /// Runs `f` with a checked-out scratch value, returning it afterwards.
    pub fn with<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        let mut s = self.take();
        let out = f(&mut s);
        self.give(s);
        out
    }

    /// Number of values currently parked in the pool (test observability).
    #[must_use]
    pub fn idle(&self) -> usize {
        self.free.lock().expect("scratch pool lock poisoned").len()
    }
}

/// A unit pool for entry points whose callers need no scratch.
fn unit_pool() -> ScratchPool<(), fn() -> ()> {
    ScratchPool::new(|| ())
}

/// Core executor: runs `job(scratch, chunk_index)` for every chunk index in
/// `0..n_chunks`, reassembling outputs in chunk order. With one worker the
/// chunks run inline on the caller's thread; otherwise `workers` scoped
/// threads claim chunk tickets from an atomic counter, each holding one
/// scratch value from `pool` for its whole lifetime.
fn run_chunks<S, FM, C, J>(workers: usize, n_chunks: usize, pool: &ScratchPool<S, FM>, job: J) -> Vec<C>
where
    S: Send,
    FM: Fn() -> S + Sync,
    C: Send,
    J: Fn(&mut S, usize) -> C + Sync,
{
    if workers <= 1 || n_chunks <= 1 {
        let mut s = pool.take();
        let out = (0..n_chunks).map(|ci| job(&mut s, ci)).collect();
        pool.give(s);
        return out;
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, C)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut s = pool.take();
                    let mut got: Vec<(usize, C)> = Vec::new();
                    loop {
                        let ci = next.fetch_add(1, Ordering::Relaxed);
                        if ci >= n_chunks {
                            break;
                        }
                        got.push((ci, job(&mut s, ci)));
                    }
                    pool.give(s);
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("exec worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<C>> = (0..n_chunks).map(|_| None).collect();
    for run in per_worker {
        for (ci, c) in run {
            slots[ci] = Some(c);
        }
    }
    slots
        .into_iter()
        .map(|c| c.expect("every chunk claimed exactly once"))
        .collect()
}

/// Fallible [`run_chunks`]: stops claiming new chunks once any chunk has
/// failed, and returns the error of the lowest-indexed failing chunk.
///
/// Chunk tickets are claimed in ascending order, so the claimed set is
/// always a contiguous prefix — every chunk before the first failure runs
/// to completion, which is what makes "first error in input order" exact
/// even with early abort.
fn try_run_chunks<S, FM, C, E, J>(
    workers: usize,
    n_chunks: usize,
    pool: &ScratchPool<S, FM>,
    job: J,
) -> Result<Vec<C>, E>
where
    S: Send,
    FM: Fn() -> S + Sync,
    C: Send,
    E: Send,
    J: Fn(&mut S, usize) -> Result<C, E> + Sync,
{
    if workers <= 1 || n_chunks <= 1 {
        let mut s = pool.take();
        let mut out = Vec::with_capacity(n_chunks);
        for ci in 0..n_chunks {
            match job(&mut s, ci) {
                Ok(c) => out.push(c),
                Err(e) => {
                    pool.give(s);
                    return Err(e);
                }
            }
        }
        pool.give(s);
        return Ok(out);
    }
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let per_worker: Vec<Vec<(usize, Result<C, E>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut s = pool.take();
                    let mut got: Vec<(usize, Result<C, E>)> = Vec::new();
                    while !abort.load(Ordering::Relaxed) {
                        let ci = next.fetch_add(1, Ordering::Relaxed);
                        if ci >= n_chunks {
                            break;
                        }
                        let r = job(&mut s, ci);
                        if r.is_err() {
                            abort.store(true, Ordering::Relaxed);
                        }
                        got.push((ci, r));
                    }
                    pool.give(s);
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("exec worker panicked")) // lint:allow(panic-reach) — deliberate panic propagation: join() only fails if the worker panicked, and swallowing it would silently drop chunks
            .collect()
    });
    let mut slots: Vec<Option<Result<C, E>>> = (0..n_chunks).map(|_| None).collect();
    for run in per_worker {
        for (ci, c) in run {
            slots[ci] = Some(c);
        }
    }
    let mut out = Vec::with_capacity(n_chunks);
    for slot in slots {
        match slot {
            Some(Ok(c)) => out.push(c),
            Some(Err(e)) => return Err(e),
            // Unclaimed chunks form a suffix strictly after the first
            // failure; reaching one without having hit an Err is impossible.
            None => unreachable!("chunk skipped without a preceding error"),
        }
    }
    Ok(out)
}

/// Bounds of chunk `ci` in an input of `len` items.
fn chunk_bounds(len: usize, chunk: usize, ci: usize) -> (usize, usize) {
    let start = ci * chunk;
    (start, (start + chunk).min(len))
}

/// Maps `f` over the contiguous chunks of `items`, preserving chunk order:
/// `f(offset, slice)` receives each chunk's starting offset and contents,
/// and the per-chunk outputs come back in ascending offset order.
///
/// The chunk partition depends only on `(items.len(), gran)`, so both
/// policies call `f` with identical arguments in an order-independent way —
/// chunk-level reductions stay bit-identical as long as the caller combines
/// the returned chunk outputs in the returned (ascending) order.
pub fn map_chunks<T, C, F>(policy: ExecPolicy, gran: Granularity, items: &[T], f: F) -> Vec<C>
where
    T: Sync,
    C: Send,
    F: Fn(usize, &[T]) -> C + Sync,
{
    let p = plan(policy, items.len(), gran);
    if items.is_empty() {
        return Vec::new();
    }
    run_chunks(p.workers, p.chunks, &unit_pool(), |(), ci| {
        let (lo, hi) = chunk_bounds(items.len(), p.chunk, ci);
        f(lo, &items[lo..hi])
    })
}

/// Fallible [`map_chunks`]: returns the error of the lowest-offset failing
/// chunk.
///
/// # Errors
///
/// Returns the first `Err` produced by `f`, in chunk order.
pub fn try_map_chunks<T, C, E, F>(
    policy: ExecPolicy,
    gran: Granularity,
    items: &[T],
    f: F,
) -> Result<Vec<C>, E>
where
    T: Sync,
    C: Send,
    E: Send,
    F: Fn(usize, &[T]) -> Result<C, E> + Sync,
{
    let p = plan(policy, items.len(), gran);
    if items.is_empty() {
        return Ok(Vec::new());
    }
    try_run_chunks(p.workers, p.chunks, &unit_pool(), |(), ci| {
        let (lo, hi) = chunk_bounds(items.len(), p.chunk, ci);
        f(lo, &items[lo..hi])
    })
}

/// Maps `f(scratch, item)` over `items` with per-worker-thread scratch from
/// `pool`, preserving input order. The scratch value a worker holds is
/// reused across every item that worker processes — closures must treat it
/// as a dirty buffer, never as carried state.
pub fn map_vec_with<T, R, S, FM, F>(
    policy: ExecPolicy,
    gran: Granularity,
    pool: &ScratchPool<S, FM>,
    items: &[T],
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    S: Send,
    FM: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let p = plan(policy, items.len(), gran);
    if items.is_empty() {
        return Vec::new();
    }
    let chunked: Vec<Vec<R>> = run_chunks(p.workers, p.chunks, pool, |s, ci| {
        let (lo, hi) = chunk_bounds(items.len(), p.chunk, ci);
        items[lo..hi].iter().map(|t| f(s, t)).collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for c in chunked {
        out.extend(c);
    }
    out
}

/// Fallible [`map_vec_with`]: collects into `Result`, returning the first
/// error in input order.
///
/// # Errors
///
/// Returns the first `Err` produced by `f`, in input order.
pub fn try_map_vec_with<T, R, E, S, FM, F>(
    policy: ExecPolicy,
    gran: Granularity,
    pool: &ScratchPool<S, FM>,
    items: &[T],
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    S: Send,
    FM: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> Result<R, E> + Sync,
{
    let p = plan(policy, items.len(), gran);
    if items.is_empty() {
        return Ok(Vec::new());
    }
    let chunked: Vec<Vec<R>> = try_run_chunks(p.workers, p.chunks, pool, |s, ci| {
        let (lo, hi) = chunk_bounds(items.len(), p.chunk, ci);
        let mut c = Vec::with_capacity(hi - lo);
        for t in &items[lo..hi] {
            c.push(f(s, t)?);
        }
        Ok(c)
    })?;
    let mut out = Vec::with_capacity(items.len());
    for c in chunked {
        out.extend(c);
    }
    Ok(out)
}

/// Maps `f` over `items` under the given policy, preserving input order.
///
/// The by-value compatibility entry point: items are moved into `f`. Hot
/// paths use the borrowing chunked variants ([`map_vec_with`],
/// [`map_chunks`]) instead, which skip the per-chunk re-materialization
/// this signature forces on the parallel arm.
pub fn map_vec<T, R, F>(policy: ExecPolicy, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    let p = plan(policy, items.len(), Granularity::per_item());
    if p.workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let len = items.len();
    let lots = chunk_lots(items, p.chunk);
    let chunked = run_chunks(p.workers, lots.len(), &unit_pool(), |(), ci| {
        let lot = lots[ci]
            .lock()
            .expect("chunk lot lock poisoned")
            .take()
            .expect("each chunk lot consumed exactly once");
        lot.into_iter().map(&f).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(len);
    for c in chunked {
        out.extend(c);
    }
    out
}

/// Fallible [`map_vec`]: collects into `Result`, returning the first error
/// in input order.
///
/// # Errors
///
/// Returns the first `Err` produced by `f`, in input order.
pub fn try_map_vec<T, R, E, F>(policy: ExecPolicy, items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(T) -> Result<R, E> + Sync + Send,
{
    let p = plan(policy, items.len(), Granularity::per_item());
    if p.workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let len = items.len();
    let lots = chunk_lots(items, p.chunk);
    let chunked = try_run_chunks(p.workers, lots.len(), &unit_pool(), |(), ci| {
        let lot = lots[ci]
            .lock()
            .expect("chunk lot lock poisoned")
            .take()
            .expect("each chunk lot consumed exactly once");
        let mut c = Vec::with_capacity(lot.len());
        for t in lot {
            c.push(f(t)?);
        }
        Ok(c)
    })?;
    let mut out = Vec::with_capacity(len);
    for c in chunked {
        out.extend(c);
    }
    Ok(out)
}

/// Splits owned items into per-chunk lots a worker can move out of — the
/// safe-Rust price of the by-value signature (borrowing entry points pay
/// nothing).
fn chunk_lots<T>(items: Vec<T>, chunk: usize) -> Vec<Mutex<Option<Vec<T>>>> {
    let mut lots = Vec::with_capacity(items.len().div_ceil(chunk.max(1)));
    let mut it = items.into_iter();
    loop {
        let lot: Vec<T> = it.by_ref().take(chunk.max(1)).collect();
        if lot.is_empty() {
            break;
        }
        lots.push(Mutex::new(Some(lot)));
    }
    lots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_parse_and_display() {
        assert_eq!("serial".parse::<ExecPolicy>(), Ok(ExecPolicy::Serial));
        assert_eq!("parallel".parse::<ExecPolicy>(), Ok(ExecPolicy::Parallel));
        assert!("threads".parse::<ExecPolicy>().is_err());
        assert_eq!(ExecPolicy::Serial.to_string(), "serial");
        assert_eq!(ExecPolicy::default(), ExecPolicy::Parallel);
        assert_eq!(ExecPolicy::Serial.threads(), 1);
        assert!(ExecPolicy::Parallel.threads() >= 1);
    }

    #[test]
    fn map_vec_matches_serial_map() {
        let items: Vec<u64> = (0..5000).collect();
        let serial = map_vec(ExecPolicy::Serial, items.clone(), |i| i * 3 + 1);
        let parallel = map_vec(ExecPolicy::Parallel, items, |i| i * 3 + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn try_map_vec_reports_first_error_in_input_order() {
        let items: Vec<u32> = (0..100).collect();
        let ok: Result<Vec<u32>, String> =
            try_map_vec(ExecPolicy::Parallel, items.clone(), |i| Ok(i + 1));
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<u32>, String> = try_map_vec(ExecPolicy::Parallel, items, |i| {
            if i >= 40 {
                Err(format!("fail {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(err.unwrap_err(), "fail 40");
    }

    #[test]
    fn chunk_len_is_a_pure_clamp() {
        // Floor: min_chunk wins on small inputs.
        assert_eq!(Granularity::new(128, 1024).chunk_len(100), 128);
        // Cap: items_hint wins on huge inputs.
        assert_eq!(Granularity::new(128, 1024).chunk_len(10_000_000), 1024);
        // In between: len / TARGET_CHUNKS.
        assert_eq!(Granularity::new(1, 100_000).chunk_len(6400), 100);
        // Degenerate hints are sanitized.
        assert_eq!(Granularity::new(0, 0).chunk_len(10), 1);
        // A hint below the floor is raised to it, so the cap is min_chunk.
        assert_eq!(Granularity::new(8, 2).chunk_len(1000), 8);
        // Empty input still yields a non-zero chunk length.
        assert!(Granularity::per_item().chunk_len(0) >= 1);
    }

    #[test]
    fn plan_counts_chunks_and_caps_workers() {
        let p = plan(ExecPolicy::Serial, 1000, Granularity::rows());
        assert_eq!(p.workers, 1);
        assert_eq!(p.chunk, 128);
        assert_eq!(p.chunks, 8);
        let p = plan(ExecPolicy::Parallel, 3, Granularity::per_item());
        assert!(p.workers <= 3);
        assert_eq!(p.chunks, 3);
        let p = plan(ExecPolicy::Parallel, 0, Granularity::per_item());
        assert_eq!(p.chunks, 0);
        assert_eq!(p.workers, 1);
    }

    #[test]
    fn map_chunks_sees_the_full_partition_in_order() {
        let items: Vec<u32> = (0..1000).collect();
        let gran = Granularity::new(64, 64);
        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
            let spans = map_chunks(policy, gran, &items, |off, chunk| {
                (off, chunk.to_vec())
            });
            let mut expect_off = 0;
            let mut seen = Vec::new();
            for (off, chunk) in &spans {
                assert_eq!(*off, expect_off, "{policy}");
                expect_off += chunk.len();
                seen.extend(chunk.iter().copied());
            }
            assert_eq!(seen, items, "{policy}");
            assert!(spans.iter().all(|(_, c)| c.len() <= 64));
        }
    }

    #[test]
    fn map_chunks_empty_input() {
        let out: Vec<usize> =
            map_chunks(ExecPolicy::Parallel, Granularity::per_item(), &[0u8; 0], |_, c| c.len());
        assert!(out.is_empty());
    }

    #[test]
    fn try_map_chunks_first_error_wins() {
        let items: Vec<u32> = (0..500).collect();
        let gran = Granularity::new(16, 16);
        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
            let r: Result<Vec<usize>, usize> =
                try_map_chunks(policy, gran, &items, |off, chunk| {
                    if off >= 96 {
                        Err(off)
                    } else {
                        Ok(chunk.len())
                    }
                });
            assert_eq!(r.unwrap_err(), 96, "{policy}");
        }
    }

    #[test]
    fn map_vec_with_reuses_scratch_and_preserves_order() {
        let items: Vec<u64> = (0..2000).collect();
        let pool = ScratchPool::new(Vec::<u64>::new);
        let gran = Granularity::new(32, 128);
        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
            let out = map_vec_with(policy, gran, &pool, &items, |buf, &i| {
                // Scratch is a dirty buffer: overwrite, then read back.
                buf.clear();
                buf.extend((0..(i % 7)).map(|j| j + i));
                i * 2 + buf.len() as u64
            });
            let want: Vec<u64> = items.iter().map(|&i| i * 2 + i % 7).collect();
            assert_eq!(out, want, "{policy}");
        }
        // Scratch values were returned to the pool, not leaked.
        assert!(pool.idle() >= 1);
    }

    #[test]
    fn try_map_vec_with_first_error_in_input_order() {
        let items: Vec<u32> = (0..300).collect();
        let pool = ScratchPool::new(|| 0u32);
        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
            let r: Result<Vec<u32>, u32> =
                try_map_vec_with(policy, Granularity::new(8, 8), &pool, &items, |_, &i| {
                    if i >= 133 {
                        Err(i)
                    } else {
                        Ok(i)
                    }
                });
            assert_eq!(r.unwrap_err(), 133, "{policy}");
        }
    }

    #[test]
    fn scratch_pool_reuses_allocations() {
        let pool = ScratchPool::new(|| Vec::<f64>::with_capacity(0));
        let mut a = pool.take();
        a.reserve(4096);
        let cap = a.capacity();
        pool.give(a);
        assert_eq!(pool.idle(), 1);
        let b = pool.take();
        assert!(b.capacity() >= cap, "reused value keeps its allocation");
        assert_eq!(pool.idle(), 0);
        pool.give(b);
        // Concurrent checkouts get distinct values.
        let x = pool.take();
        let y = pool.take();
        assert_eq!(pool.idle(), 0);
        pool.give(x);
        pool.give(y);
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn forced_multi_worker_chunks_match_serial() {
        // Exercise the multi-worker claim/scatter path directly, independent
        // of how many cores the host has.
        let pool = ScratchPool::new(|| ());
        for n_chunks in [0usize, 1, 2, 7, 64] {
            for workers in [2usize, 3, 5] {
                let par = run_chunks(workers, n_chunks, &pool, |(), ci| ci * ci);
                let ser = run_chunks(1, n_chunks, &pool, |(), ci| ci * ci);
                assert_eq!(par, ser, "workers={workers} chunks={n_chunks}");
            }
        }
    }

    #[test]
    fn forced_multi_worker_try_chunks_first_error() {
        let pool = ScratchPool::new(|| ());
        for workers in [2usize, 4] {
            let r: Result<Vec<usize>, usize> =
                try_run_chunks(workers, 40, &pool, |(), ci| if ci >= 13 { Err(ci) } else { Ok(ci) });
            assert_eq!(r.unwrap_err(), 13, "workers={workers}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A float op with order-sensitive rounding: if the executor ever
        /// re-associated work across chunks, bits would differ.
        fn crunch(i: u64) -> f64 {
            let x = (i as f64) * 0.37 + 1.0;
            (x.sqrt() + 1.0 / x).ln()
        }

        proptest! {
            // Chunked-parallel ≡ chunked-serial ≡ legacy per-item map,
            // bit-for-bit, across arbitrary item counts and chunk hints
            // (including the 0 / 1 / len+1 edge cases the strategy covers).
            #[test]
            fn chunked_arms_and_legacy_map_agree(
                len in 0usize..200,
                min_chunk in 0usize..202,
                hint in 0usize..202,
                workers in 1usize..5,
            ) {
                let items: Vec<u64> = (0..len as u64).collect();
                let gran = Granularity::new(min_chunk, hint);
                let legacy: Vec<f64> = items.iter().map(|&i| crunch(i)).collect();

                let serial = map_vec_with(
                    ExecPolicy::Serial, gran, &ScratchPool::new(|| ()), &items, |(), &i| crunch(i));
                prop_assert_eq!(&serial, &legacy);

                // Drive the multi-worker path explicitly so the property
                // holds even on single-core hosts.
                let p = plan(ExecPolicy::Serial, items.len(), gran);
                let chunked: Vec<Vec<f64>> = run_chunks(
                    workers, p.chunks, &ScratchPool::new(|| ()), |(), ci| {
                        let (lo, hi) = chunk_bounds(items.len(), p.chunk, ci);
                        items[lo..hi].iter().map(|&i| crunch(i)).collect()
                    });
                let flat: Vec<f64> = chunked.into_iter().flatten().collect();
                prop_assert_eq!(&flat, &legacy);

                let via_chunks: Vec<f64> = map_chunks(
                    ExecPolicy::Parallel, gran, &items, |_, c| {
                        c.iter().map(|&i| crunch(i)).collect::<Vec<f64>>()
                    }).into_iter().flatten().collect();
                prop_assert_eq!(&via_chunks, &legacy);
            }

            // Scratch reuse must be unobservable: a closure that smears
            // item-dependent garbage into its scratch still produces the
            // same results as a fresh-scratch-per-item run.
            #[test]
            fn scratch_reuse_never_leaks_between_items(
                len in 0usize..150,
                min_chunk in 0usize..152,
                workers in 1usize..5,
            ) {
                let items: Vec<u64> = (0..len as u64).collect();
                let gran = Granularity::new(min_chunk, min_chunk.max(1) * 2);
                let with_dirty_scratch = |s: &mut Vec<u64>, i: u64| -> f64 {
                    // Deliberately do NOT clear before writing garbage…
                    s.push(i.wrapping_mul(0x9E37));
                    // …but overwrite before reading, as the contract demands.
                    s.clear();
                    s.extend([i, i + 1]);
                    crunch(s[0]) + s[1] as f64
                };
                let fresh: Vec<f64> = items
                    .iter()
                    .map(|&i| with_dirty_scratch(&mut Vec::new(), i))
                    .collect();
                let pool = ScratchPool::new(Vec::<u64>::new);
                let pooled = map_vec_with(
                    ExecPolicy::Parallel, gran, &pool, &items, |s, &i| with_dirty_scratch(s, i));
                prop_assert_eq!(&pooled, &fresh);

                // And under a forced multi-worker run.
                let p = plan(ExecPolicy::Serial, items.len(), gran);
                let forced: Vec<f64> = run_chunks(workers, p.chunks, &pool, |s, ci| {
                    let (lo, hi) = chunk_bounds(items.len(), p.chunk, ci);
                    items[lo..hi].iter().map(|&i| with_dirty_scratch(s, i)).collect::<Vec<f64>>()
                }).into_iter().flatten().collect();
                prop_assert_eq!(&forced, &fresh);
            }

            // The fallible arms agree with the serial short-circuit walk.
            #[test]
            fn try_arms_agree_with_serial_walk(
                len in 0usize..120,
                min_chunk in 0usize..122,
                fail_at in 0usize..140,
            ) {
                let items: Vec<u64> = (0..len as u64).collect();
                let gran = Granularity::new(min_chunk, min_chunk.max(1) * 3);
                let f = |i: u64| -> Result<f64, u64> {
                    if i as usize >= fail_at { Err(i) } else { Ok(crunch(i)) }
                };
                let want: Result<Vec<f64>, u64> = items.iter().map(|&i| f(i)).collect();
                let pool = ScratchPool::new(|| ());
                let got = try_map_vec_with(
                    ExecPolicy::Parallel, gran, &pool, &items, |(), &i| f(i));
                prop_assert_eq!(got, want.clone());
                let legacy = try_map_vec(ExecPolicy::Parallel, items.clone(), f);
                prop_assert_eq!(legacy, want);
            }
        }
    }
}
