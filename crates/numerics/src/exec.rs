//! Serial-vs-parallel execution policy for the toolchain's data-parallel
//! stages.
//!
//! The `parallel` cargo feature compiles the rayon-backed paths;
//! [`ExecPolicy`] selects between them *at runtime*, so a single default
//! build can run the same pipeline both ways and verify the outputs are
//! identical (the determinism tests do exactly that). When the feature is
//! disabled, [`ExecPolicy::Parallel`] silently falls back to the serial
//! path — callers never need to gate on the feature.
//!
//! Parallelism here is deterministic by construction: work items are
//! mapped independently and results are reassembled in input order, and no
//! stage draws random numbers inside a parallel region.
//!
//! This module lives in `aerorem-numerics` (the workspace's dependency
//! root) so that every layer — `aerorem-ml`'s grid search and k-fold CV as
//! much as `aerorem-core`'s pipeline stages — shares one policy type;
//! `aerorem-core::exec` re-exports it unchanged.

/// How the toolchain's data-parallel stages execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecPolicy {
    /// One thread, plain iterators — the reference path for determinism
    /// checks and single-core targets.
    Serial,
    /// Worker threads via rayon, reassembled in input order (the default).
    /// Identical results to [`ExecPolicy::Serial`]; falls back to it when
    /// the `parallel` feature is disabled.
    #[default]
    Parallel,
}

impl ExecPolicy {
    /// Short lowercase name (`"serial"` / `"parallel"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ExecPolicy::Serial => "serial",
            ExecPolicy::Parallel => "parallel",
        }
    }

    /// Worker threads this policy may use on the current machine.
    #[must_use]
    pub fn threads(self) -> usize {
        match self {
            ExecPolicy::Serial => 1,
            #[cfg(feature = "parallel")]
            ExecPolicy::Parallel => rayon::current_num_threads(),
            #[cfg(not(feature = "parallel"))]
            ExecPolicy::Parallel => 1,
        }
    }
}

impl std::fmt::Display for ExecPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ExecPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "serial" => Ok(ExecPolicy::Serial),
            "parallel" => Ok(ExecPolicy::Parallel),
            other => Err(format!("unknown exec policy {other:?} (serial|parallel)")),
        }
    }
}

/// Maps `f` over `items` under the given policy, preserving input order.
pub fn map_vec<T, R, F>(policy: ExecPolicy, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    #[cfg(feature = "parallel")]
    if policy == ExecPolicy::Parallel {
        use rayon::prelude::*;
        return items.into_par_iter().map(f).collect();
    }
    let _ = policy;
    items.into_iter().map(f).collect()
}

/// Fallible [`map_vec`]: collects into `Result`, returning the first error
/// in input order.
///
/// # Errors
///
/// Returns the first `Err` produced by `f`, in input order.
pub fn try_map_vec<T, R, E, F>(policy: ExecPolicy, items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(T) -> Result<R, E> + Sync + Send,
{
    #[cfg(feature = "parallel")]
    if policy == ExecPolicy::Parallel {
        use rayon::prelude::*;
        return items.into_par_iter().map(f).collect();
    }
    let _ = policy;
    items.into_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_parse_and_display() {
        assert_eq!("serial".parse::<ExecPolicy>(), Ok(ExecPolicy::Serial));
        assert_eq!("parallel".parse::<ExecPolicy>(), Ok(ExecPolicy::Parallel));
        assert!("threads".parse::<ExecPolicy>().is_err());
        assert_eq!(ExecPolicy::Serial.to_string(), "serial");
        assert_eq!(ExecPolicy::default(), ExecPolicy::Parallel);
        assert_eq!(ExecPolicy::Serial.threads(), 1);
        assert!(ExecPolicy::Parallel.threads() >= 1);
    }

    #[test]
    fn map_vec_matches_serial_map() {
        let items: Vec<u64> = (0..5000).collect();
        let serial = map_vec(ExecPolicy::Serial, items.clone(), |i| i * 3 + 1);
        let parallel = map_vec(ExecPolicy::Parallel, items, |i| i * 3 + 1);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn try_map_vec_reports_first_error_in_input_order() {
        let items: Vec<u32> = (0..100).collect();
        let ok: Result<Vec<u32>, String> =
            try_map_vec(ExecPolicy::Parallel, items.clone(), |i| Ok(i + 1));
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<u32>, String> = try_map_vec(ExecPolicy::Parallel, items, |i| {
            if i >= 40 {
                Err(format!("fail {i}"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(err.unwrap_err(), "fail 40");
    }
}
