//! Little-endian binary codec primitives for on-disk artifacts.
//!
//! The REM snapshot format (`aerorem-core::snapshot`, specified byte by
//! byte in `docs/SNAPSHOT_FORMAT.md`) needs three things from its substrate:
//! an **endian-stable** writer (every multi-byte field is little-endian on
//! every host), a bounds-checked reader that returns typed errors instead
//! of panicking on truncated input, and a **CRC-32** checksum so corruption
//! is detected before any field is trusted. This module provides exactly
//! those three, with no format knowledge of its own — the snapshot layer
//! owns the field layout.
//!
//! Floats are transported as raw IEEE-754 bit patterns (`f64::to_bits` /
//! `from_bits`), so a write→read round trip is **bit-identical** even for
//! NaNs with unusual payloads — the property the snapshot round-trip tests
//! pin.

use std::fmt;

/// Error type for bounds-checked binary reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a field could be read in full.
    UnexpectedEof {
        /// Byte offset the read started at.
        offset: usize,
        /// Bytes the field needed.
        wanted: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A length-prefixed field declared more bytes than the caller's cap
    /// allows — hostile inputs must fail *before* any allocation is sized
    /// from the declared length.
    OverlongField {
        /// Byte offset of the length prefix.
        offset: usize,
        /// Length the prefix declared.
        declared: usize,
        /// Caller-supplied maximum.
        max: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof {
                offset,
                wanted,
                remaining,
            } => write!(
                f,
                "unexpected end of input at byte {offset}: field needs {wanted} bytes, \
                 {remaining} remain"
            ),
            CodecError::OverlongField {
                offset,
                declared,
                max,
            } => write!(
                f,
                "length prefix at byte {offset} declares {declared} bytes, cap is {max}"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends little-endian fields to a growing byte buffer.
///
/// # Examples
///
/// ```
/// use aerorem_numerics::codec::{ByteReader, ByteWriter};
///
/// let mut w = ByteWriter::new();
/// w.put_u32(0xDEAD_BEEF);
/// w.put_f64(-73.25);
/// let bytes = w.into_bytes();
///
/// let mut r = ByteReader::new(&bytes);
/// assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
/// assert_eq!(r.take_f64().unwrap(), -73.25);
/// assert!(r.is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Creates a writer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw IEEE-754 bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u32` length prefix followed by the bytes themselves —
    /// the variable-length-field convention of the wire protocol
    /// (`docs/WIRE_FORMAT.md`). Pairs with [`ByteReader::take_len_bytes`].
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than `u32::MAX` (no real field is).
    pub fn put_len_bytes(&mut self, bytes: &[u8]) {
        let len = u32::try_from(bytes.len()).expect("length-prefixed field over 4 GiB"); // lint:allow(panic-reach) — every caller encodes fields capped far below u32::MAX (MAX_PAYLOAD is 2^30); documented in # Panics
        self.put_u32(len);
        self.put_bytes(bytes);
    }

    /// The accumulated buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// A view of the accumulated buffer.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Bounds-checked little-endian reads over a byte slice.
///
/// Every `take_*` advances an internal cursor and returns
/// [`CodecError::UnexpectedEof`] instead of panicking when the input is
/// truncated — corrupted files must surface as typed errors.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `bytes`, cursor at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Current cursor offset from the start of the input.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether the cursor has consumed the entire input.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                offset: self.pos,
                wanted: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] at end of input.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Takes a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if fewer than 2 bytes remain.
    pub fn take_u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take_bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Takes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if fewer than 4 bytes remain.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take_bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Takes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take_bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Takes an `f64` stored as its raw little-endian bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if fewer than 8 bytes remain.
    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Takes a `u32`-length-prefixed byte field written by
    /// [`ByteWriter::put_len_bytes`], enforcing a caller-supplied cap on
    /// the declared length *before* any bytes are consumed or allocated.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::OverlongField`] when the prefix declares more
    /// than `max` bytes (the cursor is left on the prefix), or
    /// [`CodecError::UnexpectedEof`] when the prefix or the declared bytes
    /// run past the end of input.
    pub fn take_len_bytes(&mut self, max: usize) -> Result<&'a [u8], CodecError> {
        let offset = self.pos;
        let declared = self.take_u32()? as usize;
        if declared > max {
            self.pos = offset; // leave the reader where the bad field began
            return Err(CodecError::OverlongField {
                offset,
                declared,
                max,
            });
        }
        self.take_bytes(declared)
    }
}

/// The standard CRC-32 lookup table (reflected polynomial `0xEDB88320`),
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3: reflected polynomial `0xEDB88320`, initial value
/// `0xFFFFFFFF`, final XOR `0xFFFFFFFF`) of `bytes`.
///
/// This is the same CRC-32 used by zlib/PNG/Ethernet, so an independent
/// reimplementation of the snapshot format can validate against any
/// standard library: `crc32(b"123456789") == 0xCBF43926`.
///
/// # Examples
///
/// ```
/// use aerorem_numerics::codec::crc32;
///
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// assert_eq!(crc32(b""), 0);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        // Sensitive to single-bit flips.
        assert_ne!(crc32(b"123456788"), crc32(b"123456789"));
    }

    #[test]
    fn writer_reader_round_trip_all_field_types() {
        let mut w = ByteWriter::with_capacity(64);
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f64(-73.25);
        w.put_bytes(b"tail");
        assert_eq!(w.len(), 1 + 2 + 4 + 8 + 8 + 4);
        assert!(!w.is_empty());

        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 0xAB);
        assert_eq!(r.take_u16().unwrap(), 0x1234);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.take_f64().unwrap(), -73.25);
        assert_eq!(r.take_bytes(4).unwrap(), b"tail");
        assert!(r.is_empty());
        assert_eq!(r.position(), bytes.len());
    }

    #[test]
    fn fields_are_little_endian_on_disk() {
        let mut w = ByteWriter::new();
        w.put_u32(0x0102_0304);
        assert_eq!(w.as_slice(), &[0x04, 0x03, 0x02, 0x01]);
        let mut w = ByteWriter::new();
        w.put_u16(0x1234);
        assert_eq!(w.as_slice(), &[0x34, 0x12]);
    }

    #[test]
    fn f64_round_trip_is_bit_identical_including_nan_payloads() {
        let weird = f64::from_bits(0x7FF8_DEAD_BEEF_0001); // NaN with payload
        for v in [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, weird, 1e-308] {
            let mut w = ByteWriter::new();
            w.put_f64(v);
            let bytes = w.into_bytes();
            let got = ByteReader::new(&bytes).take_f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn len_prefixed_fields_round_trip_and_enforce_the_cap() {
        let mut w = ByteWriter::new();
        w.put_len_bytes(b"hello");
        w.put_len_bytes(b"");
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 4 + 5 + 4);

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_len_bytes(16).unwrap(), b"hello");
        assert_eq!(r.take_len_bytes(16).unwrap(), b"");
        assert!(r.is_empty());

        // Cap violations fail before any allocation and leave the cursor
        // on the offending prefix.
        let mut r = ByteReader::new(&bytes);
        let err = r.take_len_bytes(4).unwrap_err();
        assert_eq!(
            err,
            CodecError::OverlongField {
                offset: 0,
                declared: 5,
                max: 4
            }
        );
        assert!(err.to_string().contains("cap is 4"));
        assert_eq!(r.position(), 0);

        // A hostile prefix declaring gigabytes is rejected by the cap, not
        // by attempting the read.
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let huge = w.into_bytes();
        let err = ByteReader::new(&huge).take_len_bytes(1024).unwrap_err();
        assert!(matches!(err, CodecError::OverlongField { declared, .. }
            if declared == u32::MAX as usize));

        // Within the cap but past end-of-input is a plain EOF.
        let mut w = ByteWriter::new();
        w.put_u32(12);
        w.put_bytes(b"short");
        let cut = w.into_bytes();
        let err = ByteReader::new(&cut).take_len_bytes(64).unwrap_err();
        assert!(matches!(err, CodecError::UnexpectedEof { wanted: 12, .. }));
    }

    #[test]
    fn truncated_reads_are_typed_errors_not_panics() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u16().unwrap(), 0x0201);
        let err = r.take_u32().unwrap_err();
        assert_eq!(
            err,
            CodecError::UnexpectedEof {
                offset: 2,
                wanted: 4,
                remaining: 1
            }
        );
        assert!(err.to_string().contains("needs 4 bytes"));
        // The failed read did not advance the cursor.
        assert_eq!(r.position(), 2);
        assert_eq!(r.take_u8().unwrap(), 3);
        assert!(r.take_u8().is_err());
    }
}
