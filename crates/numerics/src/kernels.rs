//! Shared low-level floating-point kernels for the inference hot path.
//!
//! Every distance or matrix-product computation that must agree **bit-for-bit**
//! between the per-item and batched prediction paths lives here, so there is a
//! single accumulation order in the whole workspace. The rule that makes this
//! work: `f64` addition is not associative, so two code paths only produce
//! identical bits if they add the same terms in the same order. Both the
//! per-item estimators (`predict_one`) and the batched ones (`predict_batch`)
//! call these kernels, which makes the bit-identity contract of
//! `aerorem-ml`'s `Regressor::predict_batch` hold by construction.

/// Squared Euclidean distance between two equal-length slices.
///
/// The loop is unrolled four-wide with independent accumulators (combined as
/// `(s0 + s1) + (s2 + s3) + tail`), which lets the compiler keep four FMA
/// chains in flight instead of serializing on a single accumulator. The
/// accumulation order is fixed and deterministic, so every caller sees the
/// same bits for the same inputs.
///
/// # Panics
///
/// Panics in debug builds if the slices differ in length; in release builds a
/// longer `b` is silently truncated to `a`'s length.
#[must_use]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let chunks_a = a.chunks_exact(4);
    let chunks_b = b.chunks_exact(4);
    let tail: f64 = chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum();
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for (ca, cb) in chunks_a.zip(chunks_b) {
        let d0 = ca[0] - cb[0];
        let d1 = ca[1] - cb[1];
        let d2 = ca[2] - cb[2];
        let d3 = ca[3] - cb[3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Cache-blocked matrix multiply on flat row-major slices: `out = a · b`.
///
/// `a` is `m × k`, `b` is `k × n`, `out` is `m × n`; all row-major. The loop
/// order is i-k-j with the `k` dimension tiled, so each `b` panel is reused
/// across all rows of `a` while it is hot in cache and the innermost loop
/// streams contiguously over a `b` row and an `out` row.
///
/// Each `out[i][j]` is accumulated from `0.0` in strictly ascending `k` —
/// exactly the order of the textbook dot product
/// `a_row.iter().zip(b_col).map(|(x, y)| x * y).sum()` — so results are
/// bit-identical to a naive row-times-column product. This is what lets the
/// MLP's batched forward pass (`aerorem-ml`) match its per-sample forward
/// pass exactly.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m × k`, `k × n`, and `m × n`.
pub fn matmul_ikj_into(a: &[f64], m: usize, k_dim: usize, b: &[f64], n: usize, out: &mut [f64]) {
    assert_eq!(a.len(), m * k_dim, "lhs length must be m * k");
    assert_eq!(b.len(), k_dim * n, "rhs length must be k * n");
    assert_eq!(out.len(), m * n, "out length must be m * n");
    // Tile size chosen so a KB×n panel of `b` (n up to a few hundred) stays
    // resident in L1/L2 while every row of `a` streams over it.
    const KB: usize = 64;
    out.fill(0.0);
    let mut k0 = 0;
    while k0 < k_dim {
        let k1 = (k0 + KB).min(k_dim);
        for (a_row, out_row) in a.chunks_exact(k_dim).zip(out.chunks_exact_mut(n)) {
            for (kk, &aik) in a_row[k0..k1].iter().enumerate() {
                let b_row = &b[(k0 + kk) * n..(k0 + kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
        k0 = k1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sq(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    #[test]
    fn sq_euclidean_matches_naive_within_tolerance() {
        for len in 0..20 {
            let a: Vec<f64> = (0..len).map(|i| (i as f64).sin() * 3.0).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64).cos() - 0.5).collect();
            let got = sq_euclidean(&a, &b);
            let want = naive_sq(&a, &b);
            assert!((got - want).abs() < 1e-12 * (1.0 + want), "len {len}");
        }
    }

    #[test]
    fn sq_euclidean_exact_for_small_integers() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_euclidean(&[], &[]), 0.0);
        assert_eq!(sq_euclidean(&[1.0; 8], &[1.0; 8]), 0.0);
    }

    #[test]
    fn sq_euclidean_is_deterministic() {
        let a: Vec<f64> = (0..13).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let b: Vec<f64> = (0..13).map(|i| (i as f64).sqrt()).collect();
        assert_eq!(sq_euclidean(&a, &b), sq_euclidean(&a, &b));
    }

    #[test]
    fn matmul_ikj_matches_dot_product_bits() {
        // Sizes straddling the k-tile boundary.
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 5, 4), (7, 64, 3), (2, 65, 130)] {
            let a: Vec<f64> = (0..m * k).map(|i| 0.5 + (i as f64).sin()).collect();
            let b: Vec<f64> = (0..k * n).map(|i| 0.5 + (i as f64).cos()).collect();
            let mut out = vec![0.0; m * n];
            matmul_ikj_into(&a, m, k, &b, n, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let want: f64 = (0..k).map(|kk| a[i * k + kk] * b[kk * n + j]).sum();
                    assert_eq!(out[i * n + j], want, "({i},{j}) of {m}x{k}x{n}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "lhs length")]
    fn matmul_ikj_rejects_bad_lengths() {
        let mut out = vec![0.0; 4];
        matmul_ikj_into(&[1.0; 3], 2, 2, &[1.0; 4], 2, &mut out);
    }
}
