//! Shared low-level floating-point kernels for the inference hot path.
//!
//! Every distance or matrix-product computation that must agree **bit-for-bit**
//! between the per-item and batched prediction paths lives here, so there is a
//! single accumulation order in the whole workspace. The rule that makes this
//! work: `f64` addition is not associative, so two code paths only produce
//! identical bits if they add the same terms in the same order. Both the
//! per-item estimators (`predict_one`) and the batched ones (`predict_batch`)
//! call these kernels, which makes the bit-identity contract of
//! `aerorem-ml`'s `Regressor::predict_batch` hold by construction.

/// Number of independent accumulator lanes in the unrolled distance kernels.
///
/// Eight f64 lanes fill two AVX2 registers (or one AVX-512 register) and,
/// more importantly on any hardware, give the out-of-order core eight
/// independent add chains instead of one loop-carried dependency.
const LANES: usize = 8;

/// The fixed lane-combination tree shared by every kernel in this module:
/// `((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)) + tail`.
///
/// Because every accumulator starts at `+0.0` and every term is
/// non-negative (`d*d` or `|d|`), adding an all-zero lane group is
/// bit-preserving — so for inputs shorter than [`LANES`] the result is
/// bit-identical to the plain sequential tail sum. That property is what
/// lets dimension-specific fast paths and zero-padded queries coexist with
/// the generic path without splitting the bit-identity contract.
#[inline(always)]
fn combine(s: [f64; LANES], tail: f64) -> f64 {
    ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7])) + tail
}

/// Squared Euclidean distance between two equal-length slices.
///
/// The loop is unrolled eight-wide with independent accumulators combined
/// by the fixed tree in [`combine`], which lets the compiler keep eight
/// add chains in flight instead of serializing on a single accumulator.
/// The accumulation order is a pure function of the input length, so every
/// caller sees the same bits for the same inputs — and for `len < 8`
/// (including the ubiquitous 3-D position case) the result is bit-identical
/// to the plain sequential sum, since the unrolled body never runs and the
/// zero lanes vanish bit-exactly under [`combine`].
///
/// # Panics
///
/// Panics in debug builds if the slices differ in length; in release builds a
/// longer `b` is silently truncated to `a`'s length.
#[must_use]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let chunks_a = a.chunks_exact(LANES);
    let chunks_b = b.chunks_exact(LANES);
    let tail: f64 = chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum();
    let mut s = [0.0f64; LANES];
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for l in 0..LANES {
            let d = ca[l] - cb[l];
            s[l] += d * d;
        }
    }
    combine(s, tail)
}

/// Taxicab (L1 / Manhattan) distance between two equal-length slices.
///
/// Same eight-lane unroll and [`combine`] tree as [`sq_euclidean`], with
/// `|x - y|` terms; the same zero-lane argument makes `len < 8` inputs
/// bit-identical to the sequential `|x - y|` sum, so the kNN `p = 1` fast
/// path can adopt this kernel without changing results in 3-D.
///
/// # Panics
///
/// Panics in debug builds if the slices differ in length; in release builds a
/// longer `b` is silently truncated to `a`'s length.
#[must_use]
pub fn taxicab(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let chunks_a = a.chunks_exact(LANES);
    let chunks_b = b.chunks_exact(LANES);
    let tail: f64 = chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .map(|(x, y)| (x - y).abs())
        .sum();
    let mut s = [0.0f64; LANES];
    for (ca, cb) in chunks_a.zip(chunks_b) {
        for l in 0..LANES {
            s[l] += (ca[l] - cb[l]).abs();
        }
    }
    combine(s, tail)
}

/// Points per block in [`sq_euclidean_cols_into`]: big enough that the
/// per-block bookkeeping amortizes, small enough that the block's
/// accumulators (`(LANES + 1) × BLOCK` f64s ≈ 9 KB) live on the stack and
/// in L1.
const COL_BLOCK: usize = 128;

/// Squared Euclidean distances from `query` to a contiguous range of points
/// stored **dimension-major** (SoA): `cols[d * n_points + j]` is coordinate
/// `d` of point `j`. Writes the distance for points `lo..hi` into `out`
/// (so `out.len() == hi - lo`).
///
/// This is the streaming form of [`sq_euclidean`] for the KD-tree's leaf
/// scans: the inner loops run over the *point* index, which is contiguous
/// in each column, so the kernel reads memory strictly forward and
/// vectorizes over points instead of dimensions. Per point it accumulates
/// exactly the scalar kernel's terms in exactly the scalar kernel's order
/// (eight-lane groups into per-lane accumulators, remainder dimensions
/// sequentially, combined by the same [`combine`] tree), so
/// `out[j - lo]` is bit-identical to `sq_euclidean(point_j, query)`.
///
/// # Panics
///
/// Panics if `cols.len()` is not `query.len() * n_points`, if
/// `lo > hi || hi > n_points`, or if `out.len() != hi - lo`.
pub fn sq_euclidean_cols_into(
    cols: &[f64],
    n_points: usize,
    query: &[f64],
    lo: usize,
    hi: usize,
    out: &mut [f64],
) {
    let dim = query.len();
    assert_eq!(cols.len(), dim * n_points, "SoA buffer must be dim * n_points");
    assert!(lo <= hi && hi <= n_points, "point range out of bounds");
    assert_eq!(out.len(), hi - lo, "out length must match the point range");
    let full = dim - dim % LANES;
    let mut base = lo;
    for out_block in out.chunks_mut(COL_BLOCK) {
        let bn = out_block.len();
        let mut lanes = [[0.0f64; COL_BLOCK]; LANES];
        for d0 in (0..full).step_by(LANES) {
            for l in 0..LANES {
                let q = query[d0 + l];
                let col = &cols[(d0 + l) * n_points + base..(d0 + l) * n_points + base + bn];
                let acc = &mut lanes[l];
                for (jj, &c) in col.iter().enumerate() {
                    let d = c - q;
                    acc[jj] += d * d;
                }
            }
        }
        let mut tail = [0.0f64; COL_BLOCK];
        for d in full..dim {
            let q = query[d];
            let col = &cols[d * n_points + base..d * n_points + base + bn];
            for (jj, &c) in col.iter().enumerate() {
                let d = c - q;
                tail[jj] += d * d;
            }
        }
        for (jj, o) in out_block.iter_mut().enumerate() {
            let s: [f64; LANES] = std::array::from_fn(|l| lanes[l][jj]);
            *o = combine(s, tail[jj]);
        }
        base += bn;
    }
}

/// Cache-blocked matrix multiply on flat row-major slices: `out = a · b`.
///
/// `a` is `m × k`, `b` is `k × n`, `out` is `m × n`; all row-major. The loop
/// order is i-k-j with the `k` dimension tiled, so each `b` panel is reused
/// across all rows of `a` while it is hot in cache and the innermost loop
/// streams contiguously over a `b` row and an `out` row.
///
/// Each `out[i][j]` is accumulated from `0.0` in strictly ascending `k` —
/// exactly the order of the textbook dot product
/// `a_row.iter().zip(b_col).map(|(x, y)| x * y).sum()` — so results are
/// bit-identical to a naive row-times-column product. This is what lets the
/// MLP's batched forward pass (`aerorem-ml`) match its per-sample forward
/// pass exactly.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m × k`, `k × n`, and `m × n`.
pub fn matmul_ikj_into(a: &[f64], m: usize, k_dim: usize, b: &[f64], n: usize, out: &mut [f64]) {
    assert_eq!(a.len(), m * k_dim, "lhs length must be m * k");
    assert_eq!(b.len(), k_dim * n, "rhs length must be k * n");
    assert_eq!(out.len(), m * n, "out length must be m * n");
    // Tile size chosen so a KB×n panel of `b` (n up to a few hundred) stays
    // resident in L1/L2 while every row of `a` streams over it.
    const KB: usize = 64;
    out.fill(0.0);
    let mut k0 = 0;
    while k0 < k_dim {
        let k1 = (k0 + KB).min(k_dim);
        for (a_row, out_row) in a.chunks_exact(k_dim).zip(out.chunks_exact_mut(n)) {
            for (kk, &aik) in a_row[k0..k1].iter().enumerate() {
                let b_row = &b[(k0 + kk) * n..(k0 + kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
        k0 = k1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sq(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    #[test]
    fn sq_euclidean_matches_naive_within_tolerance() {
        for len in 0..20 {
            let a: Vec<f64> = (0..len).map(|i| (i as f64).sin() * 3.0).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64).cos() - 0.5).collect();
            let got = sq_euclidean(&a, &b);
            let want = naive_sq(&a, &b);
            assert!((got - want).abs() < 1e-12 * (1.0 + want), "len {len}");
        }
    }

    #[test]
    fn sq_euclidean_exact_for_small_integers() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_euclidean(&[], &[]), 0.0);
        assert_eq!(sq_euclidean(&[1.0; 8], &[1.0; 8]), 0.0);
    }

    #[test]
    fn short_inputs_match_the_sequential_sum_bits() {
        // For len < 8 the unrolled body never runs; the zero lanes must
        // vanish bit-exactly so fast paths and zero-padding stay coherent.
        for len in 0..8 {
            let a: Vec<f64> = (0..len).map(|i| (i as f64).sin() * 7.3 + 0.1).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64).cos() * 2.9 - 1.4).collect();
            assert_eq!(sq_euclidean(&a, &b), naive_sq(&a, &b), "sq len {len}");
            let naive_l1: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
            assert_eq!(taxicab(&a, &b), naive_l1, "l1 len {len}");
        }
    }

    #[test]
    fn zero_padding_is_bit_transparent() {
        // Padding both operands with zero dimensions up to a lane multiple
        // must not change a single bit (the kNN brute backend relies on it).
        let a = [1.25, -3.5, 0.75];
        let b = [0.5, 2.0, -1.0];
        let mut ap = a.to_vec();
        let mut bp = b.to_vec();
        ap.resize(8, 0.0);
        bp.resize(8, 0.0);
        assert_eq!(sq_euclidean(&a, &b), sq_euclidean(&ap, &bp));
        assert_eq!(taxicab(&a, &b), taxicab(&ap, &bp));
    }

    #[test]
    fn taxicab_exact_for_small_integers() {
        assert_eq!(taxicab(&[0.0, 0.0], &[3.0, -4.0]), 7.0);
        assert_eq!(taxicab(&[], &[]), 0.0);
        let a: Vec<f64> = (0..19).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..19).map(|i| (i as f64) - 2.0).collect();
        assert_eq!(taxicab(&a, &b), 38.0);
    }

    #[test]
    fn cols_kernel_matches_scalar_kernel_bits() {
        // Dimension-major scan must reproduce the row kernel bit-for-bit,
        // across lane boundaries, block boundaries, and sub-ranges.
        for &(dim, n) in &[(1usize, 7usize), (3, 300), (5, 129), (8, 64), (11, 257)] {
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|j| (0..dim).map(|d| ((j * dim + d) as f64).sin() * 9.0).collect())
                .collect();
            let mut cols = vec![0.0; dim * n];
            for (j, row) in rows.iter().enumerate() {
                for (d, &v) in row.iter().enumerate() {
                    cols[d * n + j] = v;
                }
            }
            let query: Vec<f64> = (0..dim).map(|d| (d as f64).cos() * 4.0).collect();
            for &(lo, hi) in &[(0usize, n), (0, 1.min(n)), (n / 3, n - n / 4)] {
                let mut out = vec![0.0; hi - lo];
                sq_euclidean_cols_into(&cols, n, &query, lo, hi, &mut out);
                for (jj, &got) in out.iter().enumerate() {
                    let want = sq_euclidean(&query, &rows[lo + jj]);
                    assert_eq!(got, want, "dim {dim} n {n} point {}", lo + jj);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out length")]
    fn cols_kernel_rejects_bad_out_length() {
        let mut out = vec![0.0; 3];
        sq_euclidean_cols_into(&[0.0; 8], 4, &[0.0, 0.0], 0, 4, &mut out);
    }

    #[test]
    fn sq_euclidean_is_deterministic() {
        let a: Vec<f64> = (0..13).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let b: Vec<f64> = (0..13).map(|i| (i as f64).sqrt()).collect();
        assert_eq!(sq_euclidean(&a, &b), sq_euclidean(&a, &b));
    }

    #[test]
    fn matmul_ikj_matches_dot_product_bits() {
        // Sizes straddling the k-tile boundary.
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 5, 4), (7, 64, 3), (2, 65, 130)] {
            let a: Vec<f64> = (0..m * k).map(|i| 0.5 + (i as f64).sin()).collect();
            let b: Vec<f64> = (0..k * n).map(|i| 0.5 + (i as f64).cos()).collect();
            let mut out = vec![0.0; m * n];
            matmul_ikj_into(&a, m, k, &b, n, &mut out);
            for i in 0..m {
                for j in 0..n {
                    let want: f64 = (0..k).map(|kk| a[i * k + kk] * b[kk * n + j]).sum();
                    assert_eq!(out[i * n + j], want, "({i},{j}) of {m}x{k}x{n}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "lhs length")]
    fn matmul_ikj_rejects_bad_lengths() {
        let mut out = vec![0.0; 4];
        matmul_ikj_into(&[1.0; 3], 2, 2, &[1.0; 4], 2, &mut out);
    }
}
