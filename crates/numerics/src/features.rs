//! Contiguous row-major feature storage for batched inference.
//!
//! [`FeatureMatrix`] is the interchange type for the batched prediction path:
//! a fixed row width (`dim`) plus one flat `Vec<f64>`, so consumers get
//! zero-copy `&[f64]` row views, cache-friendly sequential scans, and a single
//! allocation per batch instead of one per row. It deliberately carries no
//! linear-algebra operations — it is a data layout, not a matrix algebra type
//! (that is [`crate::Matrix`]'s job).

use crate::matrix::NumericsError;

/// A dense row-major batch of feature rows with a fixed width.
///
/// # Examples
///
/// ```
/// use aerorem_numerics::FeatureMatrix;
///
/// let mut m = FeatureMatrix::new(3);
/// m.push_row(&[1.0, 2.0, 3.0]);
/// m.push_row(&[4.0, 5.0, 6.0]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
/// assert_eq!(m.iter().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    dim: usize,
    data: Vec<f64>,
}

impl FeatureMatrix {
    /// Creates an empty matrix whose rows will have `dim` columns.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be non-zero");
        FeatureMatrix { dim, data: Vec::new() }
    }

    /// Creates an empty matrix with storage preallocated for `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn with_capacity(dim: usize, rows: usize) -> Self {
        assert!(dim > 0, "feature dimension must be non-zero");
        FeatureMatrix {
            dim,
            data: Vec::with_capacity(dim * rows),
        }
    }

    /// Builds a matrix by copying a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::MalformedInput`] if `rows` is empty, the first
    /// row is empty, or any row differs in length from the first.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, NumericsError> {
        let dim = rows.first().map_or(0, Vec::len);
        if dim == 0 {
            return Err(NumericsError::MalformedInput {
                reason: "feature matrix needs at least one non-empty row",
            });
        }
        let mut m = FeatureMatrix::with_capacity(dim, rows.len());
        for row in rows {
            if row.len() != dim {
                return Err(NumericsError::MalformedInput {
                    reason: "feature rows must all have the same length",
                });
            }
            m.data.extend_from_slice(row);
        }
        Ok(m)
    }

    /// Builds a matrix directly from flat row-major storage.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::MalformedInput`] if `dim == 0` or `data`'s
    /// length is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Result<Self, NumericsError> {
        if dim == 0 {
            return Err(NumericsError::MalformedInput {
                reason: "feature dimension must be non-zero",
            });
        }
        if !data.len().is_multiple_of(dim) {
            return Err(NumericsError::MalformedInput {
                reason: "flat feature data length must be a multiple of dim",
            });
        }
        Ok(FeatureMatrix { dim, data })
    }

    /// Appends one row, copying from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "row length must equal feature dim");
        self.data.extend_from_slice(row);
    }

    /// Appends one row produced in place by `fill`, avoiding a temporary
    /// per-row allocation: the closure appends exactly [`Self::dim`] values
    /// directly to the backing storage.
    ///
    /// If `fill` returns an error, any partially appended values are rolled
    /// back and the matrix is left unchanged.
    ///
    /// # Errors
    ///
    /// Propagates whatever error `fill` returns.
    ///
    /// # Panics
    ///
    /// Panics if `fill` succeeds but appended a number of values other than
    /// [`Self::dim`], or removed existing values.
    pub fn push_row_with<E>(
        &mut self,
        fill: impl FnOnce(&mut Vec<f64>) -> Result<(), E>,
    ) -> Result<(), E> {
        let before = self.data.len();
        match fill(&mut self.data) {
            Ok(()) => {
                assert_eq!(
                    self.data.len(),
                    before + self.dim,
                    "row filler must append exactly dim values"
                );
                Ok(())
            }
            Err(e) => {
                self.data.truncate(before);
                Err(e)
            }
        }
    }

    /// Removes every row, keeping the allocation and the column width —
    /// lets fold/split loops reuse one gather buffer instead of allocating
    /// a matrix per fold.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Number of columns in every row.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows currently stored.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Returns `true` if no rows have been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Zero-copy view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over zero-copy row views in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// The flat row-major backing storage.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl<'a> IntoIterator for &'a FeatureMatrix {
    type Item = &'a [f64];
    type IntoIter = std::slice::ChunksExact<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.chunks_exact(self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_view_rows() {
        let mut m = FeatureMatrix::new(2);
        assert!(m.is_empty());
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        let collected: Vec<&[f64]> = m.iter().collect();
        assert_eq!(collected, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn clear_keeps_dim_and_capacity() {
        let mut m = FeatureMatrix::with_capacity(2, 8);
        m.push_row(&[1.0, 2.0]);
        m.push_row(&[3.0, 4.0]);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.dim(), 2);
        m.push_row(&[5.0, 6.0]);
        assert_eq!(m.row(0), &[5.0, 6.0]);
    }

    #[test]
    fn from_rows_validates() {
        assert!(FeatureMatrix::from_rows(&[]).is_err());
        assert!(FeatureMatrix::from_rows(&[vec![]]).is_err());
        assert!(FeatureMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let m = FeatureMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
    }

    #[test]
    fn from_flat_validates() {
        assert!(FeatureMatrix::from_flat(0, vec![]).is_err());
        assert!(FeatureMatrix::from_flat(3, vec![1.0, 2.0]).is_err());
        let m = FeatureMatrix::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn push_row_rejects_wrong_width() {
        let mut m = FeatureMatrix::new(3);
        m.push_row(&[1.0]);
    }

    #[test]
    fn push_row_with_rolls_back_on_error() {
        let mut m = FeatureMatrix::new(2);
        m.push_row(&[1.0, 2.0]);
        let r: Result<(), &str> = m.push_row_with(|buf| {
            buf.push(9.0);
            Err("boom")
        });
        assert!(r.is_err());
        assert_eq!(m.rows(), 1);
        assert_eq!(m.as_slice(), &[1.0, 2.0]);
        m.push_row_with(|buf| {
            buf.extend([3.0, 4.0]);
            Ok::<(), &str>(())
        })
        .unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "exactly dim values")]
    fn push_row_with_rejects_short_rows() {
        let mut m = FeatureMatrix::new(2);
        let _ = m.push_row_with(|buf| {
            buf.push(1.0);
            Ok::<(), std::convert::Infallible>(())
        });
    }
}
