//! Seeded random distributions built on [`rand::Rng`].
//!
//! The workspace pins `rand` without `rand_distr`, so the handful of
//! continuous distributions the radio and localization simulators need are
//! implemented here: standard normal (Box–Muller), general normal,
//! log-normal, Rayleigh, and Rician — the classic fading models.
//!
//! All samplers are plain functions taking `&mut impl Rng`, so they compose
//! with any seeded generator (the toolchain uses [`rand::rngs::StdRng`]).

use rand::Rng;

/// Draws one standard normal (`N(0, 1)`) sample via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let z = aerorem_numerics::dist::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to keep ln(u1) finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draws one `N(mean, std_dev²)` sample.
///
/// # Panics
///
/// Panics if `std_dev` is negative or not finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(
        std_dev >= 0.0 && std_dev.is_finite(),
        "std_dev must be non-negative and finite"
    );
    mean + std_dev * standard_normal(rng)
}

/// Draws one log-normal sample: `exp(N(mu, sigma²))`.
///
/// # Panics
///
/// Panics if `sigma` is negative or not finite.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Draws one Rayleigh sample with scale `sigma`.
///
/// Rayleigh fading models the envelope of a non-line-of-sight multipath
/// channel; its amplitude is `sigma * sqrt(-2 ln U)`.
///
/// # Panics
///
/// Panics if `sigma` is not positive and finite.
pub fn rayleigh<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    assert!(
        sigma > 0.0 && sigma.is_finite(),
        "sigma must be positive and finite"
    );
    let u: f64 = 1.0 - rng.gen::<f64>();
    sigma * (-2.0 * u.ln()).sqrt()
}

/// Draws one Rician sample with line-of-sight amplitude `nu` and scatter
/// scale `sigma`.
///
/// Rician fading models a channel with a dominant line-of-sight component
/// plus scattered multipath; for `nu = 0` it reduces to Rayleigh.
///
/// # Panics
///
/// Panics if `sigma` is not positive or `nu` is negative.
pub fn rician<R: Rng + ?Sized>(rng: &mut R, nu: f64, sigma: f64) -> f64 {
    assert!(
        sigma > 0.0 && sigma.is_finite(),
        "sigma must be positive and finite"
    );
    assert!(nu >= 0.0 && nu.is_finite(), "nu must be non-negative");
    let x = normal(rng, nu, sigma);
    let y = normal(rng, 0.0, sigma);
    (x * x + y * y).sqrt()
}

/// Draws a uniform sample in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi` or either bound is not finite.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo < hi && lo.is_finite() && hi.is_finite(), "need lo < hi");
    lo + (hi - lo) * rng.gen::<f64>()
}

/// Returns `true` with probability `p` (clamped to `[0, 1]`).
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p.clamp(0.0, 1.0)
}

/// Draws one sample from a Poisson distribution with rate `lambda`, using
/// Knuth's multiplication method (adequate for the small rates used by the
/// beacon-arrival model).
///
/// # Panics
///
/// Panics if `lambda` is negative or not finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "lambda must be non-negative and finite"
    );
    if lambda == 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
        // Defensive cap: lambda values in this workspace are < 100.
        if k > 10_000 {
            return k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xAE20_2206)
    }

    fn sample_stats(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| standard_normal(&mut r)).collect();
        let (mean, var) = sample_stats(&xs);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_is_affine_transform() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| normal(&mut r, -73.0, 4.0)).collect();
        let (mean, var) = sample_stats(&xs);
        assert!((mean + 73.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 4.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut r = rng();
        assert_eq!(normal(&mut r, 5.0, 0.0), 5.0);
    }

    #[test]
    fn rayleigh_mean_matches_theory() {
        let mut r = rng();
        let sigma = 2.0;
        let xs: Vec<f64> = (0..50_000).map(|_| rayleigh(&mut r, sigma)).collect();
        let (mean, _) = sample_stats(&xs);
        let theory = sigma * (std::f64::consts::PI / 2.0).sqrt();
        assert!((mean - theory).abs() < 0.05, "mean {mean} vs {theory}");
    }

    #[test]
    fn rician_reduces_to_rayleigh_at_zero_nu() {
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| rician(&mut r, 0.0, 1.0)).collect();
        let (mean, _) = sample_stats(&xs);
        let theory = (std::f64::consts::PI / 2.0).sqrt();
        assert!((mean - theory).abs() < 0.05);
    }

    #[test]
    fn rician_dominant_los_concentrates_near_nu() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| rician(&mut r, 50.0, 1.0)).collect();
        let (mean, _) = sample_stats(&xs);
        assert!((mean - 50.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn log_normal_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(log_normal(&mut r, 0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn uniform_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = uniform(&mut r, -3.0, 7.0);
            assert!((-3.0..7.0).contains(&x));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        assert!(!bernoulli(&mut r, 0.0));
        assert!(bernoulli(&mut r, 1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(bernoulli(&mut r, 2.0));
        assert!(!bernoulli(&mut r, -1.0));
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = rng();
        let hits = (0..50_000).filter(|_| bernoulli(&mut r, 0.3)).count();
        let rate = hits as f64 / 50_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn poisson_mean() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| poisson(&mut r, 4.5) as f64).collect();
        let (mean, var) = sample_stats(&xs);
        assert!((mean - 4.5).abs() < 0.1, "mean {mean}");
        assert!((var - 4.5).abs() < 0.3, "var {var}");
    }

    #[test]
    fn poisson_zero_rate() {
        let mut r = rng();
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn determinism_with_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
