//! Access points, MAC addresses, and SSIDs.
//!
//! §III-B: "Since SSIDs can be shared between devices, they were generally
//! not used. Instead, RSS readings were grouped based on their MAC
//! addresses." The type split here mirrors that: [`MacAddress`] is the
//! identity key, [`Ssid`] is display metadata that several radios may share
//! (the paper saw 73 MACs but only 49 SSIDs).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use aerorem_spatial::Vec3;

use crate::channel::WifiChannel;

/// A 48-bit IEEE 802 MAC address.
///
/// # Examples
///
/// ```
/// use aerorem_propagation::MacAddress;
///
/// let mac: MacAddress = "aa:bb:cc:00:11:22".parse().unwrap();
/// assert_eq!(mac.to_string(), "aa:bb:cc:00:11:22");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MacAddress(pub [u8; 6]);

impl MacAddress {
    /// Builds a locally administered unicast MAC from a 32-bit index —
    /// handy for deterministically generating synthetic AP fleets.
    pub fn from_index(index: u32) -> Self {
        let b = index.to_be_bytes();
        // 0x02 prefix: locally administered, unicast.
        MacAddress([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// The raw bytes.
    pub fn octets(self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

/// Error parsing a MAC address from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError {
    input: String,
}

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddress {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseMacError {
            input: s.to_string(),
        };
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for o in &mut octets {
            let part = parts.next().ok_or_else(err)?;
            if part.len() != 2 {
                return Err(err());
            }
            *o = u8::from_str_radix(part, 16).map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(MacAddress(octets))
    }
}

/// A service set identifier — human-readable network name, possibly shared
/// by several physical radios (mesh nodes, dual-band APs).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ssid(String);

impl Ssid {
    /// Maximum SSID length in bytes per IEEE 802.11.
    pub const MAX_LEN: usize = 32;

    /// Creates an SSID, truncating to the 32-byte 802.11 limit on a char
    /// boundary.
    pub fn new(name: impl Into<String>) -> Self {
        let mut name = name.into();
        if name.len() > Self::MAX_LEN {
            let mut cut = Self::MAX_LEN;
            while !name.is_char_boundary(cut) {
                cut -= 1;
            }
            name.truncate(cut);
        }
        Ssid(name)
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Ssid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Ssid {
    fn from(s: &str) -> Self {
        Ssid::new(s)
    }
}

/// One Wi-Fi access point in the synthetic building.
///
/// Position is in the scan-volume frame (meters); APs generally sit outside
/// the scan volume, elsewhere in the building.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessPoint {
    /// Unique hardware address — the grouping key for the ML layer.
    pub mac: MacAddress,
    /// Advertised network name (not unique across APs).
    pub ssid: Ssid,
    /// The 2.4 GHz channel the AP beacons on.
    pub channel: WifiChannel,
    /// Transmit power in dBm (EIRP), typically 14–20 dBm indoors.
    pub tx_power_dbm: f64,
    /// Position in the scan-volume coordinate frame, meters.
    pub position: Vec3,
    /// Beacon interval in milliseconds (802.11 default ≈ 102.4 ms).
    pub beacon_interval_ms: f64,
}

impl AccessPoint {
    /// The 802.11 default beacon interval (100 TU = 102.4 ms).
    pub const DEFAULT_BEACON_INTERVAL_MS: f64 = 102.4;

    /// Creates an AP with the default beacon interval.
    pub fn new(
        mac: MacAddress,
        ssid: Ssid,
        channel: WifiChannel,
        tx_power_dbm: f64,
        position: Vec3,
    ) -> Self {
        AccessPoint {
            mac,
            ssid,
            channel,
            tx_power_dbm,
            position,
            beacon_interval_ms: Self::DEFAULT_BEACON_INTERVAL_MS,
        }
    }
}

impl fmt::Display for AccessPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} \"{}\" {} @ {}",
            self.mac, self.ssid, self.channel, self.position
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_round_trip() {
        let mac = MacAddress([0xde, 0xad, 0xbe, 0xef, 0x00, 0x42]);
        let s = mac.to_string();
        assert_eq!(s, "de:ad:be:ef:00:42");
        assert_eq!(s.parse::<MacAddress>().unwrap(), mac);
    }

    #[test]
    fn mac_parse_rejects_garbage() {
        for bad in ["", "de:ad:be:ef:00", "de:ad:be:ef:00:42:11", "zz:ad:be:ef:00:42", "dead:be:ef:00:42:11"] {
            assert!(bad.parse::<MacAddress>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn mac_from_index_unique_and_local() {
        let a = MacAddress::from_index(1);
        let b = MacAddress::from_index(2);
        assert_ne!(a, b);
        // Locally administered bit set, multicast bit clear.
        assert_eq!(a.octets()[0] & 0x02, 0x02);
        assert_eq!(a.octets()[0] & 0x01, 0x00);
    }

    #[test]
    fn ssid_truncates_to_limit() {
        let long = "x".repeat(100);
        let ssid = Ssid::new(long);
        assert_eq!(ssid.as_str().len(), Ssid::MAX_LEN);
        let short: Ssid = "HomeNet".into();
        assert_eq!(short.as_str(), "HomeNet");
    }

    #[test]
    fn ssid_truncates_on_char_boundary() {
        // 'é' is 2 bytes; 17 of them = 34 bytes > 32.
        let s = Ssid::new("é".repeat(17));
        assert!(s.as_str().len() <= Ssid::MAX_LEN);
        assert!(s.as_str().chars().all(|c| c == 'é'));
    }

    #[test]
    fn access_point_defaults() {
        let ap = AccessPoint::new(
            MacAddress::from_index(7),
            "Net".into(),
            WifiChannel::new(6).unwrap(),
            17.0,
            Vec3::new(5.0, -3.0, 2.0),
        );
        assert_eq!(ap.beacon_interval_ms, 102.4);
        let s = ap.to_string();
        assert!(s.contains("ch6"));
        assert!(s.contains("Net"));
    }

    #[test]
    fn parse_error_display() {
        let e = "nope".parse::<MacAddress>().unwrap_err();
        assert!(e.to_string().contains("nope"));
    }
}
