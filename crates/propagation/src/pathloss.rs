//! Large-scale path-loss models for indoor 2.4 GHz links.
//!
//! Three classic models are provided; the synthetic building defaults to
//! log-distance with an indoor exponent plus explicit per-wall losses
//! (a COST-231 multi-wall flavour, where the wall term comes from
//! [`crate::walls`] rather than from the model itself).

use serde::{Deserialize, Serialize};

/// Speed of light in m/s.
const C: f64 = 299_792_458.0;

/// Free-space path loss in dB at `distance_m` meters and `freq_mhz` MHz.
///
/// Distances below 1 cm are clamped to avoid the singularity at zero.
pub fn free_space_db(distance_m: f64, freq_mhz: f64) -> f64 {
    let d = distance_m.max(0.01);
    let f_hz = freq_mhz * 1e6;
    20.0 * (4.0 * std::f64::consts::PI * d * f_hz / C).log10()
}

/// A large-scale path-loss model.
///
/// All variants return loss in dB (positive numbers; received power is
/// `tx_power − loss`).
///
/// # Examples
///
/// ```
/// use aerorem_propagation::pathloss::PathLossModel;
///
/// let model = PathLossModel::log_distance_indoor();
/// let near = model.loss_db(1.0, 2437.0);
/// let far = model.loss_db(10.0, 2437.0);
/// assert!(far > near);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PathLossModel {
    /// Free-space (Friis) propagation — the LoS baseline.
    FreeSpace,
    /// Log-distance: `PL(d) = PL(d0) + 10·n·log10(d/d0)`.
    LogDistance {
        /// Reference distance in meters (usually 1 m).
        d0_m: f64,
        /// Path loss at the reference distance in dB. When `None`, the
        /// free-space loss at `d0` is used.
        pl0_db: Option<f64>,
        /// Path-loss exponent `n`; ~2 in free space, 2.8–3.5 indoors through
        /// walls.
        exponent: f64,
    },
    /// ITU-R P.1238 indoor model:
    /// `PL = 20·log10(f) + N·log10(d) + Lf(n_floors) − 28`.
    ItuIndoor {
        /// Distance power-loss coefficient `N` (≈ 28–30 for residential
        /// 2.4 GHz).
        n_coeff: f64,
        /// Number of penetrated floors.
        floors: u8,
        /// Per-floor penetration loss in dB (≈ 10–15 residential).
        floor_loss_db: f64,
    },
}

impl PathLossModel {
    /// A log-distance model with free-space anchor at 1 m and indoor
    /// exponent 3.0 — the synthetic building's default.
    pub fn log_distance_indoor() -> Self {
        PathLossModel::LogDistance {
            d0_m: 1.0,
            pl0_db: None,
            exponent: 3.0,
        }
    }

    /// Path loss in dB at the given distance (meters) and frequency (MHz).
    ///
    /// Distances below 1 cm are clamped.
    pub fn loss_db(&self, distance_m: f64, freq_mhz: f64) -> f64 {
        let d = distance_m.max(0.01);
        match *self {
            PathLossModel::FreeSpace => free_space_db(d, freq_mhz),
            PathLossModel::LogDistance {
                d0_m,
                pl0_db,
                exponent,
            } => {
                let d0 = d0_m.max(0.01);
                let pl0 = pl0_db.unwrap_or_else(|| free_space_db(d0, freq_mhz));
                pl0 + 10.0 * exponent * (d / d0).max(1.0).log10()
            }
            PathLossModel::ItuIndoor {
                n_coeff,
                floors,
                floor_loss_db,
            } => {
                20.0 * freq_mhz.log10() + n_coeff * d.max(1.0).log10()
                    + f64::from(floors) * floor_loss_db
                    - 28.0
            }
        }
    }
}

impl Default for PathLossModel {
    fn default() -> Self {
        PathLossModel::log_distance_indoor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_known_value() {
        // FSPL at 1 m, 2437 MHz ≈ 40.2 dB.
        let l = free_space_db(1.0, 2437.0);
        assert!((l - 40.17).abs() < 0.1, "got {l}");
        // +20 dB per decade.
        assert!((free_space_db(10.0, 2437.0) - l - 20.0).abs() < 1e-9);
    }

    #[test]
    fn free_space_clamps_tiny_distance() {
        assert_eq!(free_space_db(0.0, 2437.0), free_space_db(0.005, 2437.0));
    }

    #[test]
    fn log_distance_slope() {
        let m = PathLossModel::log_distance_indoor();
        let l1 = m.loss_db(1.0, 2437.0);
        let l10 = m.loss_db(10.0, 2437.0);
        // Exponent 3 → 30 dB per decade.
        assert!((l10 - l1 - 30.0).abs() < 1e-9);
    }

    #[test]
    fn log_distance_explicit_anchor() {
        let m = PathLossModel::LogDistance {
            d0_m: 1.0,
            pl0_db: Some(45.0),
            exponent: 2.0,
        };
        assert_eq!(m.loss_db(1.0, 2437.0), 45.0);
        assert!((m.loss_db(100.0, 2437.0) - 85.0).abs() < 1e-9);
    }

    #[test]
    fn log_distance_no_gain_inside_reference() {
        // Inside d0 the loss must not drop below PL(d0).
        let m = PathLossModel::log_distance_indoor();
        assert!(m.loss_db(0.1, 2437.0) >= m.loss_db(1.0, 2437.0) - 1e-9);
    }

    #[test]
    fn itu_indoor_floor_penalty() {
        let base = PathLossModel::ItuIndoor {
            n_coeff: 28.0,
            floors: 0,
            floor_loss_db: 12.0,
        };
        let two_floors = PathLossModel::ItuIndoor {
            n_coeff: 28.0,
            floors: 2,
            floor_loss_db: 12.0,
        };
        let d = 8.0;
        assert!((two_floors.loss_db(d, 2437.0) - base.loss_db(d, 2437.0) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn itu_indoor_reasonable_magnitude() {
        // Residential 2.4 GHz at 10 m, same floor: roughly 70–90 dB.
        let m = PathLossModel::ItuIndoor {
            n_coeff: 28.0,
            floors: 0,
            floor_loss_db: 12.0,
        };
        let l = m.loss_db(10.0, 2437.0);
        assert!((60.0..100.0).contains(&l), "got {l}");
    }

    #[test]
    fn all_models_monotone_in_distance() {
        let models = [
            PathLossModel::FreeSpace,
            PathLossModel::log_distance_indoor(),
            PathLossModel::ItuIndoor {
                n_coeff: 30.0,
                floors: 1,
                floor_loss_db: 10.0,
            },
        ];
        for m in models {
            let mut last = f64::MIN;
            for d in [1.0, 2.0, 5.0, 10.0, 20.0, 50.0] {
                let l = m.loss_db(d, 2437.0);
                assert!(l >= last, "{m:?} not monotone at {d}");
                last = l;
            }
        }
    }

    #[test]
    fn default_is_indoor_log_distance() {
        assert_eq!(PathLossModel::default(), PathLossModel::log_distance_indoor());
    }
}
