//! The composed radio environment: APs + walls + propagation models.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use aerorem_spatial::Vec3;
use rand::Rng;

use crate::ap::{AccessPoint, MacAddress};
use crate::fading::FadingModel;
use crate::pathloss::PathLossModel;
use crate::shadowing::ShadowingField;
use crate::walls::{total_wall_loss_db, Wall};

/// Cache key: the AP identity plus the exact bit patterns of the query
/// position. Keying on bits (not approximate values) means a hit can only
/// ever return the exact `f64` a fresh computation would produce — the
/// cache is invisible to every downstream consumer.
type LinkKey = (MacAddress, [u64; 3]);

/// Memoizes the deterministic large-scale link budget
/// (pathloss + wall losses + shadowing) per `(AP, position)`.
///
/// Campaign scans revisit the same waypoint for every beacon of every AP,
/// so the same wall-intersection walk is otherwise recomputed dozens of
/// times per waypoint. The environment is immutable after
/// [`RadioEnvironmentBuilder::build`], so entries never need invalidation.
///
/// Disabled by default; cloning or deserializing an environment yields a
/// fresh, cold, disabled cache (the cache is transparent state, not data).
#[derive(Debug, Default)]
struct LinkCache {
    enabled: AtomicBool,
    map: Mutex<BTreeMap<LinkKey, f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LinkCache {
    fn lookup(&self, key: &LinkKey) -> Option<f64> {
        let hit = self.map.lock().expect("link cache lock").get(key).copied();
        match hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn insert(&self, key: LinkKey, value: f64) {
        self.map.lock().expect("link cache lock").insert(key, value);
    }
}

impl Clone for LinkCache {
    fn clone(&self) -> Self {
        // A clone starts cold and disabled: cached values are a pure
        // function of the (immutable) environment, so nothing is lost, and
        // counters describe one environment's usage only.
        LinkCache::default()
    }
}

/// A static indoor radio environment: the ground truth the UAVs sample and
/// the ML layer tries to reconstruct.
///
/// The large-scale RSS surface ([`RadioEnvironment::mean_rss`]) is
/// deterministic: path loss + wall losses + the frozen correlated shadowing
/// field. Per-beacon randomness (fast fading) is added by
/// [`RadioEnvironment::sample_rss`].
///
/// # Examples
///
/// ```
/// use aerorem_propagation::environment::RadioEnvironmentBuilder;
/// use aerorem_propagation::{AccessPoint, MacAddress, WifiChannel};
/// use aerorem_spatial::Vec3;
///
/// let env = RadioEnvironmentBuilder::new()
///     .access_point(AccessPoint::new(
///         MacAddress::from_index(1),
///         "TestNet".into(),
///         WifiChannel::new(6).unwrap(),
///         17.0,
///         Vec3::new(10.0, 0.0, 2.0),
///     ))
///     .build();
/// let near = env.mean_rss(&env.access_points()[0], Vec3::new(9.0, 0.0, 2.0));
/// let far = env.mean_rss(&env.access_points()[0], Vec3::new(0.0, 0.0, 2.0));
/// assert!(near > far);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RadioEnvironment {
    aps: Vec<AccessPoint>,
    walls: Vec<Wall>,
    pathloss: PathLossModel,
    shadowing: ShadowingField,
    fading: FadingModel,
    noise_floor_dbm: f64,
    #[serde(skip)]
    link_cache: LinkCache,
}

impl RadioEnvironment {
    /// Starts building an environment.
    pub fn builder() -> RadioEnvironmentBuilder {
        RadioEnvironmentBuilder::new()
    }

    /// All access points in the environment.
    pub fn access_points(&self) -> &[AccessPoint] {
        &self.aps
    }

    /// Finds an AP by MAC address.
    pub fn access_point(&self, mac: MacAddress) -> Option<&AccessPoint> {
        self.aps.iter().find(|a| a.mac == mac)
    }

    /// All attenuating walls.
    pub fn walls(&self) -> &[Wall] {
        &self.walls
    }

    /// The receiver thermal noise floor in dBm.
    pub fn noise_floor_dbm(&self) -> f64 {
        self.noise_floor_dbm
    }

    /// The configured path-loss model.
    pub fn pathloss(&self) -> PathLossModel {
        self.pathloss
    }

    /// The frozen shadowing field.
    pub fn shadowing(&self) -> ShadowingField {
        self.shadowing
    }

    /// The per-beacon fading model.
    pub fn fading(&self) -> FadingModel {
        self.fading
    }

    /// Deterministic large-scale RSS of `ap` at `pos`, in dBm:
    /// `tx − pathloss(d) − Σ wall losses + shadowing(ap, pos)`.
    ///
    /// With the link cache enabled (see
    /// [`RadioEnvironment::set_link_cache_enabled`]) the value is memoized
    /// per `(AP, position)`; a cached result is the bit-exact `f64` a fresh
    /// computation would return, because the environment is immutable and
    /// the key is the position's exact bit pattern.
    pub fn mean_rss(&self, ap: &AccessPoint, pos: Vec3) -> f64 {
        if !self.link_cache.enabled.load(Ordering::Relaxed) {
            return self.compute_mean_rss(ap, pos);
        }
        let key = (ap.mac, [pos.x.to_bits(), pos.y.to_bits(), pos.z.to_bits()]);
        if let Some(v) = self.link_cache.lookup(&key) {
            return v;
        }
        let v = self.compute_mean_rss(ap, pos);
        self.link_cache.insert(key, v);
        v
    }

    /// The uncached link-budget computation behind [`RadioEnvironment::mean_rss`].
    fn compute_mean_rss(&self, ap: &AccessPoint, pos: Vec3) -> f64 {
        let d = ap.position.distance(pos);
        let pl = self.pathloss.loss_db(d, ap.channel.center_mhz());
        let wl = total_wall_loss_db(&self.walls, ap.position, pos);
        let sh = self.shadowing.sample(mac_seed(ap.mac), pos);
        ap.tx_power_dbm - pl - wl + sh
    }

    /// Turns the per-`(AP, position)` link cache on or off.
    ///
    /// Enabling is safe at any point: the environment is immutable, so a
    /// cached entry can never go stale. Disabling stops lookups but keeps
    /// existing entries and counters.
    pub fn set_link_cache_enabled(&self, enabled: bool) {
        self.link_cache.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the link cache is currently consulted by
    /// [`RadioEnvironment::mean_rss`].
    pub fn link_cache_enabled(&self) -> bool {
        self.link_cache.enabled.load(Ordering::Relaxed)
    }

    /// Lifetime `(hits, misses)` of the link cache (both zero while it has
    /// never been enabled).
    pub fn link_cache_stats(&self) -> (u64, u64) {
        (
            self.link_cache.hits.load(Ordering::Relaxed),
            self.link_cache.misses.load(Ordering::Relaxed),
        )
    }

    /// One received-beacon RSS sample: the large-scale mean plus a fast
    /// fading draw.
    pub fn sample_rss<R: Rng + ?Sized>(&self, ap: &AccessPoint, pos: Vec3, rng: &mut R) -> f64 {
        self.mean_rss(ap, pos) + self.fading.sample_db(rng)
    }
}

/// Derives the per-AP shadowing seed from its MAC.
pub(crate) fn mac_seed(mac: MacAddress) -> u64 {
    let o = mac.octets();
    u64::from_be_bytes([0, 0, o[0], o[1], o[2], o[3], o[4], o[5]])
}

/// Builder for [`RadioEnvironment`].
#[derive(Debug, Clone)]
pub struct RadioEnvironmentBuilder {
    aps: Vec<AccessPoint>,
    walls: Vec<Wall>,
    pathloss: PathLossModel,
    shadowing: ShadowingField,
    fading: FadingModel,
    noise_floor_dbm: f64,
}

impl RadioEnvironmentBuilder {
    /// Creates a builder with sensible indoor defaults: log-distance
    /// exponent 3, 4 dB shadowing with 2 m correlation, Rayleigh fading,
    /// −95 dBm noise floor, no APs, no walls.
    pub fn new() -> Self {
        RadioEnvironmentBuilder {
            aps: Vec::new(),
            walls: Vec::new(),
            pathloss: PathLossModel::log_distance_indoor(),
            shadowing: ShadowingField::new(4.0, 2.0, 0xAE20),
            fading: FadingModel::rayleigh(),
            noise_floor_dbm: -95.0,
        }
    }

    /// Adds one access point.
    pub fn access_point(mut self, ap: AccessPoint) -> Self {
        self.aps.push(ap);
        self
    }

    /// Adds many access points.
    pub fn access_points(mut self, aps: impl IntoIterator<Item = AccessPoint>) -> Self {
        self.aps.extend(aps);
        self
    }

    /// Adds one wall.
    pub fn wall(mut self, wall: Wall) -> Self {
        self.walls.push(wall);
        self
    }

    /// Adds many walls.
    pub fn walls(mut self, walls: impl IntoIterator<Item = Wall>) -> Self {
        self.walls.extend(walls);
        self
    }

    /// Sets the path-loss model.
    pub fn pathloss(mut self, model: PathLossModel) -> Self {
        self.pathloss = model;
        self
    }

    /// Sets the shadowing field.
    pub fn shadowing(mut self, field: ShadowingField) -> Self {
        self.shadowing = field;
        self
    }

    /// Sets the fast-fading model.
    pub fn fading(mut self, model: FadingModel) -> Self {
        self.fading = model;
        self
    }

    /// Sets the receiver noise floor in dBm.
    ///
    /// # Panics
    ///
    /// Panics if `dbm` is not finite or non-negative (noise floors are
    /// negative dBm values like −95).
    pub fn noise_floor_dbm(mut self, dbm: f64) -> Self {
        assert!(dbm.is_finite() && dbm < 0.0, "noise floor must be negative dBm");
        self.noise_floor_dbm = dbm;
        self
    }

    /// Finalizes the environment.
    pub fn build(self) -> RadioEnvironment {
        RadioEnvironment {
            aps: self.aps,
            walls: self.walls,
            pathloss: self.pathloss,
            shadowing: self.shadowing,
            fading: self.fading,
            noise_floor_dbm: self.noise_floor_dbm,
            link_cache: LinkCache::default(),
        }
    }
}

impl Default for RadioEnvironmentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::WifiChannel;
    use crate::walls::Material;
    use aerorem_spatial::Aabb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn one_ap_env() -> RadioEnvironment {
        RadioEnvironment::builder()
            .access_point(AccessPoint::new(
                MacAddress::from_index(1),
                "Net".into(),
                WifiChannel::new(6).unwrap(),
                17.0,
                Vec3::new(12.0, 0.0, 1.5),
            ))
            .build()
    }

    #[test]
    fn rss_decreases_with_distance_on_average() {
        let env = one_ap_env();
        let ap = &env.access_points()[0];
        // Average over several points to wash out shadowing.
        let avg = |x: f64| -> f64 {
            (0..20)
                .map(|i| env.mean_rss(ap, Vec3::new(x, i as f64 * 3.0, 1.5)))
                .sum::<f64>()
                / 20.0
        };
        assert!(avg(10.0) > avg(0.0) + 3.0);
    }

    #[test]
    fn mean_rss_is_deterministic() {
        let env = one_ap_env();
        let ap = &env.access_points()[0];
        let p = Vec3::new(1.0, 2.0, 1.0);
        assert_eq!(env.mean_rss(ap, p), env.mean_rss(ap, p));
    }

    #[test]
    fn wall_between_reduces_rss() {
        let wall = Wall::from_material(
            Aabb::new(Vec3::new(6.0, -50.0, -5.0), Vec3::new(6.2, 50.0, 8.0)).unwrap(),
            Material::ThickMasonry,
            "partition",
        );
        let base = one_ap_env();
        let walled = RadioEnvironment::builder()
            .access_point(base.access_points()[0].clone())
            .wall(wall)
            .build();
        let ap = &base.access_points()[0];
        let p = Vec3::new(0.0, 0.0, 1.5); // AP at x=12, wall at x=6: crossed
        let diff = base.mean_rss(ap, p) - walled.mean_rss(ap, p);
        assert!((diff - 10.0).abs() < 1e-9, "wall should cost 10 dB, got {diff}");
    }

    #[test]
    fn sampling_adds_fading_spread() {
        let env = one_ap_env();
        let ap = &env.access_points()[0];
        let p = Vec3::new(1.0, 1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..500).map(|_| env.sample_rss(ap, p, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let spread = samples
            .iter()
            .map(|s| (s - mean).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(spread > 0.0, "fading must vary samples");
        // Median of samples stays near the large-scale mean.
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!((median - env.mean_rss(ap, p)).abs() < 2.0);
    }

    #[test]
    fn lookup_by_mac() {
        let env = one_ap_env();
        let mac = MacAddress::from_index(1);
        assert!(env.access_point(mac).is_some());
        assert!(env.access_point(MacAddress::from_index(999)).is_none());
    }

    #[test]
    fn builder_defaults() {
        let env = RadioEnvironment::builder().build();
        assert_eq!(env.noise_floor_dbm(), -95.0);
        assert!(env.access_points().is_empty());
        assert!(env.walls().is_empty());
    }

    #[test]
    #[should_panic(expected = "negative dBm")]
    fn positive_noise_floor_rejected() {
        RadioEnvironment::builder().noise_floor_dbm(10.0);
    }

    #[test]
    fn link_cache_returns_bit_identical_values() {
        let env = one_ap_env();
        let ap = &env.access_points()[0];
        let positions: Vec<Vec3> = (0..30)
            .map(|i| Vec3::new((i % 6) as f64 * 1.7, (i / 6) as f64 * 2.3, 1.5))
            .collect();
        let uncached: Vec<f64> = positions.iter().map(|&p| env.mean_rss(ap, p)).collect();
        assert_eq!(env.link_cache_stats(), (0, 0), "disabled cache counts nothing");

        env.set_link_cache_enabled(true);
        let first: Vec<f64> = positions.iter().map(|&p| env.mean_rss(ap, p)).collect();
        let second: Vec<f64> = positions.iter().map(|&p| env.mean_rss(ap, p)).collect();
        assert_eq!(uncached, first, "cold pass matches uncached bits");
        assert_eq!(uncached, second, "warm pass matches uncached bits");
        let (hits, misses) = env.link_cache_stats();
        assert_eq!(misses, positions.len() as u64);
        assert_eq!(hits, positions.len() as u64);
    }

    #[test]
    fn link_cache_keys_on_ap_and_exact_position() {
        let env = RadioEnvironment::builder()
            .access_points([
                AccessPoint::new(
                    MacAddress::from_index(1),
                    "A".into(),
                    WifiChannel::new(1).unwrap(),
                    17.0,
                    Vec3::new(12.0, 0.0, 1.5),
                ),
                AccessPoint::new(
                    MacAddress::from_index(2),
                    "B".into(),
                    WifiChannel::new(11).unwrap(),
                    14.0,
                    Vec3::new(-3.0, 8.0, 2.5),
                ),
            ])
            .build();
        env.set_link_cache_enabled(true);
        let p = Vec3::new(1.0, 2.0, 1.0);
        let a = env.mean_rss(&env.access_points()[0], p);
        let b = env.mean_rss(&env.access_points()[1], p);
        assert_ne!(a, b, "two APs at one position must not collide in the cache");
        // A nearby-but-not-identical position is a distinct key, not a hit.
        let (hits_before, _) = env.link_cache_stats();
        env.mean_rss(&env.access_points()[0], Vec3::new(1.0 + 1e-12, 2.0, 1.0));
        let (hits_after, _) = env.link_cache_stats();
        assert_eq!(hits_before, hits_after);
    }

    #[test]
    fn cloned_environment_starts_with_a_cold_disabled_cache() {
        let env = one_ap_env();
        env.set_link_cache_enabled(true);
        env.mean_rss(&env.access_points()[0], Vec3::new(0.5, 0.5, 1.5));
        let cloned = env.clone();
        assert!(!cloned.link_cache_enabled());
        assert_eq!(cloned.link_cache_stats(), (0, 0));
        // And the clone still computes the same values.
        let p = Vec3::new(2.0, 3.0, 1.5);
        assert_eq!(
            env.mean_rss(&env.access_points()[0], p),
            cloned.mean_rss(&cloned.access_points()[0], p)
        );
    }

    #[test]
    fn mac_seed_distinct() {
        assert_ne!(
            mac_seed(MacAddress::from_index(1)),
            mac_seed(MacAddress::from_index(2))
        );
    }
}
