//! Indoor 2.4 GHz radio propagation and beacon-scan simulation.
//!
//! This crate is the substitute for the paper's physical radio environment
//! (a living room in a large apartment building in Antwerp, §III-A). The ML
//! layer of the toolchain only ever sees `(x, y, z, mac, channel, rss)`
//! tuples, so a propagation simulator that produces tuples with the right
//! *statistical structure* preserves everything the evaluation depends on:
//!
//! * per-AP mean RSS surfaces that vary smoothly in space
//!   ([`RadioEnvironment::mean_rss`]), built from configurable
//!   [`pathloss`] models plus per-wall attenuation ([`walls`]);
//! * spatially **correlated** log-normal shadowing ([`shadowing`], a
//!   Gudmundson-style field) so that nearby samples agree — the property kNN
//!   and kriging exploit;
//! * per-sample fast fading ([`fading`]) and integer quantization, matching
//!   what an ESP8266 `AT+CWLAP` row reports;
//! * a beacon **detection** model ([`scan`]) in which weak APs are missed,
//!   reproducing the sample-count gradients of Figures 6–7;
//! * an nRF24 (Crazyradio) **interference** coupling ([`interference`]) that
//!   degrades detection, reproducing Figure 5;
//! * a [`building`] generator that synthesizes the surrounding apartment
//!   building: ~73 APs whose density increases toward the building core in
//!   the +x/−y direction from the scan volume, 49 SSIDs shared across radios,
//!   and the asymmetric wall layout the paper calls out.
//!
//! # Examples
//!
//! ```
//! use aerorem_propagation::building::SyntheticBuilding;
//! use aerorem_spatial::Aabb;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let env = SyntheticBuilding::paper_like().generate(Aabb::paper_volume(), &mut rng);
//! let ap = &env.access_points()[0];
//! let rss = env.mean_rss(ap, Aabb::paper_volume().center());
//! assert!(rss < 0.0, "indoor RSS is negative dBm, got {rss}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ap;
pub mod building;
pub mod channel;
pub mod environment;
pub mod fading;
pub mod interference;
pub mod pathloss;
pub mod scan;
pub mod shadowing;
pub mod walls;

pub use ap::{AccessPoint, MacAddress, Ssid};
pub use channel::WifiChannel;
pub use environment::RadioEnvironment;
pub use interference::InterferenceSource;
pub use scan::{BeaconObservation, ScanConfig};
