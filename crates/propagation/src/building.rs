//! Synthetic apartment-building generator.
//!
//! The paper deployed in "a living room of an apartment in a large apartment
//! building in Antwerp" and observed (§III-A):
//!
//! * 73 distinct MAC addresses but only 49 SSIDs (shared names);
//! * mean RSS around −73 dBm;
//! * "the positive x-axis and negative y-axis point towards the center of
//!   the apartment building where we can expect to see more signals";
//! * "a wall segment that is 40 cm wider where UAV B's measurements are
//!   taken".
//!
//! [`SyntheticBuilding`] reproduces that setting: APs are scattered around a
//! building core offset toward +x/−y from the scan volume, apartment
//! partition walls and concrete floor slabs attenuate distant links, the
//! room has brick walls with one extra-thick masonry segment on the +y side,
//! and SSIDs are reused across part of the fleet.

use rand::Rng;
use serde::{Deserialize, Serialize};

use aerorem_numerics::dist;
use aerorem_spatial::{Aabb, Vec3};

use crate::ap::{AccessPoint, MacAddress, Ssid};
use crate::channel::WifiChannel;
use crate::environment::{RadioEnvironment, RadioEnvironmentBuilder};
use crate::fading::FadingModel;
use crate::pathloss::PathLossModel;
use crate::shadowing::ShadowingField;
use crate::walls::{Material, Wall};

/// Parameters of the synthetic building surrounding the scan volume.
///
/// # Examples
///
/// ```
/// use aerorem_propagation::building::SyntheticBuilding;
/// use aerorem_spatial::Aabb;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2206);
/// let env = SyntheticBuilding::paper_like().generate(Aabb::paper_volume(), &mut rng);
/// assert_eq!(env.access_points().len(), 73);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticBuilding {
    /// Number of access points (the paper saw 73 MACs).
    pub n_aps: usize,
    /// Number of distinct SSIDs (the paper saw 49).
    pub n_ssids: usize,
    /// Offset of the building core from the volume center, meters. The
    /// paper's core lies toward +x/−y.
    pub core_offset: Vec3,
    /// Gaussian spread (std dev per axis) of AP positions around the core.
    pub core_spread: Vec3,
    /// Fraction of APs belonging to the *adjacent apartments* right next to
    /// the scan room (also toward +x/−y): full-power routers, solidly
    /// audible everywhere in the room.
    pub adjacent_fraction: f64,
    /// Offset of the adjacent-apartment cluster from the volume center.
    pub adjacent_offset: Vec3,
    /// Gaussian spread of the adjacent-apartment cluster.
    pub adjacent_spread: Vec3,
    /// Fraction of APs that are *weak nearby devices* — range extenders,
    /// IoT bridges, printers, hotspots with poor antennas in the adjacent
    /// apartments. Their RSS at the room sits right at the detection edge,
    /// and because they are close (3–8 m), crossing the 3.7 m room swings
    /// their RSS by 5–10 dB. They produce both of the paper's §III-A count
    /// effects: the +x/−y gradient (Figures 6–7) and the population of MACs
    /// with fewer than 16 samples that preprocessing drops.
    pub weak_fraction: f64,
    /// Offset of the weak-device cluster from the volume center.
    pub weak_offset: Vec3,
    /// Gaussian spread of the weak-device cluster.
    pub weak_spread: Vec3,
    /// Transmit power range of the weak devices in dBm (well below router
    /// class).
    pub weak_tx_power_dbm: (f64, f64),
    /// Vertical extent of the building relative to the volume floor.
    pub z_range: (f64, f64),
    /// AP transmit power range in dBm.
    pub tx_power_dbm: (f64, f64),
    /// Probability mass on each of the primary channels 1/6/11 (the
    /// remainder spreads uniformly over the other ten channels).
    pub primary_channel_weight: f64,
    /// Large-scale path-loss model.
    pub pathloss: PathLossModel,
    /// Shadowing standard deviation (dB) and correlation distance (m).
    pub shadowing: (f64, f64),
    /// Fast-fading model.
    pub fading: FadingModel,
    /// Receiver noise floor in dBm.
    pub noise_floor_dbm: f64,
    /// Spacing of apartment partition walls in meters.
    pub partition_spacing_m: f64,
    /// Horizontal extent of the building (half-width) in meters.
    pub building_half_extent_m: f64,
    /// Ceiling height between floor slabs in meters.
    pub floor_height_m: f64,
}

impl SyntheticBuilding {
    /// A configuration calibrated to reproduce the paper's environment
    /// statistics (sample counts, detected-AP counts, mean RSS ≈ −73 dBm).
    pub fn paper_like() -> Self {
        SyntheticBuilding {
            n_aps: 73,
            n_ssids: 49,
            core_offset: Vec3::new(8.0, -9.0, 0.0),
            core_spread: Vec3::new(7.0, 6.0, 4.0),
            adjacent_fraction: 0.20,
            adjacent_offset: Vec3::new(4.0, -4.5, -0.8),
            adjacent_spread: Vec3::new(3.0, 2.6, 2.4),
            weak_fraction: 0.48,
            weak_offset: Vec3::new(2.0, -2.6, -0.4),
            weak_spread: Vec3::new(2.2, 2.0, 1.8),
            weak_tx_power_dbm: (-28.0, -13.0),
            z_range: (-7.0, 9.0),
            tx_power_dbm: (15.0, 21.0),
            primary_channel_weight: 0.25,
            pathloss: PathLossModel::LogDistance {
                d0_m: 1.0,
                pl0_db: None,
                exponent: 3.1,
            },
            shadowing: (3.2, 2.0),
            fading: FadingModel::rayleigh(),
            noise_floor_dbm: -95.0,
            partition_spacing_m: 5.5,
            building_half_extent_m: 40.0,
            floor_height_m: 2.7,
        }
    }

    /// Generates the full [`RadioEnvironment`] for the given scan volume.
    ///
    /// The RNG drives AP placement and radio parameters; the shadowing field
    /// seed is also drawn from it, so one seed reproduces the entire world.
    ///
    /// # Panics
    ///
    /// Panics if `n_ssids == 0` or `n_aps == 0`.
    pub fn generate<R: Rng + ?Sized>(&self, volume: Aabb, rng: &mut R) -> RadioEnvironment {
        assert!(self.n_aps > 0, "need at least one access point");
        assert!(self.n_ssids > 0, "need at least one SSID");
        let core = volume.center() + self.core_offset;

        // --- SSID pool: realistic-looking names, some shared. ---
        let ssids: Vec<Ssid> = (0..self.n_ssids)
            .map(|i| Ssid::new(ssid_name(i, rng)))
            .collect();

        // --- Access points. ---
        let mut aps = Vec::with_capacity(self.n_aps);
        let adjacent = volume.center() + self.adjacent_offset;
        let weak_center = volume.center() + self.weak_offset;
        let n_adjacent = (self.adjacent_fraction * self.n_aps as f64) as usize;
        let n_weak = (self.weak_fraction * self.n_aps as f64) as usize;
        for i in 0..self.n_aps {
            // Deterministic split of the fleet into the three populations:
            // adjacent routers, weak near devices, and the building core.
            let (center, spread, tx_range) = if i < n_adjacent {
                (adjacent, self.adjacent_spread, self.tx_power_dbm)
            } else if i < n_adjacent + n_weak {
                (weak_center, self.weak_spread, self.weak_tx_power_dbm)
            } else {
                (core, self.core_spread, self.tx_power_dbm)
            };
            let position = Vec3::new(
                dist::normal(rng, center.x, spread.x),
                dist::normal(rng, center.y, spread.y),
                dist::normal(rng, center.z, spread.z).clamp(self.z_range.0, self.z_range.1),
            );
            // First `n_ssids` APs take unique names; the rest reuse one.
            let ssid = if i < self.n_ssids {
                ssids[i].clone()
            } else {
                ssids[rng.gen_range(0..self.n_ssids)].clone()
            };
            let channel = self.pick_channel(rng);
            let tx = dist::uniform(rng, tx_range.0, tx_range.1);
            aps.push(AccessPoint::new(
                MacAddress::from_index(i as u32 + 1),
                ssid,
                channel,
                tx,
                position,
            ));
        }

        // --- Walls. ---
        let mut walls = self.room_walls(volume);
        walls.extend(self.partition_walls(volume));
        walls.extend(self.floor_slabs(volume));

        let (sigma, corr) = self.shadowing;
        RadioEnvironmentBuilder::new()
            .access_points(aps)
            .walls(walls)
            .pathloss(self.pathloss)
            .shadowing(ShadowingField::new(sigma, corr, rng.gen()))
            .fading(self.fading)
            .noise_floor_dbm(self.noise_floor_dbm)
            .build()
    }

    fn pick_channel<R: Rng + ?Sized>(&self, rng: &mut R) -> WifiChannel {
        let w = self.primary_channel_weight.clamp(0.0, 1.0 / 3.0);
        let u: f64 = rng.gen();
        if u < w {
            WifiChannel::new(1).expect("valid") // lint:allow(panic-reach) — 1 is a compile-time-valid 2.4 GHz channel number
        } else if u < 2.0 * w {
            WifiChannel::new(6).expect("valid") // lint:allow(panic-reach) — 6 is a compile-time-valid 2.4 GHz channel number
        } else if u < 3.0 * w {
            WifiChannel::new(11).expect("valid") // lint:allow(panic-reach) — 11 is a compile-time-valid 2.4 GHz channel number
        } else {
            // Uniform over the ten non-primary channels.
            let others: Vec<u8> = (1..=13).filter(|n| ![1, 6, 11].contains(n)).collect();
            let idx = rng.gen_range(0..others.len());
            WifiChannel::new(others[idx]).expect("valid") // lint:allow(panic-reach) — others holds channels 2..=13 minus the primaries, all valid; idx is gen_range-bounded
        }
    }

    /// The room's own walls: brick all around, except an extra-thick masonry
    /// segment on the +y side — the paper's "40 cm wider" wall near UAV B's
    /// region.
    fn room_walls(&self, volume: Aabb) -> Vec<Wall> {
        let lo = volume.min() - Vec3::splat(0.3);
        let hi = volume.max() + Vec3::splat(0.3);
        let z0 = lo.z;
        let z1 = hi.z;
        let t = 0.10; // standard wall thickness
        let t_thick = t + 0.40; // the 40 cm wider segment
        let mk = |min: Vec3, max: Vec3, m: Material, label: &str| {
            Wall::from_material(Aabb::new(min, max).expect("wall geometry"), m, label) // lint:allow(panic-reach) — every caller passes max = min + positive wall thickness
        };
        vec![
            mk(
                Vec3::new(lo.x - t, lo.y, z0),
                Vec3::new(lo.x, hi.y, z1),
                Material::Brick,
                "room wall -x",
            ),
            mk(
                Vec3::new(hi.x, lo.y, z0),
                Vec3::new(hi.x + t, hi.y, z1),
                Material::Brick,
                "room wall +x",
            ),
            mk(
                Vec3::new(lo.x, lo.y - t, z0),
                Vec3::new(hi.x, lo.y, z1),
                Material::Brick,
                "room wall -y",
            ),
            // UAV B's side: thicker and lossier.
            mk(
                Vec3::new(lo.x, hi.y, z0),
                Vec3::new(hi.x, hi.y + t_thick, z1),
                Material::ThickMasonry,
                "room wall +y (40 cm wider)",
            ),
        ]
    }

    /// Apartment partition walls on a regular grid across the building,
    /// skipping any slab that would cut through the scan room itself.
    fn partition_walls(&self, volume: Aabb) -> Vec<Wall> {
        let mut walls = Vec::new();
        let ext = self.building_half_extent_m;
        let room = volume.inflated(1.0).expect("inflate"); // lint:allow(panic-reach) — inflating a valid Aabb by a positive margin keeps min < max
        let center = volume.center();
        let (z0, z1) = (self.z_range.0 - 1.0, self.z_range.1 + 1.0);
        let n = (2.0 * ext / self.partition_spacing_m) as i32;
        for i in -n / 2..=n / 2 {
            let x = center.x + i as f64 * self.partition_spacing_m;
            let slab = Aabb::new(
                Vec3::new(x - 0.05, center.y - ext, z0),
                Vec3::new(x + 0.05, center.y + ext, z1),
            )
            .expect("slab"); // lint:allow(panic-reach) — extents are ±0.05/±ext/z0<z1 around a center: min < max on every axis
            if !slab.intersects(&room) {
                walls.push(Wall::from_material(
                    slab,
                    Material::Drywall,
                    format!("partition x={x:.1}"),
                ));
            }
            let y = center.y + i as f64 * self.partition_spacing_m;
            let slab = Aabb::new(
                Vec3::new(center.x - ext, y - 0.05, z0),
                Vec3::new(center.x + ext, y + 0.05, z1),
            )
            .expect("slab"); // lint:allow(panic-reach) — extents are ±ext/±0.05/z0<z1 around a center: min < max on every axis
            if !slab.intersects(&room) {
                walls.push(Wall::from_material(
                    slab,
                    Material::Drywall,
                    format!("partition y={y:.1}"),
                ));
            }
        }
        walls
    }

    /// Reinforced-concrete floor slabs above and below the scan volume.
    fn floor_slabs(&self, volume: Aabb) -> Vec<Wall> {
        let mut slabs = Vec::new();
        let ext = self.building_half_extent_m;
        let center = volume.center();
        let h = self.floor_height_m;
        // The room spans z ∈ [volume.min.z, volume.max.z]; the slab under it
        // sits just below, and further slabs every `h` meters up and down.
        let mut k = -3i32;
        while f64::from(k) * h < self.z_range.1 {
            let z = volume.min().z - 0.35 + f64::from(k) * h;
            // Skip any slab that would intrude into the scan volume.
            if z + 0.25 < volume.min().z || z > volume.max().z {
                slabs.push(Wall::from_material(
                    Aabb::new(
                        Vec3::new(center.x - ext, center.y - ext, z),
                        Vec3::new(center.x + ext, center.y + ext, z + 0.25),
                    )
                    .expect("floor slab"), // lint:allow(panic-reach) — the slab spans ±ext around the center and 0.25 m of height: min < max on every axis
                    Material::ConcreteFloor,
                    format!("floor slab z={z:.1}"),
                ));
            }
            k += 1;
        }
        slabs
    }
}

impl Default for SyntheticBuilding {
    fn default() -> Self {
        Self::paper_like()
    }
}

/// Generates a plausible residential SSID.
fn ssid_name<R: Rng + ?Sized>(i: usize, rng: &mut R) -> String {
    const STEMS: [&str; 12] = [
        "telenet", "Proximus", "HomeNet", "WiFi", "linksys", "AndroidAP", "Orange", "NETGEAR",
        "FRITZ!Box", "dlink", "VOO", "Ziggo",
    ];
    let stem = STEMS[i % STEMS.len()];
    let suffix: u32 = rng.gen_range(0..100_000);
    format!("{stem}-{suffix:05}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn build() -> RadioEnvironment {
        let mut rng = StdRng::seed_from_u64(0xB11D);
        SyntheticBuilding::paper_like().generate(Aabb::paper_volume(), &mut rng)
    }

    #[test]
    fn counts_match_paper() {
        let env = build();
        assert_eq!(env.access_points().len(), 73);
        let ssids: BTreeSet<&str> = env
            .access_points()
            .iter()
            .map(|a| a.ssid.as_str())
            .collect();
        assert!(ssids.len() <= 49, "at most 49 distinct SSIDs, got {}", ssids.len());
        assert!(ssids.len() >= 40, "most SSIDs distinct, got {}", ssids.len());
        let macs: BTreeSet<_> = env.access_points().iter().map(|a| a.mac).collect();
        assert_eq!(macs.len(), 73, "MACs must be unique");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let cfg = SyntheticBuilding::paper_like();
        let env_a = cfg.generate(Aabb::paper_volume(), &mut a);
        let env_b = cfg.generate(Aabb::paper_volume(), &mut b);
        assert_eq!(env_a.access_points(), env_b.access_points());
        assert_eq!(env_a.walls().len(), env_b.walls().len());
    }

    #[test]
    fn ap_density_skews_toward_core() {
        let env = build();
        let c = Aabb::paper_volume().center();
        let toward = env
            .access_points()
            .iter()
            .filter(|a| a.position.x > c.x && a.position.y < c.y)
            .count();
        let away = env
            .access_points()
            .iter()
            .filter(|a| a.position.x < c.x && a.position.y > c.y)
            .count();
        assert!(
            toward > 2 * away.max(1),
            "core quadrant {toward} vs opposite {away}"
        );
    }

    #[test]
    fn no_wall_or_slab_intersects_scan_volume() {
        let env = build();
        let v = Aabb::paper_volume();
        for w in env.walls() {
            assert!(
                !w.slab.intersects(&v),
                "wall {:?} cuts the scan volume",
                w.label
            );
        }
    }

    #[test]
    fn thick_wall_sits_on_positive_y_side() {
        let env = build();
        let thick = env
            .walls()
            .iter()
            .find(|w| w.label.contains("40 cm"))
            .expect("thick wall present");
        assert!(thick.slab.min().y >= Aabb::paper_volume().max().y);
        assert!(thick.attenuation_db >= Material::ThickMasonry.attenuation_db());
        let thickness = thick.slab.size().y;
        assert!((thickness - 0.5).abs() < 1e-9, "0.1 + 0.4 m thick, got {thickness}");
    }

    #[test]
    fn mean_detected_rss_in_paper_range() {
        // The mean RSS of *audible* APs at the volume center should be in
        // the paper's ballpark (−73 dBm ± a handful).
        let env = build();
        let c = Aabb::paper_volume().center();
        let audible: Vec<f64> = env
            .access_points()
            .iter()
            .map(|a| env.mean_rss(a, c))
            .filter(|&r| r > -92.0)
            .collect();
        assert!(
            audible.len() >= 25,
            "expect a few dozen audible APs, got {}",
            audible.len()
        );
        let mean = audible.iter().sum::<f64>() / audible.len() as f64;
        assert!(
            (-80.0..=-64.0).contains(&mean),
            "mean audible RSS {mean} dBm out of range"
        );
    }

    #[test]
    fn rss_gradient_points_toward_core() {
        // Mean audible-AP RSS mass should grow toward +x/−y. Average over
        // several probe points per corner and several generated worlds so
        // one shadowing realization cannot flip the sign.
        let v = Aabb::paper_volume();
        let mut toward = 0.0;
        let mut away = 0.0;
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(0xB11D + seed);
            let env = SyntheticBuilding::paper_like().generate(v, &mut rng);
            let count_at = |p: Vec3| -> f64 {
                env.access_points()
                    .iter()
                    .filter(|a| env.mean_rss(a, p) > -91.0)
                    .count() as f64
            };
            for &tz in &[0.25, 0.5, 0.75] {
                for &off in &[0.0, 0.12] {
                    toward += count_at(v.lerp_point(0.9 - off, 0.1 + off, tz));
                    away += count_at(v.lerp_point(0.1 + off, 0.9 - off, tz));
                }
            }
        }
        assert!(
            toward > away,
            "audible APs toward core {toward} <= away {away}"
        );
    }

    #[test]
    fn channels_cover_primaries() {
        let env = build();
        let chans: BTreeSet<u8> = env
            .access_points()
            .iter()
            .map(|a| a.channel.number())
            .collect();
        for primary in [1u8, 6, 11] {
            assert!(chans.contains(&primary), "missing channel {primary}");
        }
    }

    #[test]
    fn tx_power_within_bounds() {
        let cfg = SyntheticBuilding::paper_like();
        let env = build();
        for ap in env.access_points() {
            let router = (cfg.tx_power_dbm.0..=cfg.tx_power_dbm.1).contains(&ap.tx_power_dbm);
            let weak = (cfg.weak_tx_power_dbm.0..=cfg.weak_tx_power_dbm.1)
                .contains(&ap.tx_power_dbm);
            assert!(router || weak, "tx {} outside both bands", ap.tx_power_dbm);
        }
    }

    #[test]
    fn floor_slabs_above_and_below() {
        let env = build();
        let v = Aabb::paper_volume();
        let above = env
            .walls()
            .iter()
            .filter(|w| w.label.contains("floor") && w.slab.min().z > v.max().z)
            .count();
        let below = env
            .walls()
            .iter()
            .filter(|w| w.label.contains("floor") && w.slab.max().z < v.min().z)
            .count();
        assert!(above >= 2, "floors above: {above}");
        assert!(below >= 2, "floors below: {below}");
    }
}
