//! Small-scale (fast) fading.
//!
//! On top of path loss and shadowing, each individual beacon reception sees
//! multipath fading. We model the envelope as Rician with a configurable
//! K-factor: K → ∞ is a pure line-of-sight link, K = 0 degenerates to
//! Rayleigh (rich scattering, the typical through-wall indoor case). The
//! sampled envelope is converted to a dB perturbation with zero median.

use rand::Rng;
use serde::{Deserialize, Serialize};

use aerorem_numerics::dist;

/// A small-scale fading model applied per received beacon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FadingModel {
    /// No fast fading: the sample equals the large-scale mean.
    None,
    /// Rician fading with the given K-factor (linear, not dB).
    ///
    /// `k = 0` is Rayleigh fading.
    Rician {
        /// Ratio of line-of-sight power to scattered power (linear).
        k_factor: f64,
    },
}

impl FadingModel {
    /// Rayleigh fading (`K = 0`) — the default for through-wall indoor links.
    pub fn rayleigh() -> Self {
        FadingModel::Rician { k_factor: 0.0 }
    }

    /// Draws a fading perturbation in dB (median-centered, so the expected
    /// *median* RSS is unaffected).
    ///
    /// # Panics
    ///
    /// Panics if the K-factor is negative or not finite.
    pub fn sample_db<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            FadingModel::None => 0.0,
            FadingModel::Rician { k_factor } => {
                assert!(
                    k_factor >= 0.0 && k_factor.is_finite(),
                    "K-factor must be non-negative"
                );
                // Total mean power normalized to 1: LoS amplitude² = K/(K+1),
                // scatter variance per quadrature = 1/(2(K+1)).
                let nu = (k_factor / (k_factor + 1.0)).sqrt();
                let sigma = (1.0 / (2.0 * (k_factor + 1.0))).sqrt();
                let envelope = dist::rician(rng, nu, sigma);
                let power_db = 20.0 * envelope.max(1e-9).log10();
                // Subtract the distribution's median (in dB) so the fading
                // perturbs around zero.
                power_db - Self::median_db(k_factor)
            }
        }
    }

    /// The median of the Rician power in dB for a given K (computed from the
    /// closed form for Rayleigh, numerically-fitted offset otherwise).
    fn median_db(k_factor: f64) -> f64 {
        if k_factor == 0.0 {
            // Rayleigh power median = sigma²·2·ln2 with total power 1:
            // envelope² median = ln(2) → in dB:
            10.0 * (std::f64::consts::LN_2).log10()
        } else {
            // For moderate/large K the distribution concentrates at power 1
            // (0 dB); blend toward the Rayleigh median for small K.
            let rayleigh_median = 10.0 * (std::f64::consts::LN_2).log10();
            rayleigh_median / (1.0 + k_factor)
        }
    }
}

impl Default for FadingModel {
    fn default() -> Self {
        FadingModel::rayleigh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xFAD1)
    }

    #[test]
    fn none_is_zero() {
        let mut r = rng();
        assert_eq!(FadingModel::None.sample_db(&mut r), 0.0);
    }

    #[test]
    fn rayleigh_median_near_zero_db() {
        let mut r = rng();
        let m = FadingModel::rayleigh();
        let mut xs: Vec<f64> = (0..40_000).map(|_| m.sample_db(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!(median.abs() < 0.15, "median {median} dB");
    }

    #[test]
    fn rayleigh_has_deep_fades() {
        let mut r = rng();
        let m = FadingModel::rayleigh();
        let deep = (0..40_000)
            .map(|_| m.sample_db(&mut r))
            .filter(|&x| x < -10.0)
            .count();
        // Rayleigh: P(power < median - 10 dB) ≈ 7 %.
        let frac = deep as f64 / 40_000.0;
        assert!((0.03..0.12).contains(&frac), "deep-fade fraction {frac}");
    }

    #[test]
    fn strong_los_concentrates() {
        let mut r = rng();
        let m = FadingModel::Rician { k_factor: 30.0 };
        let xs: Vec<f64> = (0..20_000).map(|_| m.sample_db(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let std = (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt();
        assert!(std < 1.5, "high-K fading should be tight, std {std}");
    }

    #[test]
    fn higher_k_means_less_variance() {
        let mut r = rng();
        let var = |k: f64, r: &mut StdRng| {
            let m = FadingModel::Rician { k_factor: k };
            let xs: Vec<f64> = (0..20_000).map(|_| m.sample_db(r)).collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64
        };
        let v0 = var(0.0, &mut r);
        let v10 = var(10.0, &mut r);
        assert!(v10 < v0 / 3.0, "K=10 var {v10} vs K=0 var {v0}");
    }

    #[test]
    fn default_is_rayleigh() {
        assert_eq!(FadingModel::default(), FadingModel::rayleigh());
    }
}
