//! Walls and floors as attenuating slabs (the multi-wall model geometry).
//!
//! Each [`Wall`] is an axis-aligned slab with a per-traversal attenuation in
//! dB. The total wall loss of a link is the sum of attenuations of every
//! slab the straight-line ray crosses — the COST-231 multi-wall idea. The
//! paper's environment remarks on "a wall segment that is 40 cm wider where
//! UAV B's measurements are taken" (§III-A); [`crate::building`] encodes it
//! as a thicker, lossier slab on that side of the room.

use serde::{Deserialize, Serialize};

use aerorem_spatial::{Aabb, Vec3};

/// A material preset for walls and floors, carrying a typical 2.4 GHz
/// per-traversal attenuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Material {
    /// Plasterboard / drywall partition (~3 dB).
    Drywall,
    /// Single brick wall (~6 dB).
    Brick,
    /// Load-bearing or double-width masonry (~10 dB).
    ThickMasonry,
    /// Reinforced concrete floor slab (~13 dB).
    ConcreteFloor,
    /// Glass window / door (~2 dB).
    Glass,
}

impl Material {
    /// Typical attenuation per traversal in dB at 2.4 GHz.
    pub fn attenuation_db(self) -> f64 {
        match self {
            Material::Drywall => 3.0,
            Material::Brick => 6.0,
            Material::ThickMasonry => 10.0,
            Material::ConcreteFloor => 13.0,
            Material::Glass => 2.0,
        }
    }
}

/// An attenuating axis-aligned slab.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Wall {
    /// The slab's extent.
    pub slab: Aabb,
    /// Attenuation applied once per ray traversal, in dB.
    pub attenuation_db: f64,
    /// Descriptive label, e.g. `"west wall"`.
    pub label: String,
}

impl Wall {
    /// Creates a wall from an extent and a material preset.
    pub fn from_material(slab: Aabb, material: Material, label: impl Into<String>) -> Self {
        Wall {
            slab,
            attenuation_db: material.attenuation_db(),
            label: label.into(),
        }
    }

    /// Whether the segment `a → b` passes through this slab.
    ///
    /// Uses the slab method for segment–AABB intersection; touching the
    /// boundary counts as crossing.
    pub fn intersects_segment(&self, a: Vec3, b: Vec3) -> bool {
        segment_intersects_aabb(a, b, &self.slab)
    }
}

/// Whether segment `a → b` intersects the box (inclusive boundary).
pub fn segment_intersects_aabb(a: Vec3, b: Vec3, aabb: &Aabb) -> bool {
    let dir = b - a;
    let mut t_min = 0.0f64;
    let mut t_max = 1.0f64;
    let lo = aabb.min();
    let hi = aabb.max();
    for axis in 0..3 {
        let (o, d, lo_a, hi_a) = match axis {
            0 => (a.x, dir.x, lo.x, hi.x),
            1 => (a.y, dir.y, lo.y, hi.y),
            _ => (a.z, dir.z, lo.z, hi.z),
        };
        if d.abs() < 1e-12 {
            // Parallel to the slab on this axis: must already be inside it.
            if o < lo_a || o > hi_a {
                return false;
            }
        } else {
            let inv = 1.0 / d;
            let (t1, t2) = ((lo_a - o) * inv, (hi_a - o) * inv);
            let (t1, t2) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
            t_min = t_min.max(t1);
            t_max = t_max.min(t2);
            if t_min > t_max {
                return false;
            }
        }
    }
    true
}

/// Sums the attenuation of every wall the `a → b` ray traverses.
pub fn total_wall_loss_db(walls: &[Wall], a: Vec3, b: Vec3) -> f64 {
    walls
        .iter()
        .filter(|w| w.intersects_segment(a, b))
        .map(|w| w.attenuation_db)
        .sum()
}

/// Counts how many walls the `a → b` ray traverses.
pub fn wall_crossings(walls: &[Wall], a: Vec3, b: Vec3) -> usize {
    walls.iter().filter(|w| w.intersects_segment(a, b)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slab_x(at: f64, thickness: f64) -> Aabb {
        Aabb::new(
            Vec3::new(at, -10.0, -10.0),
            Vec3::new(at + thickness, 10.0, 10.0),
        )
        .expect("valid slab")
    }

    #[test]
    fn segment_through_slab_detected() {
        let w = Wall::from_material(slab_x(1.0, 0.2), Material::Brick, "wall");
        assert!(w.intersects_segment(Vec3::ZERO, Vec3::new(3.0, 0.0, 0.0)));
        assert!(!w.intersects_segment(Vec3::ZERO, Vec3::new(0.9, 0.0, 0.0)));
        // Reversed direction also intersects.
        assert!(w.intersects_segment(Vec3::new(3.0, 0.0, 0.0), Vec3::ZERO));
    }

    #[test]
    fn segment_parallel_outside_misses() {
        let w = Wall::from_material(slab_x(1.0, 0.2), Material::Brick, "wall");
        // Runs parallel to the slab plane, beyond its y extent.
        assert!(!w.intersects_segment(Vec3::new(1.1, 20.0, 0.0), Vec3::new(1.1, 30.0, 0.0)));
        // Parallel but inside the slab.
        assert!(w.intersects_segment(Vec3::new(1.1, -1.0, 0.0), Vec3::new(1.1, 1.0, 0.0)));
    }

    #[test]
    fn segment_endpoint_inside_counts() {
        let w = Wall::from_material(slab_x(1.0, 0.5), Material::Drywall, "wall");
        assert!(w.intersects_segment(Vec3::new(1.2, 0.0, 0.0), Vec3::new(5.0, 0.0, 0.0)));
    }

    #[test]
    fn diagonal_segment() {
        let w = Wall::from_material(slab_x(1.0, 0.1), Material::Glass, "window");
        assert!(w.intersects_segment(Vec3::new(0.0, -5.0, -5.0), Vec3::new(2.0, 5.0, 5.0)));
        // A diagonal that passes around the slab's y-extent.
        let w_small = Wall {
            slab: Aabb::new(Vec3::new(1.0, -1.0, -1.0), Vec3::new(1.1, 1.0, 1.0)).unwrap(),
            attenuation_db: 3.0,
            label: "small".into(),
        };
        assert!(!w_small.intersects_segment(Vec3::new(0.0, 5.0, 0.0), Vec3::new(2.0, 5.1, 0.0)));
    }

    #[test]
    fn total_loss_sums_crossed_walls() {
        let walls = vec![
            Wall::from_material(slab_x(1.0, 0.1), Material::Brick, "w1"),
            Wall::from_material(slab_x(2.0, 0.1), Material::Drywall, "w2"),
            Wall::from_material(slab_x(50.0, 0.1), Material::Brick, "far"),
        ];
        let loss = total_wall_loss_db(&walls, Vec3::ZERO, Vec3::new(3.0, 0.0, 0.0));
        assert_eq!(loss, 9.0);
        assert_eq!(wall_crossings(&walls, Vec3::ZERO, Vec3::new(3.0, 0.0, 0.0)), 2);
        assert_eq!(total_wall_loss_db(&walls, Vec3::ZERO, Vec3::new(0.5, 0.0, 0.0)), 0.0);
    }

    #[test]
    fn material_attenuations_ordered() {
        assert!(Material::Glass.attenuation_db() < Material::Drywall.attenuation_db());
        assert!(Material::Drywall.attenuation_db() < Material::Brick.attenuation_db());
        assert!(Material::Brick.attenuation_db() < Material::ThickMasonry.attenuation_db());
        assert!(Material::ThickMasonry.attenuation_db() < Material::ConcreteFloor.attenuation_db());
    }

    #[test]
    fn degenerate_segment_inside_slab() {
        let w = Wall::from_material(slab_x(1.0, 0.5), Material::Brick, "wall");
        let p = Vec3::new(1.2, 0.0, 0.0);
        assert!(w.intersects_segment(p, p));
        let outside = Vec3::new(9.0, 0.0, 0.0);
        assert!(!w.intersects_segment(outside, outside));
    }
}
