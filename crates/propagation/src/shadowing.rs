//! Spatially correlated log-normal shadowing.
//!
//! Indoor shadow fading is not i.i.d.: samples taken decimeters apart see
//! nearly the same obstruction pattern (Gudmundson's exponential-correlation
//! model). This matters for the reproduction — the paper's kNN regressor
//! only beats the per-MAC-mean baseline *because* nearby RSS samples are
//! correlated. We realize the field as deterministic lattice Gaussian noise
//! with trilinear interpolation:
//!
//! * a lattice with spacing equal to the decorrelation distance carries one
//!   `N(0, σ²)` value per node, derived by hashing `(field seed, AP seed,
//!   node coords)` — no storage, infinite extent, fully reproducible;
//! * between nodes the value is the trilinearly interpolated combination,
//!   renormalized so the marginal variance stays `σ²` everywhere;
//! * each AP gets an independent field via its `ap_seed`.

use serde::{Deserialize, Serialize};

use aerorem_spatial::Vec3;

/// A deterministic, spatially correlated Gaussian field in dB.
///
/// # Examples
///
/// ```
/// use aerorem_propagation::shadowing::ShadowingField;
/// use aerorem_spatial::Vec3;
///
/// let field = ShadowingField::new(4.0, 2.0, 99);
/// let a = field.sample(1, Vec3::ZERO);
/// let b = field.sample(1, Vec3::new(0.05, 0.0, 0.0)); // 5 cm away
/// assert!((a - b).abs() < 1.0, "nearby samples are strongly correlated");
/// assert_eq!(a, field.sample(1, Vec3::ZERO), "deterministic");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowingField {
    sigma_db: f64,
    correlation_m: f64,
    seed: u64,
}

impl ShadowingField {
    /// Creates a field with standard deviation `sigma_db` (dB), lattice
    /// spacing / decorrelation distance `correlation_m` (meters), and a
    /// global seed.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma_db >= 0` and `correlation_m > 0`.
    pub fn new(sigma_db: f64, correlation_m: f64, seed: u64) -> Self {
        assert!(sigma_db >= 0.0 && sigma_db.is_finite(), "sigma must be >= 0");
        assert!(
            correlation_m > 0.0 && correlation_m.is_finite(),
            "correlation distance must be positive"
        );
        ShadowingField {
            sigma_db,
            correlation_m,
            seed,
        }
    }

    /// The field's standard deviation in dB.
    pub fn sigma_db(&self) -> f64 {
        self.sigma_db
    }

    /// The decorrelation distance in meters.
    pub fn correlation_m(&self) -> f64 {
        self.correlation_m
    }

    /// Samples the field for the AP identified by `ap_seed` at point `p`.
    ///
    /// The result is `N(0, σ²)`-distributed over space, continuous in `p`,
    /// and identical for identical arguments.
    pub fn sample(&self, ap_seed: u64, p: Vec3) -> f64 {
        if self.sigma_db == 0.0 {
            return 0.0;
        }
        let s = self.correlation_m;
        let gx = p.x / s;
        let gy = p.y / s;
        let gz = p.z / s;
        let ix = gx.floor() as i64;
        let iy = gy.floor() as i64;
        let iz = gz.floor() as i64;
        let fx = gx - ix as f64;
        let fy = gy - iy as f64;
        let fz = gz - iz as f64;

        let mut acc = 0.0;
        let mut w2 = 0.0;
        for dz in 0..2i64 {
            for dy in 0..2i64 {
                for dx in 0..2i64 {
                    let w = (if dx == 0 { 1.0 - fx } else { fx })
                        * (if dy == 0 { 1.0 - fy } else { fy })
                        * (if dz == 0 { 1.0 - fz } else { fz });
                    if w == 0.0 {
                        continue;
                    }
                    let g = self.node_gaussian(ap_seed, ix + dx, iy + dy, iz + dz);
                    acc += w * g;
                    w2 += w * w;
                }
            }
        }
        // Renormalize so the marginal stays N(0, sigma²) at every point.
        self.sigma_db * acc / w2.sqrt()
    }

    /// The `N(0, 1)` value attached to a lattice node.
    fn node_gaussian(&self, ap_seed: u64, ix: i64, iy: i64, iz: i64) -> f64 {
        let mut h = self.seed ^ ap_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h = splitmix64(h ^ (ix as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        h = splitmix64(h ^ (iy as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
        h = splitmix64(h ^ (iz as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93));
        let u1 = to_unit_open(splitmix64(h));
        let u2 = to_unit_open(splitmix64(h ^ 0xA5A5_A5A5_A5A5_A5A5));
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// SplitMix64 — a tiny, high-quality 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a u64 to (0, 1], suitable for `ln`.
fn to_unit_open(x: u64) -> f64 {
    ((x >> 11) as f64 + 1.0) / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> ShadowingField {
        ShadowingField::new(4.0, 2.0, 0xF1E1D)
    }

    #[test]
    fn deterministic() {
        let f = field();
        let p = Vec3::new(1.234, -5.678, 0.9);
        assert_eq!(f.sample(42, p), f.sample(42, p));
    }

    #[test]
    fn different_aps_get_independent_fields() {
        let f = field();
        let p = Vec3::new(3.0, 3.0, 1.0);
        assert_ne!(f.sample(1, p), f.sample(2, p));
    }

    #[test]
    fn zero_sigma_is_identically_zero() {
        let f = ShadowingField::new(0.0, 2.0, 7);
        assert_eq!(f.sample(1, Vec3::new(9.0, 9.0, 9.0)), 0.0);
    }

    #[test]
    fn marginal_moments_are_correct() {
        // Sample at well-separated (decorrelated) points and check N(0, σ²).
        let f = field();
        let mut xs = Vec::new();
        for i in 0..40 {
            for j in 0..40 {
                // 10 m spacing = 5 correlation lengths apart.
                xs.push(f.sample(3, Vec3::new(i as f64 * 10.0, j as f64 * 10.0, 0.0)));
            }
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!(mean.abs() < 0.3, "mean {mean}");
        assert!((var.sqrt() - 4.0).abs() < 0.4, "std {}", var.sqrt());
    }

    #[test]
    fn variance_constant_within_cell() {
        // The renormalization should keep σ constant at cell centers too,
        // where naive trilinear interpolation would dip.
        let f = field();
        let mut xs = Vec::new();
        for i in 0..1600 {
            // Sample at cell centers of decorrelated cells.
            let base = i as f64 * 10.0;
            xs.push(f.sample(4, Vec3::new(base + 1.0, base * 0.5 + 1.0, 1.0)));
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert!((var.sqrt() - 4.0).abs() < 0.4, "std {}", var.sqrt());
    }

    #[test]
    fn nearby_points_strongly_correlated() {
        let f = field();
        let mut num = 0.0;
        let mut den_a = 0.0;
        let mut den_b = 0.0;
        // Estimate correlation at 10 cm lag (correlation length is 2 m).
        let pairs: Vec<(f64, f64)> = (0..2000)
            .map(|i| {
                let p = Vec3::new((i % 50) as f64 * 7.0, (i / 50) as f64 * 7.0, 1.0);
                let a = f.sample(5, p);
                let b = f.sample(5, p + Vec3::new(0.1, 0.0, 0.0));
                (a, b)
            })
            .collect();
        let ma = pairs.iter().map(|p| p.0).sum::<f64>() / pairs.len() as f64;
        let mb = pairs.iter().map(|p| p.1).sum::<f64>() / pairs.len() as f64;
        for (a, b) in &pairs {
            num += (a - ma) * (b - mb);
            den_a += (a - ma).powi(2);
            den_b += (b - mb).powi(2);
        }
        let corr = num / (den_a * den_b).sqrt();
        assert!(corr > 0.9, "correlation at 0.1 m lag was {corr}");
    }

    #[test]
    fn distant_points_decorrelated() {
        let f = field();
        let pairs: Vec<(f64, f64)> = (0..2000)
            .map(|i| {
                let p = Vec3::new((i % 50) as f64 * 9.0, (i / 50) as f64 * 9.0, 1.0);
                let a = f.sample(6, p);
                let b = f.sample(6, p + Vec3::new(200.0, 0.0, 0.0));
                (a, b)
            })
            .collect();
        let ma = pairs.iter().map(|p| p.0).sum::<f64>() / pairs.len() as f64;
        let mb = pairs.iter().map(|p| p.1).sum::<f64>() / pairs.len() as f64;
        let mut num = 0.0;
        let mut den_a = 0.0;
        let mut den_b = 0.0;
        for (a, b) in &pairs {
            num += (a - ma) * (b - mb);
            den_a += (a - ma).powi(2);
            den_b += (b - mb).powi(2);
        }
        let corr = num / (den_a * den_b).sqrt();
        assert!(corr.abs() < 0.1, "correlation at 200 m lag was {corr}");
    }

    #[test]
    fn continuous_across_cell_boundaries() {
        let f = field();
        // Step across a lattice node (x = 2.0 with spacing 2.0) in tiny steps.
        let eps = 1e-6;
        let a = f.sample(7, Vec3::new(2.0 - eps, 0.5, 0.5));
        let b = f.sample(7, Vec3::new(2.0 + eps, 0.5, 0.5));
        assert!((a - b).abs() < 1e-3, "discontinuity at node: {a} vs {b}");
    }

    #[test]
    fn negative_coordinates_work() {
        let f = field();
        let v = f.sample(8, Vec3::new(-13.7, -0.2, -5.0));
        assert!(v.is_finite());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_correlation_distance_panics() {
        ShadowingField::new(4.0, 0.0, 1);
    }
}
