//! The beacon-scan model: what an `AT+CWLAP` sweep observes.
//!
//! The ESP-01 dwells on each 2.4 GHz channel in turn, collecting beacon
//! frames. An AP is *detected* on a channel when at least one of its beacons
//! arrives with enough SNR over the effective noise (thermal floor plus any
//! Crazyradio interference — see [`crate::interference`]). Detection of
//! marginal APs is therefore probabilistic, which is exactly what produces
//! the paper's per-location sample-count variation (Figures 6–7) and the
//! interference collapse (Figure 5).

use rand::Rng;
use serde::{Deserialize, Serialize};

use aerorem_numerics::dist;
use aerorem_spatial::Vec3;

use crate::ap::{MacAddress, Ssid};
use crate::channel::WifiChannel;
use crate::environment::RadioEnvironment;
use crate::interference::{combined_noise_dbm, InterferenceSource};

/// One row of a scan result — the paper's
/// `⟨ssid, rssi, mac, channel⟩` tuple (§III-A).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BeaconObservation {
    /// Network name as advertised.
    pub ssid: Ssid,
    /// Reported RSS in whole dBm (the ESP8266 reports integers).
    pub rssi_dbm: i32,
    /// Transmitter MAC address.
    pub mac: MacAddress,
    /// Channel the AP was heard on.
    pub channel: WifiChannel,
}

/// Configuration of one AP scan sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanConfig {
    /// Channels visited, in order. Defaults to 1–13.
    pub channels: Vec<WifiChannel>,
    /// Dwell time per channel in milliseconds. The paper's ~2 s sweep over
    /// 13 channels gives 150-175 ms per channel.
    pub dwell_ms: f64,
    /// Minimum SNR (dB) at which a beacon is decodable with 50 %
    /// probability.
    pub snr_threshold_db: f64,
    /// Softness (dB) of the detection roll-off around the threshold.
    pub snr_slope_db: f64,
}

impl ScanConfig {
    /// The paper-like default: all 13 EU channels, 175 ms dwell (a ~2.3 s
    /// sweep, matching the paper's \"around 2 sec\" scan), 6 dB threshold
    /// with 2 dB roll-off.
    pub fn paper_default() -> Self {
        ScanConfig {
            channels: WifiChannel::all().collect(),
            dwell_ms: 175.0,
            snr_threshold_db: 6.0,
            snr_slope_db: 2.0,
        }
    }

    /// Total sweep duration in milliseconds.
    pub fn duration_ms(&self) -> f64 {
        self.dwell_ms * self.channels.len() as f64
    }

    /// Probability of decoding a single beacon at the given SNR.
    pub fn decode_probability(&self, snr_db: f64) -> f64 {
        let x = (snr_db - self.snr_threshold_db) / self.snr_slope_db.max(1e-6);
        1.0 / (1.0 + (-x).exp())
    }
}

impl Default for ScanConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Performs one AP scan sweep at `pos` against the environment, with the
/// given active interferers (the Crazyradio, when it was not turned off).
///
/// Returns one [`BeaconObservation`] per *detected* AP, in channel order.
/// The reported RSSI is the strongest decoded beacon of the dwell, rounded
/// to whole dBm — matching ESP8266 `AT+CWLAP` output.
pub fn perform_scan<R: Rng + ?Sized>(
    env: &RadioEnvironment,
    pos: Vec3,
    interferers: &[InterferenceSource],
    config: &ScanConfig,
    rng: &mut R,
) -> Vec<BeaconObservation> {
    let mut out = Vec::new();
    for &channel in &config.channels {
        let noise = combined_noise_dbm(interferers, channel, pos, env.noise_floor_dbm());
        for ap in env.access_points() {
            if ap.channel != channel {
                continue;
            }
            // Expected beacons during the dwell; arrival is Poisson since
            // the dwell window is unsynchronized with the beacon schedule.
            let lambda = config.dwell_ms / ap.beacon_interval_ms;
            let n_beacons = dist::poisson(rng, lambda);
            let mut best: Option<f64> = None;
            for _ in 0..n_beacons {
                let rss = env.sample_rss(ap, pos, rng);
                let p = config.decode_probability(rss - noise);
                if dist::bernoulli(rng, p) {
                    best = Some(best.map_or(rss, |b: f64| b.max(rss)));
                }
            }
            if let Some(rss) = best {
                out.push(BeaconObservation {
                    ssid: ap.ssid.clone(),
                    rssi_dbm: rss.round() as i32,
                    mac: ap.mac,
                    channel,
                });
            }
        }
    }
    out
}

/// Counts detected APs per channel — the quantity plotted in Figure 5.
///
/// Returns a `(channel, count)` pair for every channel in `config`, in
/// order, including zero-count channels.
pub fn detections_per_channel(
    observations: &[BeaconObservation],
    config: &ScanConfig,
) -> Vec<(WifiChannel, usize)> {
    config
        .channels
        .iter()
        .map(|&ch| {
            let n = observations.iter().filter(|o| o.channel == ch).count();
            (ch, n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ap::AccessPoint;
    use crate::environment::RadioEnvironmentBuilder;
    use crate::fading::FadingModel;
    use crate::shadowing::ShadowingField;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5CA9)
    }

    fn env_with(aps: Vec<AccessPoint>) -> RadioEnvironment {
        RadioEnvironmentBuilder::new()
            .access_points(aps)
            .shadowing(ShadowingField::new(0.0, 2.0, 1))
            .fading(FadingModel::None)
            .build()
    }

    fn strong_ap(ch: u8, idx: u32) -> AccessPoint {
        AccessPoint::new(
            MacAddress::from_index(idx),
            Ssid::new(format!("net-{idx}")),
            WifiChannel::new(ch).unwrap(),
            17.0,
            Vec3::new(4.0, 0.0, 1.5),
        )
    }

    fn weak_ap(ch: u8, idx: u32) -> AccessPoint {
        AccessPoint::new(
            MacAddress::from_index(idx),
            Ssid::new(format!("weak-{idx}")),
            WifiChannel::new(ch).unwrap(),
            // At ~59 m with exponent 3: RSS ≈ 17 − 40 − 53 ≈ −76… push
            // farther via low tx power to sit below the noise floor.
            -45.0,
            Vec3::new(40.0, 0.0, 1.5),
        )
    }

    #[test]
    fn strong_ap_always_detected() {
        let env = env_with(vec![strong_ap(6, 1)]);
        let cfg = ScanConfig::paper_default();
        let mut r = rng();
        let mut hits = 0;
        for _ in 0..20 {
            let obs = perform_scan(&env, Vec3::ZERO, &[], &cfg, &mut r);
            hits += usize::from(!obs.is_empty());
        }
        // The only way to miss is a zero-beacon Poisson draw (~22 %/dwell).
        assert!(hits >= 12, "strong AP detected only {hits}/20");
    }

    #[test]
    fn below_floor_ap_never_detected() {
        let env = env_with(vec![weak_ap(6, 1)]);
        let cfg = ScanConfig::paper_default();
        let mut r = rng();
        for _ in 0..20 {
            assert!(perform_scan(&env, Vec3::ZERO, &[], &cfg, &mut r).is_empty());
        }
    }

    #[test]
    fn observation_reports_correct_tuple() {
        let env = env_with(vec![strong_ap(11, 7)]);
        let cfg = ScanConfig::paper_default();
        let mut r = rng();
        let obs = loop {
            let o = perform_scan(&env, Vec3::ZERO, &[], &cfg, &mut r);
            if !o.is_empty() {
                break o;
            }
        };
        assert_eq!(obs[0].mac, MacAddress::from_index(7));
        assert_eq!(obs[0].channel, WifiChannel::new(11).unwrap());
        assert_eq!(obs[0].ssid.as_str(), "net-7");
        // tx 17 dBm at 4.27 m, n=3: about −5 to −25 dBm region.
        assert!(obs[0].rssi_dbm < 0 && obs[0].rssi_dbm > -60);
    }

    #[test]
    fn scan_skips_other_channels() {
        let env = env_with(vec![strong_ap(6, 1)]);
        let cfg = ScanConfig {
            channels: vec![WifiChannel::new(1).unwrap()],
            ..ScanConfig::paper_default()
        };
        let mut r = rng();
        assert!(perform_scan(&env, Vec3::ZERO, &[], &cfg, &mut r).is_empty());
    }

    #[test]
    fn interference_suppresses_marginal_ap() {
        // An AP ~15 dB above the floor: detected cleanly without
        // interference, lost under a co-channel Crazyradio.
        let marginal = AccessPoint::new(
            MacAddress::from_index(3),
            "marginal".into(),
            WifiChannel::new(6).unwrap(),
            -18.0, // RSS at 4.3 m ≈ −77 dBm → SNR ≈ 18 dB
            Vec3::new(4.0, 0.0, 1.5),
        );
        let env = env_with(vec![marginal]);
        let cfg = ScanConfig::paper_default();
        let mut r = rng();
        let clean: usize = (0..30)
            .map(|_| perform_scan(&env, Vec3::ZERO, &[], &cfg, &mut r).len())
            .sum();
        let radio =
            InterferenceSource::crazyradio(2437.0, Vec3::new(-2.0, 1.0, 0.8)).unwrap();
        let jammed: usize = (0..30)
            .map(|_| perform_scan(&env, Vec3::ZERO, &[radio], &cfg, &mut r).len())
            .sum();
        assert!(clean >= 20, "clean detections {clean}/30");
        assert_eq!(jammed, 0, "co-channel interference should wipe it out");
    }

    #[test]
    fn detections_per_channel_counts() {
        let obs = vec![
            BeaconObservation {
                ssid: "a".into(),
                rssi_dbm: -50,
                mac: MacAddress::from_index(1),
                channel: WifiChannel::new(1).unwrap(),
            },
            BeaconObservation {
                ssid: "b".into(),
                rssi_dbm: -60,
                mac: MacAddress::from_index(2),
                channel: WifiChannel::new(1).unwrap(),
            },
            BeaconObservation {
                ssid: "c".into(),
                rssi_dbm: -70,
                mac: MacAddress::from_index(3),
                channel: WifiChannel::new(6).unwrap(),
            },
        ];
        let cfg = ScanConfig::paper_default();
        let counts = detections_per_channel(&obs, &cfg);
        assert_eq!(counts.len(), 13);
        assert_eq!(counts[0], (WifiChannel::new(1).unwrap(), 2));
        assert_eq!(counts[5], (WifiChannel::new(6).unwrap(), 1));
        assert_eq!(counts[12].1, 0);
    }

    #[test]
    fn decode_probability_is_sigmoid() {
        let cfg = ScanConfig::paper_default();
        assert!((cfg.decode_probability(cfg.snr_threshold_db) - 0.5).abs() < 1e-9);
        assert!(cfg.decode_probability(30.0) > 0.999);
        assert!(cfg.decode_probability(-20.0) < 0.001);
        // Monotone.
        assert!(cfg.decode_probability(6.0) > cfg.decode_probability(2.0));
    }

    #[test]
    fn duration_scales_with_channels() {
        let cfg = ScanConfig::paper_default();
        assert!((cfg.duration_ms() - 13.0 * cfg.dwell_ms).abs() < 1e-9);
    }

    #[test]
    fn longer_dwell_improves_marginal_detection() {
        // With fading on, a weak AP is found more often when dwelling longer.
        let marginal = AccessPoint::new(
            MacAddress::from_index(4),
            "m".into(),
            WifiChannel::new(6).unwrap(),
            -31.0, // RSS ≈ −90 dBm → SNR ≈ 5 dB, right at the edge
            Vec3::new(4.0, 0.0, 1.5),
        );
        let env = RadioEnvironmentBuilder::new()
            .access_point(marginal)
            .shadowing(ShadowingField::new(0.0, 2.0, 1))
            .fading(FadingModel::rayleigh())
            .build();
        let mut r = rng();
        let rate = |dwell: f64, r: &mut StdRng| {
            let cfg = ScanConfig {
                dwell_ms: dwell,
                ..ScanConfig::paper_default()
            };
            (0..200)
                .filter(|_| !perform_scan(&env, Vec3::ZERO, &[], &cfg, r).is_empty())
                .count() as f64
                / 200.0
        };
        let short = rate(60.0, &mut r);
        let long = rate(600.0, &mut r);
        assert!(long > short, "long dwell {long} <= short {short}");
    }
}
