//! In-band interference: the Crazyradio ↔ Wi-Fi-scan coupling of Figure 5.
//!
//! The Crazyradio is an nRF24LU1 with a power amplifier (up to +20 dBm)
//! sitting at the base station a couple of meters from the scanning UAV.
//! Figure 5 of the paper shows that while it transmits, the ESP8266 detects
//! far fewer APs — *irrespective of the Crazyradio frequency*. Two physical
//! effects produce that shape, and both are modeled here:
//!
//! 1. **Co-channel energy**: the 2 MHz GFSK carrier raises the noise floor
//!    of any Wi-Fi channel whose 22 MHz band it falls into, scaled by the
//!    spectral overlap fraction. This wipes out detections on the 4–5
//!    channels near the carrier.
//! 2. **Receiver desensitization (blocking)**: a strong in-band signal
//!    compresses the ESP8266's low-cost front end, raising its effective
//!    noise figure on *every* channel. This is why even a 2525 MHz carrier
//!    (above all Wi-Fi channels) still suppresses detections.

use serde::{Deserialize, Serialize};

use aerorem_spatial::Vec3;

use crate::channel::{NrfChannel, WifiChannel};
use crate::pathloss::free_space_db;

/// Converts dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts milliwatts to dBm.
///
/// Zero or negative power maps to −∞ represented as −400 dBm.
pub fn mw_to_dbm(mw: f64) -> f64 {
    if mw <= 0.0 {
        -400.0
    } else {
        10.0 * mw.log10()
    }
}

/// Power-sums a set of dBm levels (linear-domain addition).
pub fn power_sum_dbm(levels: &[f64]) -> f64 {
    mw_to_dbm(levels.iter().map(|&l| dbm_to_mw(l)).sum())
}

/// A continuous-wave-ish in-band interferer (the Crazyradio while polling).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceSource {
    /// Carrier channel on the nRF24 grid.
    pub carrier: NrfChannel,
    /// Transmit power in dBm (Crazyradio PA: up to +20 dBm).
    pub tx_power_dbm: f64,
    /// Transmitter position in the scan-volume frame (meters).
    pub position: Vec3,
    /// Fraction of time the carrier is on the air, `(0, 1]`. CRTP polls
    /// continuously, so the paper's setup is near 1.
    pub duty_cycle: f64,
}

impl InterferenceSource {
    /// A Crazyradio-like interferer at the given frequency and position:
    /// +20 dBm PA, 90 % polling duty cycle.
    ///
    /// Returns `None` when the frequency is outside 2400–2525 MHz.
    pub fn crazyradio(freq_mhz: f64, position: Vec3) -> Option<Self> {
        Some(InterferenceSource {
            carrier: NrfChannel::at_mhz(freq_mhz)?,
            tx_power_dbm: 20.0,
            position,
            duty_cycle: 0.9,
        })
    }

    /// Mean interferer power arriving at `rx_pos` in dBm (free-space — the
    /// base station and UAV share the room), including the duty cycle.
    pub fn received_dbm(&self, rx_pos: Vec3) -> f64 {
        let d = self.position.distance(rx_pos);
        self.tx_power_dbm - free_space_db(d, self.carrier.center_mhz())
            + 10.0 * self.duty_cycle.clamp(1e-3, 1.0).log10()
    }

    /// Co-channel interference power injected into the given Wi-Fi channel
    /// at `rx_pos`, in dBm. Returns `None` when the carrier does not overlap
    /// the channel at all.
    pub fn co_channel_dbm(&self, channel: WifiChannel, rx_pos: Vec3) -> Option<f64> {
        let overlap = self.carrier.wifi_overlap_fraction(channel);
        if overlap <= 0.0 {
            return None;
        }
        // The receiver integrates the full carrier power whenever the
        // carrier lies inside the channel band; the overlap fraction only
        // discounts partial straddling at band edges.
        let edge_discount = 10.0 * (overlap / (NrfChannel::BANDWIDTH_MHZ / 22.0)).min(1.0).log10();
        Some(self.received_dbm(rx_pos) + edge_discount)
    }

    /// Front-end desensitization in dB suffered by a low-cost receiver at
    /// `rx_pos`, applied to **all** channels.
    ///
    /// Below the blocking threshold the effect is zero; above it the noise
    /// figure degrades at `BLOCKING_SLOPE` dB per dB, capped.
    pub fn desense_db(&self, rx_pos: Vec3) -> f64 {
        const BLOCKING_THRESHOLD_DBM: f64 = -45.0;
        const BLOCKING_SLOPE: f64 = 0.55;
        const BLOCKING_CAP_DB: f64 = 25.0;
        let rx = self.received_dbm(rx_pos);
        ((rx - BLOCKING_THRESHOLD_DBM) * BLOCKING_SLOPE).clamp(0.0, BLOCKING_CAP_DB)
    }

    /// Effective noise level (dBm) seen on `channel` at `rx_pos`, given the
    /// receiver's thermal `noise_floor_dbm`: co-channel energy power-summed
    /// with the floor, then raised by the blocking desense.
    pub fn effective_noise_dbm(
        &self,
        channel: WifiChannel,
        rx_pos: Vec3,
        noise_floor_dbm: f64,
    ) -> f64 {
        let mut levels = vec![noise_floor_dbm];
        if let Some(co) = self.co_channel_dbm(channel, rx_pos) {
            levels.push(co);
        }
        power_sum_dbm(&levels) + self.desense_db(rx_pos)
    }
}

/// Combines any number of interferers into the effective noise on a channel.
///
/// With no interferers this is just the thermal floor.
pub fn combined_noise_dbm(
    sources: &[InterferenceSource],
    channel: WifiChannel,
    rx_pos: Vec3,
    noise_floor_dbm: f64,
) -> f64 {
    let mut levels = vec![noise_floor_dbm];
    let mut desense = 0.0f64;
    for s in sources {
        if let Some(co) = s.co_channel_dbm(channel, rx_pos) {
            levels.push(co);
        }
        desense = desense.max(s.desense_db(rx_pos));
    }
    power_sum_dbm(&levels) + desense
}

#[cfg(test)]
mod tests {
    use super::*;

    const FLOOR: f64 = -95.0;

    fn radio_at(freq: f64) -> InterferenceSource {
        // Base station ~2.5 m from the scanner, like the paper's living room.
        InterferenceSource::crazyradio(freq, Vec3::new(-1.5, 2.0, 0.8)).unwrap()
    }

    fn rx() -> Vec3 {
        Vec3::new(1.87, 1.60, 1.05)
    }

    #[test]
    fn dbm_mw_round_trip() {
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(10.0) - 10.0).abs() < 1e-12);
        assert!((mw_to_dbm(1.0) - 0.0).abs() < 1e-12);
        assert_eq!(mw_to_dbm(0.0), -400.0);
        for dbm in [-90.0, -50.0, 0.0, 17.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn power_sum_doubling_adds_3db() {
        let s = power_sum_dbm(&[-70.0, -70.0]);
        assert!((s - (-70.0 + 10.0 * 2f64.log10())).abs() < 1e-9);
        assert_eq!(power_sum_dbm(&[-80.0]), -80.0);
        // A much weaker term barely changes the sum.
        assert!((power_sum_dbm(&[-60.0, -100.0]) - -60.0) < 0.01);
    }

    #[test]
    fn received_power_is_strong_at_room_range() {
        let r = radio_at(2450.0);
        let p = r.received_dbm(rx());
        // +20 dBm minus ~50 dB FSPL and duty-cycle discount: way above floor.
        assert!(p > -50.0 && p < 0.0, "got {p}");
    }

    #[test]
    fn co_channel_only_near_carrier() {
        let r = radio_at(2437.0); // center of channel 6
        assert!(r.co_channel_dbm(WifiChannel::new(6).unwrap(), rx()).is_some());
        assert!(r.co_channel_dbm(WifiChannel::new(1).unwrap(), rx()).is_none());
        // A 2500 MHz carrier overlaps no Wi-Fi channel.
        let hi = radio_at(2500.0);
        for ch in WifiChannel::all() {
            assert!(hi.co_channel_dbm(ch, rx()).is_none());
        }
    }

    #[test]
    fn desense_hits_all_channels() {
        let hi = radio_at(2500.0);
        let d = hi.desense_db(rx());
        assert!(d > 3.0, "desense should be material at room range, got {d}");
        // Far away the blocking vanishes.
        let far = InterferenceSource {
            position: Vec3::new(500.0, 0.0, 0.0),
            ..hi
        };
        assert_eq!(far.desense_db(rx()), 0.0);
    }

    #[test]
    fn effective_noise_ordering() {
        // Co-channel noise >> desense-only noise >> bare floor.
        let on_ch6 = radio_at(2437.0).effective_noise_dbm(WifiChannel::new(6).unwrap(), rx(), FLOOR);
        let off_band = radio_at(2500.0).effective_noise_dbm(WifiChannel::new(6).unwrap(), rx(), FLOOR);
        assert!(on_ch6 > off_band + 10.0, "co-channel {on_ch6} vs blocked {off_band}");
        assert!(off_band > FLOOR + 3.0);
    }

    #[test]
    fn combined_noise_no_sources_is_floor() {
        assert_eq!(
            combined_noise_dbm(&[], WifiChannel::new(6).unwrap(), rx(), FLOOR),
            FLOOR
        );
    }

    #[test]
    fn combined_noise_takes_worst_desense() {
        let near = radio_at(2500.0);
        let far = InterferenceSource {
            position: Vec3::new(50.0, 0.0, 0.0),
            ..near
        };
        let ch = WifiChannel::new(3).unwrap();
        let combined = combined_noise_dbm(&[far, near], ch, rx(), FLOOR);
        let near_only = combined_noise_dbm(&[near], ch, rx(), FLOOR);
        assert!((combined - near_only).abs() < 0.5);
    }

    #[test]
    fn crazyradio_rejects_out_of_band() {
        assert!(InterferenceSource::crazyradio(2390.0, Vec3::ZERO).is_none());
        assert!(InterferenceSource::crazyradio(2526.0, Vec3::ZERO).is_none());
        assert!(InterferenceSource::crazyradio(2400.0, Vec3::ZERO).is_some());
    }

    #[test]
    fn duty_cycle_scales_power() {
        let full = InterferenceSource {
            duty_cycle: 1.0,
            ..radio_at(2450.0)
        };
        let tenth = InterferenceSource {
            duty_cycle: 0.1,
            ..full
        };
        let diff = full.received_dbm(rx()) - tenth.received_dbm(rx());
        assert!((diff - 10.0).abs() < 1e-9);
    }
}
