//! IEEE 802.11b/g/n 2.4 GHz channelization and spectral-overlap math.
//!
//! The 2.4 GHz ISM band carries 13 usable Wi-Fi channels (Europe), 5 MHz
//! apart, each about 22 MHz wide — so neighbouring channels overlap heavily.
//! The Crazyradio's nRF24 chip, by contrast, uses 126 channels of 1 MHz
//! spacing from 2400 to 2525 MHz (§II-C). Both gridings meet here, since
//! Figure 5 is precisely about how an nRF24 carrier bleeds into Wi-Fi
//! channels.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Occupied bandwidth of one 802.11b/g channel in MHz.
pub const WIFI_CHANNEL_WIDTH_MHZ: f64 = 22.0;

/// Spacing between adjacent 2.4 GHz Wi-Fi channel centers in MHz.
pub const WIFI_CHANNEL_SPACING_MHZ: f64 = 5.0;

/// A 2.4 GHz Wi-Fi channel (1–13, the European allocation the paper's
/// Antwerp deployment sees).
///
/// # Examples
///
/// ```
/// use aerorem_propagation::WifiChannel;
///
/// let ch6 = WifiChannel::new(6).unwrap();
/// assert_eq!(ch6.center_mhz(), 2437.0);
/// assert!(ch6.overlaps(WifiChannel::new(8).unwrap()));
/// assert!(!ch6.overlaps(WifiChannel::new(11).unwrap()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WifiChannel(u8);

impl WifiChannel {
    /// The lowest valid channel number.
    pub const MIN: u8 = 1;
    /// The highest valid channel number (EU allocation).
    pub const MAX: u8 = 13;

    /// Creates a channel, returning `None` outside `1..=13`.
    pub fn new(number: u8) -> Option<Self> {
        (Self::MIN..=Self::MAX).contains(&number).then_some(WifiChannel(number))
    }

    /// The three non-overlapping channels commonly used by deployments.
    pub const PRIMARY: [WifiChannel; 3] = [WifiChannel(1), WifiChannel(6), WifiChannel(11)];

    /// All 13 channels in order.
    pub fn all() -> impl Iterator<Item = WifiChannel> {
        (Self::MIN..=Self::MAX).map(WifiChannel)
    }

    /// Channel number (1–13).
    pub fn number(self) -> u8 {
        self.0
    }

    /// Center frequency in MHz: `2407 + 5·n`.
    pub fn center_mhz(self) -> f64 {
        2407.0 + WIFI_CHANNEL_SPACING_MHZ * f64::from(self.0)
    }

    /// Lower band edge in MHz.
    pub fn low_mhz(self) -> f64 {
        self.center_mhz() - WIFI_CHANNEL_WIDTH_MHZ / 2.0
    }

    /// Upper band edge in MHz.
    pub fn high_mhz(self) -> f64 {
        self.center_mhz() + WIFI_CHANNEL_WIDTH_MHZ / 2.0
    }

    /// Whether two channels' occupied bands overlap.
    pub fn overlaps(self, other: WifiChannel) -> bool {
        self.overlap_fraction(other) > 0.0
    }

    /// Fraction of this channel's band covered by `other`'s band, in
    /// `[0, 1]`. Identical channels give 1.0; channels ≥ 5 apart give 0.0.
    pub fn overlap_fraction(self, other: WifiChannel) -> f64 {
        band_overlap_fraction(
            self.low_mhz(),
            self.high_mhz(),
            other.low_mhz(),
            other.high_mhz(),
        )
    }
}

impl fmt::Display for WifiChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl TryFrom<u8> for WifiChannel {
    type Error = InvalidChannel;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        WifiChannel::new(value).ok_or(InvalidChannel(value))
    }
}

impl From<WifiChannel> for u8 {
    fn from(ch: WifiChannel) -> u8 {
        ch.number()
    }
}

/// Error returned when a channel number is outside `1..=13`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidChannel(pub u8);

impl fmt::Display for InvalidChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid 2.4 GHz Wi-Fi channel number {}", self.0)
    }
}

impl std::error::Error for InvalidChannel {}

/// Fraction of band `[a_lo, a_hi]` covered by band `[b_lo, b_hi]`.
///
/// Returns 0 when the bands are disjoint or `a` is degenerate.
pub fn band_overlap_fraction(a_lo: f64, a_hi: f64, b_lo: f64, b_hi: f64) -> f64 {
    let width = a_hi - a_lo;
    if width <= 0.0 {
        return 0.0;
    }
    let lo = a_lo.max(b_lo);
    let hi = a_hi.min(b_hi);
    ((hi - lo).max(0.0) / width).min(1.0)
}

/// An nRF24 (Crazyradio) channel: 1 MHz spacing from 2400 MHz, numbers
/// 0–125 covering 2400–2525 MHz (§II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NrfChannel(u8);

impl NrfChannel {
    /// The highest valid nRF24 channel number.
    pub const MAX: u8 = 125;

    /// Occupied bandwidth of the nRF24 at 2 Mbps GFSK, in MHz.
    pub const BANDWIDTH_MHZ: f64 = 2.0;

    /// Creates a channel, returning `None` above 125.
    pub fn new(number: u8) -> Option<Self> {
        (number <= Self::MAX).then_some(NrfChannel(number))
    }

    /// The channel whose carrier sits at the given frequency, or `None`
    /// outside 2400–2525 MHz.
    pub fn at_mhz(freq_mhz: f64) -> Option<Self> {
        if !(2400.0..=2525.0).contains(&freq_mhz) {
            return None;
        }
        Some(NrfChannel((freq_mhz - 2400.0).round() as u8))
    }

    /// Channel number (0–125).
    pub fn number(self) -> u8 {
        self.0
    }

    /// Carrier frequency in MHz: `2400 + n`.
    pub fn center_mhz(self) -> f64 {
        2400.0 + f64::from(self.0)
    }

    /// Fraction of the given Wi-Fi channel's band that this carrier's
    /// occupied bandwidth covers, in `[0, 1]`. This is the co-channel
    /// coupling factor used by the Figure-5 interference model.
    pub fn wifi_overlap_fraction(self, wifi: WifiChannel) -> f64 {
        let half = Self::BANDWIDTH_MHZ / 2.0;
        band_overlap_fraction(
            wifi.low_mhz(),
            wifi.high_mhz(),
            self.center_mhz() - half,
            self.center_mhz() + half,
        )
    }
}

impl fmt::Display for NrfChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nrf{} ({} MHz)", self.0, self.center_mhz())
    }
}

/// The six Crazyradio test frequencies of Figure 5 (MHz).
pub const FIGURE5_NRF_FREQS_MHZ: [f64; 6] = [2400.0, 2425.0, 2450.0, 2475.0, 2500.0, 2525.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_construction_bounds() {
        assert!(WifiChannel::new(0).is_none());
        assert!(WifiChannel::new(1).is_some());
        assert!(WifiChannel::new(13).is_some());
        assert!(WifiChannel::new(14).is_none());
        assert!(WifiChannel::try_from(5).is_ok());
        assert!(WifiChannel::try_from(77).is_err());
        assert_eq!(u8::from(WifiChannel::new(9).unwrap()), 9);
    }

    #[test]
    fn known_center_frequencies() {
        assert_eq!(WifiChannel::new(1).unwrap().center_mhz(), 2412.0);
        assert_eq!(WifiChannel::new(6).unwrap().center_mhz(), 2437.0);
        assert_eq!(WifiChannel::new(11).unwrap().center_mhz(), 2462.0);
        assert_eq!(WifiChannel::new(13).unwrap().center_mhz(), 2472.0);
    }

    #[test]
    fn all_yields_thirteen() {
        assert_eq!(WifiChannel::all().count(), 13);
    }

    #[test]
    fn primary_channels_do_not_overlap() {
        for (i, a) in WifiChannel::PRIMARY.iter().enumerate() {
            for b in WifiChannel::PRIMARY.iter().skip(i + 1) {
                assert!(!a.overlaps(*b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn adjacent_channels_overlap_heavily() {
        let c6 = WifiChannel::new(6).unwrap();
        let c7 = WifiChannel::new(7).unwrap();
        let f = c6.overlap_fraction(c7);
        assert!(f > 0.7, "adjacent overlap was {f}");
        assert_eq!(c6.overlap_fraction(c6), 1.0);
        // Overlap is symmetric for equal-width bands.
        assert_eq!(f, c7.overlap_fraction(c6));
    }

    #[test]
    fn overlap_fraction_monotone_in_separation() {
        let base = WifiChannel::new(6).unwrap();
        let mut last = 1.1;
        for n in 6..=11 {
            let f = base.overlap_fraction(WifiChannel::new(n).unwrap());
            assert!(f <= last, "overlap must decrease with separation");
            last = f;
        }
        assert_eq!(base.overlap_fraction(WifiChannel::new(11).unwrap()), 0.0);
    }

    #[test]
    fn band_overlap_edge_cases() {
        assert_eq!(band_overlap_fraction(0.0, 10.0, 10.0, 20.0), 0.0);
        assert_eq!(band_overlap_fraction(0.0, 10.0, -5.0, 25.0), 1.0);
        assert_eq!(band_overlap_fraction(0.0, 0.0, -1.0, 1.0), 0.0);
        assert_eq!(band_overlap_fraction(0.0, 10.0, 5.0, 7.5), 0.25);
    }

    #[test]
    fn nrf_channel_numbers_and_freqs() {
        assert_eq!(NrfChannel::new(0).unwrap().center_mhz(), 2400.0);
        assert_eq!(NrfChannel::new(125).unwrap().center_mhz(), 2525.0);
        assert!(NrfChannel::new(126).is_none());
        assert_eq!(NrfChannel::at_mhz(2450.0).unwrap().number(), 50);
        assert!(NrfChannel::at_mhz(2399.0).is_none());
        assert!(NrfChannel::at_mhz(2526.0).is_none());
    }

    #[test]
    fn figure5_freqs_are_valid_nrf_channels() {
        for f in FIGURE5_NRF_FREQS_MHZ {
            assert!(NrfChannel::at_mhz(f).is_some(), "{f} MHz");
        }
    }

    #[test]
    fn nrf_in_band_hits_wifi_channel() {
        // 2437 MHz carrier sits in the middle of channel 6.
        let nrf = NrfChannel::at_mhz(2437.0).unwrap();
        let c6 = WifiChannel::new(6).unwrap();
        let f = nrf.wifi_overlap_fraction(c6);
        assert!(f > 0.0);
        // A 2 MHz carrier covers 2/22 of the Wi-Fi band.
        assert!((f - 2.0 / 22.0).abs() < 1e-9);
        // 2500 MHz is above every Wi-Fi channel.
        let hi = NrfChannel::at_mhz(2500.0).unwrap();
        for ch in WifiChannel::all() {
            assert_eq!(hi.wifi_overlap_fraction(ch), 0.0);
        }
    }

    #[test]
    fn displays() {
        assert_eq!(format!("{}", WifiChannel::new(6).unwrap()), "ch6");
        assert!(format!("{}", NrfChannel::new(50).unwrap()).contains("2450"));
        assert!(InvalidChannel(99).to_string().contains("99"));
    }
}
