//! Attitude (roll/pitch/yaw) and pose (position + yaw).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::vec3::Vec3;

/// Vehicle attitude as roll, pitch, yaw Euler angles in radians.
///
/// §II-C of the paper: when no setpoint is received for over 500 ms, the UAV
/// "will set its attitude angles (pitch, roll and yaw) to 0 in order to keep
/// itself stabilized" — i.e. it levels out to [`Attitude::LEVEL`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Attitude {
    /// Roll about the body x axis (radians).
    pub roll: f64,
    /// Pitch about the body y axis (radians).
    pub pitch: f64,
    /// Yaw about the body z axis (radians).
    pub yaw: f64,
}

impl Attitude {
    /// Level flight: all angles zero.
    pub const LEVEL: Attitude = Attitude {
        roll: 0.0,
        pitch: 0.0,
        yaw: 0.0,
    };

    /// Creates an attitude from roll, pitch, yaw in radians.
    pub const fn new(roll: f64, pitch: f64, yaw: f64) -> Self {
        Attitude { roll, pitch, yaw }
    }

    /// The tilt magnitude `sqrt(roll² + pitch²)`, a scalar measure of how far
    /// the vehicle is from level.
    pub fn tilt(self) -> f64 {
        (self.roll * self.roll + self.pitch * self.pitch).sqrt()
    }

    /// Whether the vehicle is within `tol` radians of level (yaw ignored).
    pub fn is_level(self, tol: f64) -> bool {
        self.roll.abs() <= tol && self.pitch.abs() <= tol
    }
}

impl fmt::Display for Attitude {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rpy({:.1}°, {:.1}°, {:.1}°)",
            self.roll.to_degrees(),
            self.pitch.to_degrees(),
            self.yaw.to_degrees()
        )
    }
}

/// A position plus heading, the unit the base station sends as a waypoint:
/// the paper's client configures per-UAV "starting position and yaw" (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose {
    /// Position in the volume frame (meters).
    pub position: Vec3,
    /// Heading in radians.
    pub yaw: f64,
}

impl Pose {
    /// Creates a pose from a position and yaw.
    pub const fn new(position: Vec3, yaw: f64) -> Self {
        Pose { position, yaw }
    }

    /// A pose at the given position with zero yaw.
    pub const fn at(position: Vec3) -> Self {
        Pose {
            position,
            yaw: 0.0,
        }
    }

    /// Euclidean distance between the positions of two poses.
    pub fn distance(self, other: Pose) -> f64 {
        self.position.distance(other.position)
    }

    /// Absolute yaw difference wrapped to `[0, π]`.
    pub fn yaw_error(self, other: Pose) -> f64 {
        let mut d = (self.yaw - other.yaw).rem_euclid(std::f64::consts::TAU);
        if d > std::f64::consts::PI {
            d = std::f64::consts::TAU - d;
        }
        d
    }
}

impl fmt::Display for Pose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} yaw {:.1}°", self.position, self.yaw.to_degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    #[test]
    fn level_attitude() {
        assert_eq!(Attitude::LEVEL.tilt(), 0.0);
        assert!(Attitude::LEVEL.is_level(1e-9));
        let tilted = Attitude::new(0.3, 0.4, 1.0);
        assert!((tilted.tilt() - 0.5).abs() < 1e-12);
        assert!(!tilted.is_level(0.1));
        // Yaw does not affect levelness.
        assert!(Attitude::new(0.0, 0.0, 2.0).is_level(1e-9));
    }

    #[test]
    fn pose_distance() {
        let a = Pose::at(Vec3::ZERO);
        let b = Pose::at(Vec3::new(0.0, 3.0, 4.0));
        assert_eq!(a.distance(b), 5.0);
    }

    #[test]
    fn yaw_error_wraps() {
        let a = Pose::new(Vec3::ZERO, 0.1);
        let b = Pose::new(Vec3::ZERO, TAU - 0.1);
        assert!((a.yaw_error(b) - 0.2).abs() < 1e-12);
        let c = Pose::new(Vec3::ZERO, PI + FRAC_PI_2);
        let d = Pose::new(Vec3::ZERO, 0.0);
        assert!((c.yaw_error(d) - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn displays() {
        assert!(format!("{}", Attitude::new(0.1, 0.2, 0.3)).contains("rpy"));
        assert!(format!("{}", Pose::at(Vec3::X)).contains("yaw"));
    }
}
