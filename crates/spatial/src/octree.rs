//! Octree/LOD index over a voxel lattice, for the REM serving layer.
//!
//! A loaded snapshot grid is a flat row-major `[z][y][x]` array of f64
//! values over an [`Aabb`]. [`VoxelLayout`] owns the world↔cell-index
//! math (shared with `RemGrid`'s nearest-cell sampling), and
//! [`VoxelOctree`] adds a hierarchy of per-node aggregates (finite
//! min/max/sum/count) over cell-index space so the heavy query shapes —
//! axis-aligned box statistics and coverage isosurfaces — prune whole
//! subtrees instead of scanning every voxel.
//!
//! The octree stores **no copy of the voxel values**: callers pass the
//! flat value slice to each query, so one index serves however the store
//! chooses to hold the data. Traversal order is fixed (children in
//! z-major, then y, then x order) and every accumulation runs in that
//! order, so a given query is bit-deterministic regardless of execution
//! policy. NaN voxels (e.g. padding) are treated as *missing*: they never
//! contribute to aggregates and never satisfy a coverage threshold.

use crate::aabb::Aabb;
use crate::vec3::Vec3;

/// Target maximum number of cells in a leaf node. Leaves this size keep
/// the tree shallow (good for point-in-node pruning) while bounding the
/// worst-case partial-overlap scan at a few cache lines of values.
const LEAF_CELLS: usize = 64;

/// Sentinel for "no child" in a node's child table.
const NO_CHILD: u32 = u32::MAX;

/// World↔cell-index math for a regular voxel lattice over a volume.
///
/// Flat index `i` maps to `ix = i % nx`, `iy = (i / nx) % ny`,
/// `iz = i / (nx * ny)` — identical to `RemGrid`'s row-major `[z][y][x]`
/// layout and to the snapshot payload order (`docs/SNAPSHOT_FORMAT.md`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoxelLayout {
    volume: Aabb,
    dims: (usize, usize, usize),
}

impl VoxelLayout {
    /// Creates a layout; `None` when any dimension is zero or the total
    /// cell count overflows.
    pub fn new(volume: Aabb, dims: (usize, usize, usize)) -> Option<Self> {
        let (nx, ny, nz) = dims;
        if nx == 0 || ny == 0 || nz == 0 {
            return None;
        }
        nx.checked_mul(ny)?.checked_mul(nz)?;
        Some(VoxelLayout { volume, dims })
    }

    /// The indexed volume.
    pub fn volume(&self) -> Aabb {
        self.volume
    }

    /// Lattice dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.dims.0 * self.dims.1 * self.dims.2
    }

    /// Flat index of the cell containing (or nearest to) `p`, or `None`
    /// when `p` lies outside the volume. Boundary-inclusive, matching
    /// `RemGrid::sample`.
    pub fn cell_index_of(&self, p: Vec3) -> Option<usize> {
        if !self.volume.contains(p) {
            return None;
        }
        let (nx, ny, nz) = self.dims;
        let lo = self.volume.min();
        let size = self.volume.size();
        let clamp_idx = |t: f64, n: usize| ((t * n as f64) as usize).min(n - 1);
        let ix = clamp_idx((p.x - lo.x) / size.x, nx);
        let iy = clamp_idx((p.y - lo.y) / size.y, ny);
        let iz = clamp_idx((p.z - lo.z) / size.z, nz);
        Some(iz * nx * ny + iy * nx + ix)
    }

    /// `(ix, iy, iz)` coordinates of flat index `i`.
    pub fn cell_coords(&self, i: usize) -> (usize, usize, usize) {
        let (nx, ny, _) = self.dims;
        (i % nx, (i / nx) % ny, i / (nx * ny))
    }

    /// Center position of flat cell `i`.
    pub fn cell_center(&self, i: usize) -> Vec3 {
        let (nx, ny, nz) = self.dims;
        let (ix, iy, iz) = self.cell_coords(i);
        self.volume.lerp_point(
            (ix as f64 + 0.5) / nx as f64,
            (iy as f64 + 0.5) / ny as f64,
            (iz as f64 + 0.5) / nz as f64,
        )
    }

    /// Inclusive cell-index range per axis of the cells whose **centers**
    /// fall inside `query`, or `None` when no cell center does.
    ///
    /// Center-in-box is the documented box-query semantic: it makes a
    /// cell belong to exactly one of two adjacent abutting query boxes.
    pub fn index_range(&self, query: &Aabb) -> Option<CellRange> {
        if !self.volume.intersects(query) {
            return None;
        }
        let lo = self.volume.min();
        let size = self.volume.size();
        let (nx, ny, nz) = self.dims;
        let axis = |qmin: f64, qmax: f64, vmin: f64, vsize: f64, n: usize| {
            let cell = vsize / n as f64;
            // Smallest ix with center >= qmin; center(ix) = vmin + (ix+0.5)*cell.
            let first = ((qmin - vmin) / cell - 0.5).ceil().max(0.0) as usize;
            let last_f = ((qmax - vmin) / cell - 0.5).floor();
            if last_f < 0.0 {
                return None;
            }
            let last = (last_f as usize).min(n - 1);
            if first > last {
                None
            } else {
                Some((first, last))
            }
        };
        let (x0, x1) = axis(query.min().x, query.max().x, lo.x, size.x, nx)?;
        let (y0, y1) = axis(query.min().y, query.max().y, lo.y, size.y, ny)?;
        let (z0, z1) = axis(query.min().z, query.max().z, lo.z, size.z, nz)?;
        Some(CellRange {
            lo: (x0, y0, z0),
            hi: (x1 + 1, y1 + 1, z1 + 1),
        })
    }
}

/// A half-open box of cell indices: `lo` inclusive, `hi` exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellRange {
    /// Inclusive lower corner `(ix, iy, iz)`.
    pub lo: (usize, usize, usize),
    /// Exclusive upper corner.
    pub hi: (usize, usize, usize),
}

impl CellRange {
    /// Number of cells in the range.
    pub fn cell_count(&self) -> usize {
        (self.hi.0 - self.lo.0) * (self.hi.1 - self.lo.1) * (self.hi.2 - self.lo.2)
    }

    fn contains_box(&self, lo: (usize, usize, usize), hi: (usize, usize, usize)) -> bool {
        self.lo.0 <= lo.0
            && self.lo.1 <= lo.1
            && self.lo.2 <= lo.2
            && self.hi.0 >= hi.0
            && self.hi.1 >= hi.1
            && self.hi.2 >= hi.2
    }

    fn intersects_box(&self, lo: (usize, usize, usize), hi: (usize, usize, usize)) -> bool {
        self.lo.0 < hi.0
            && lo.0 < self.hi.0
            && self.lo.1 < hi.1
            && lo.1 < self.hi.1
            && self.lo.2 < hi.2
            && lo.2 < self.hi.2
    }
}

/// Aggregate statistics over the **finite** values of a cell region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum finite value, `+inf` when the region has none.
    pub min: f64,
    /// Maximum finite value, `-inf` when the region has none.
    pub max: f64,
    /// Sum of finite values.
    pub sum: f64,
    /// Number of finite values.
    pub count: usize,
}

impl BoxStats {
    /// The empty aggregate (identity for [`BoxStats::absorb`]).
    pub fn empty() -> Self {
        BoxStats {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            count: 0,
        }
    }

    /// Mean of the finite values, `None` when the region had none.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    fn absorb_value(&mut self, v: f64) {
        if v.is_finite() {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
            self.sum += v;
            self.count += 1;
        }
    }

    fn absorb(&mut self, other: &BoxStats) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// One octree node over a half-open cell-index box.
#[derive(Debug, Clone)]
struct Node {
    lo: (usize, usize, usize),
    hi: (usize, usize, usize),
    stats: BoxStats,
    /// Depth of this node (root = 0), for LOD cutoffs.
    depth: u32,
    /// Child node indices in fixed z-major/y/x split order; `NO_CHILD`
    /// entries are unused slots. All-`NO_CHILD` means leaf.
    children: [u32; 8],
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.children[0] == NO_CHILD
    }
}

/// An octree of per-node aggregates over a voxel lattice.
///
/// Build once per (layout, value array); query many times. The tree holds
/// only cell-index geometry and [`BoxStats`] aggregates — the flat value
/// slice is passed to each query, and must be the same array the tree was
/// built from (same length; checked, returning empty results on mismatch).
///
/// # Examples
///
/// ```
/// use aerorem_spatial::octree::{VoxelLayout, VoxelOctree};
/// use aerorem_spatial::{Aabb, Vec3};
///
/// let layout = VoxelLayout::new(Aabb::paper_volume(), (8, 8, 4)).unwrap();
/// let values: Vec<f64> = (0..layout.cell_count()).map(|i| -40.0 - (i % 50) as f64).collect();
/// let tree = VoxelOctree::build(layout, &values).unwrap();
///
/// // Point query: nearest-cell value.
/// let v = tree.point_value(Vec3::new(1.0, 1.0, 1.0), &values).unwrap();
/// assert!(v <= -40.0);
///
/// // Coverage: all cells at or above -45 dBm.
/// let covered = tree.cells_above(-45.0, &values);
/// assert!(covered.iter().all(|&i| values[i] >= -45.0));
/// ```
#[derive(Debug, Clone)]
pub struct VoxelOctree {
    layout: VoxelLayout,
    nodes: Vec<Node>,
    /// Length of the value array the tree was built from.
    built_len: usize,
}

impl VoxelOctree {
    /// Builds the aggregate tree for `values` laid out by `layout`.
    ///
    /// Returns `None` when `values.len()` does not match the layout's
    /// cell count.
    pub fn build(layout: VoxelLayout, values: &[f64]) -> Option<Self> {
        if values.len() != layout.cell_count() {
            return None;
        }
        let mut tree = VoxelOctree {
            layout,
            nodes: Vec::new(),
            built_len: values.len(),
        };
        let (nx, ny, nz) = layout.dims();
        tree.build_node((0, 0, 0), (nx, ny, nz), 0, values);
        Some(tree)
    }

    /// The layout this tree indexes.
    pub fn layout(&self) -> &VoxelLayout {
        &self.layout
    }

    /// Number of nodes in the tree (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum node depth in the tree (root = 0; diagnostic / LOD bound).
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Whole-lattice aggregate (the root node's stats).
    pub fn root_stats(&self) -> BoxStats {
        self.nodes.first().map_or_else(BoxStats::empty, |n| n.stats)
    }

    fn build_node(
        &mut self,
        lo: (usize, usize, usize),
        hi: (usize, usize, usize),
        depth: u32,
        values: &[f64],
    ) -> u32 {
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node {
            lo,
            hi,
            stats: BoxStats::empty(),
            depth,
            children: [NO_CHILD; 8],
        });
        let cells = (hi.0 - lo.0) * (hi.1 - lo.1) * (hi.2 - lo.2);
        let splittable = (hi.0 - lo.0 > 1) || (hi.1 - lo.1 > 1) || (hi.2 - lo.2 > 1);
        if cells <= LEAF_CELLS || !splittable {
            let mut stats = BoxStats::empty();
            self.scan_box(lo, hi, values, |_, v| stats.absorb_value(v));
            self.nodes[idx as usize].stats = stats;
            return idx;
        }
        // Split each axis with extent > 1 at its midpoint; fixed z-major,
        // then y, then x child order keeps traversal deterministic.
        let mx = if hi.0 - lo.0 > 1 { Some((lo.0 + hi.0) / 2) } else { None };
        let my = if hi.1 - lo.1 > 1 { Some((lo.1 + hi.1) / 2) } else { None };
        let mz = if hi.2 - lo.2 > 1 { Some((lo.2 + hi.2) / 2) } else { None };
        let xs: &[(usize, usize)] = &match mx {
            Some(m) => vec![(lo.0, m), (m, hi.0)],
            None => vec![(lo.0, hi.0)],
        };
        let ys: &[(usize, usize)] = &match my {
            Some(m) => vec![(lo.1, m), (m, hi.1)],
            None => vec![(lo.1, hi.1)],
        };
        let zs: &[(usize, usize)] = &match mz {
            Some(m) => vec![(lo.2, m), (m, hi.2)],
            None => vec![(lo.2, hi.2)],
        };
        let mut stats = BoxStats::empty();
        let mut slot = 0;
        for &(z0, z1) in zs {
            for &(y0, y1) in ys {
                for &(x0, x1) in xs {
                    let child = self.build_node((x0, y0, z0), (x1, y1, z1), depth + 1, values);
                    self.nodes[idx as usize].children[slot] = child;
                    stats.absorb(&self.nodes[child as usize].stats);
                    slot += 1;
                }
            }
        }
        self.nodes[idx as usize].stats = stats;
        idx
    }

    /// Visits `(flat_index, value)` for every cell of an index box, in
    /// ascending flat-index order.
    fn scan_box<F: FnMut(usize, f64)>(
        &self,
        lo: (usize, usize, usize),
        hi: (usize, usize, usize),
        values: &[f64],
        mut f: F,
    ) {
        let (nx, ny, _) = self.layout.dims();
        for iz in lo.2..hi.2 {
            for iy in lo.1..hi.1 {
                let base = iz * nx * ny + iy * nx;
                for ix in lo.0..hi.0 {
                    let i = base + ix;
                    f(i, values[i]);
                }
            }
        }
    }

    /// Value of the cell containing `p`, or `None` outside the volume or
    /// when the cell holds a non-finite (missing) value.
    ///
    /// This is pure layout math — O(1), no tree walk — provided here so
    /// the serving layer has one type answering every query shape.
    pub fn point_value(&self, p: Vec3, values: &[f64]) -> Option<f64> {
        if values.len() != self.built_len {
            return None;
        }
        let i = self.layout.cell_index_of(p)?;
        let v = values[i];
        v.is_finite().then_some(v)
    }

    /// Exact aggregate over the cells whose centers lie inside `query`.
    ///
    /// Fully-contained nodes contribute their precomputed aggregate
    /// (O(1)); partially overlapped leaves are scanned. Traversal and
    /// accumulation order are fixed, so results are bit-deterministic.
    pub fn box_stats(&self, query: &Aabb, values: &[f64]) -> BoxStats {
        if values.len() != self.built_len || self.nodes.is_empty() {
            return BoxStats::empty();
        }
        let Some(range) = self.layout.index_range(query) else {
            return BoxStats::empty();
        };
        let mut stats = BoxStats::empty();
        self.accumulate(0, &range, values, None, &mut stats);
        stats
    }

    /// Approximate aggregate over `query`, visiting nodes at most
    /// `max_depth` levels down.
    ///
    /// Nodes at the depth cutoff that only partially overlap the query
    /// contribute their aggregate scaled by the overlapped cell fraction
    /// (`sum`/`count` scale; `min`/`max` are taken whole, so they bound
    /// the true extremes). `max_depth >= self.max_depth()` degenerates to
    /// the exact answer. This is the LOD path: coarse-but-cheap summaries
    /// for dashboard-style zoomed-out views.
    pub fn box_stats_lod(&self, query: &Aabb, values: &[f64], max_depth: u32) -> BoxStats {
        if values.len() != self.built_len || self.nodes.is_empty() {
            return BoxStats::empty();
        }
        let Some(range) = self.layout.index_range(query) else {
            return BoxStats::empty();
        };
        let mut stats = BoxStats::empty();
        self.accumulate(0, &range, values, Some(max_depth), &mut stats);
        stats
    }

    fn accumulate(
        &self,
        node_idx: u32,
        range: &CellRange,
        values: &[f64],
        lod_depth: Option<u32>,
        out: &mut BoxStats,
    ) {
        let node = &self.nodes[node_idx as usize];
        if !range.intersects_box(node.lo, node.hi) {
            return;
        }
        if range.contains_box(node.lo, node.hi) {
            out.absorb(&node.stats);
            return;
        }
        if let Some(cutoff) = lod_depth {
            if node.depth >= cutoff {
                // Partial overlap at the LOD cutoff: scale the aggregate
                // by the overlapped cell fraction.
                let ov_lo = (
                    node.lo.0.max(range.lo.0),
                    node.lo.1.max(range.lo.1),
                    node.lo.2.max(range.lo.2),
                );
                let ov_hi = (
                    node.hi.0.min(range.hi.0),
                    node.hi.1.min(range.hi.1),
                    node.hi.2.min(range.hi.2),
                );
                let overlap = (ov_hi.0 - ov_lo.0) * (ov_hi.1 - ov_lo.1) * (ov_hi.2 - ov_lo.2);
                let total =
                    (node.hi.0 - node.lo.0) * (node.hi.1 - node.lo.1) * (node.hi.2 - node.lo.2);
                let frac = overlap as f64 / total as f64;
                let scaled_count = (node.stats.count as f64 * frac).round() as usize;
                out.absorb(&BoxStats {
                    min: node.stats.min,
                    max: node.stats.max,
                    sum: node.stats.sum * frac,
                    count: scaled_count,
                });
                return;
            }
        }
        if node.is_leaf() {
            let lo = (
                node.lo.0.max(range.lo.0),
                node.lo.1.max(range.lo.1),
                node.lo.2.max(range.lo.2),
            );
            let hi = (
                node.hi.0.min(range.hi.0),
                node.hi.1.min(range.hi.1),
                node.hi.2.min(range.hi.2),
            );
            self.scan_box(lo, hi, values, |_, v| out.absorb_value(v));
            return;
        }
        for &child in &node.children {
            if child != NO_CHILD {
                self.accumulate(child, range, values, lod_depth, out);
            }
        }
    }

    /// Flat indices of every cell with a finite value `>= threshold_dbm`,
    /// ascending — the coverage isosurface, e.g. "where does AP k deliver
    /// at least -67 dBm".
    ///
    /// Subtrees whose aggregate max is below the threshold are pruned
    /// without touching their values.
    pub fn cells_above(&self, threshold_dbm: f64, values: &[f64]) -> Vec<usize> {
        if values.len() != self.built_len || self.nodes.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.collect_above(0, threshold_dbm, values, &mut out);
        out.sort_unstable();
        out
    }

    /// Fraction of finite cells at or above `threshold_dbm` (coverage
    /// ratio in the paper's dark-region sense), `None` when the lattice
    /// has no finite cells.
    pub fn coverage_fraction(&self, threshold_dbm: f64, values: &[f64]) -> Option<f64> {
        let total = self.root_stats().count;
        if total == 0 || values.len() != self.built_len {
            return None;
        }
        Some(self.cells_above(threshold_dbm, values).len() as f64 / total as f64)
    }

    fn collect_above(&self, node_idx: u32, threshold: f64, values: &[f64], out: &mut Vec<usize>) {
        let node = &self.nodes[node_idx as usize];
        if node.stats.count == 0 || node.stats.max < threshold {
            return;
        }
        if node.is_leaf() {
            self.scan_box(node.lo, node.hi, values, |i, v| {
                if v.is_finite() && v >= threshold {
                    out.push(i);
                }
            });
            return;
        }
        // Entire subtree qualifies: still scan leaves (we need indices),
        // but min-pruning covers the common sparse case.
        for &child in &node.children {
            if child != NO_CHILD {
                self.collect_above(child, threshold, values, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout_8x8x4() -> VoxelLayout {
        VoxelLayout::new(Aabb::paper_volume(), (8, 8, 4)).unwrap()
    }

    /// Brute-force reference aggregate over cell centers in the box.
    fn naive_stats(layout: &VoxelLayout, query: &Aabb, values: &[f64]) -> BoxStats {
        let mut s = BoxStats::empty();
        for (i, &v) in values.iter().enumerate().take(layout.cell_count()) {
            if query.contains(layout.cell_center(i)) {
                s.absorb_value(v);
            }
        }
        s
    }

    fn ramp_values(layout: &VoxelLayout) -> Vec<f64> {
        (0..layout.cell_count())
            .map(|i| -30.0 - (i as f64 * 0.619).sin() * 35.0)
            .collect()
    }

    #[test]
    fn layout_validates_dims() {
        assert!(VoxelLayout::new(Aabb::paper_volume(), (0, 2, 2)).is_none());
        assert!(VoxelLayout::new(Aabb::paper_volume(), (2, 2, 2)).is_some());
    }

    #[test]
    fn point_lookup_matches_layout_math() {
        let layout = layout_8x8x4();
        let values = ramp_values(&layout);
        let tree = VoxelOctree::build(layout, &values).unwrap();
        for i in (0..layout.cell_count()).step_by(7) {
            let c = layout.cell_center(i);
            assert_eq!(layout.cell_index_of(c), Some(i));
            assert_eq!(tree.point_value(c, &values), Some(values[i]));
        }
        // Outside the volume.
        assert_eq!(tree.point_value(Vec3::new(-1.0, 0.0, 0.0), &values), None);
    }

    #[test]
    fn box_stats_match_naive_scan() {
        let layout = layout_8x8x4();
        let values = ramp_values(&layout);
        let tree = VoxelOctree::build(layout, &values).unwrap();
        let queries = [
            Aabb::paper_volume(),
            Aabb::new(Vec3::new(0.5, 0.5, 0.5), Vec3::new(2.0, 2.5, 1.5)).unwrap(),
            Aabb::new(Vec3::new(3.0, 2.8, 1.8), Vec3::new(3.7, 3.1, 2.0)).unwrap(),
            Aabb::new(Vec3::new(-5.0, -5.0, -5.0), Vec3::new(-1.0, -1.0, -1.0)).unwrap(),
        ];
        for q in &queries {
            let fast = tree.box_stats(q, &values);
            let slow = naive_stats(&layout, q, &values);
            assert_eq!(fast.count, slow.count, "{q}");
            assert_eq!(fast.min.to_bits(), slow.min.to_bits(), "{q}");
            assert_eq!(fast.max.to_bits(), slow.max.to_bits(), "{q}");
            assert!((fast.sum - slow.sum).abs() < 1e-9, "{q}");
        }
    }

    #[test]
    fn full_volume_box_uses_root_aggregate() {
        let layout = layout_8x8x4();
        let values = ramp_values(&layout);
        let tree = VoxelOctree::build(layout, &values).unwrap();
        let full = tree.box_stats(&Aabb::paper_volume(), &values);
        assert_eq!(full.count, layout.cell_count());
        assert_eq!(full.sum.to_bits(), tree.root_stats().sum.to_bits());
    }

    #[test]
    fn coverage_isosurface_is_exact_and_sorted() {
        let layout = layout_8x8x4();
        let values = ramp_values(&layout);
        let tree = VoxelOctree::build(layout, &values).unwrap();
        let thr = -40.0;
        let got = tree.cells_above(thr, &values);
        let want: Vec<usize> = (0..values.len()).filter(|&i| values[i] >= thr).collect();
        assert_eq!(got, want);
        assert!(!got.is_empty() && got.len() < values.len());
        let frac = tree.coverage_fraction(thr, &values).unwrap();
        assert!((frac - want.len() as f64 / values.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn nan_cells_are_missing_everywhere() {
        let layout = VoxelLayout::new(Aabb::paper_volume(), (4, 4, 2)).unwrap();
        let mut values = ramp_values(&layout);
        values[5] = f64::NAN;
        values[17] = f64::NAN;
        let tree = VoxelOctree::build(layout, &values).unwrap();
        assert_eq!(tree.root_stats().count, values.len() - 2);
        // NaN never satisfies a threshold…
        assert!(!tree.cells_above(f64::NEG_INFINITY, &values).contains(&5));
        // …and a NaN cell's point lookup reports missing.
        let c = layout.cell_center(5);
        assert_eq!(tree.point_value(c, &values), None);
    }

    #[test]
    fn lod_stats_converge_to_exact_at_full_depth() {
        let layout = layout_8x8x4();
        let values = ramp_values(&layout);
        let tree = VoxelOctree::build(layout, &values).unwrap();
        let q = Aabb::new(Vec3::new(0.3, 0.4, 0.2), Vec3::new(3.0, 2.8, 1.9)).unwrap();
        let exact = tree.box_stats(&q, &values);
        let lod_full = tree.box_stats_lod(&q, &values, tree.max_depth() + 1);
        assert_eq!(lod_full.count, exact.count);
        assert_eq!(lod_full.sum.to_bits(), exact.sum.to_bits());
        // Coarse LOD still brackets the extremes and approximates count.
        let coarse = tree.box_stats_lod(&q, &values, 1);
        assert!(coarse.min <= exact.min);
        assert!(coarse.max >= exact.max);
        assert!(coarse.count > 0);
    }

    #[test]
    fn build_rejects_mismatched_value_length() {
        let layout = layout_8x8x4();
        assert!(VoxelOctree::build(layout, &[0.0; 3]).is_none());
        let values = ramp_values(&layout);
        let tree = VoxelOctree::build(layout, &values).unwrap();
        // Mismatched slices at query time yield empty results, not panics.
        assert_eq!(tree.point_value(Vec3::new(1.0, 1.0, 1.0), &[0.0; 3]), None);
        assert_eq!(tree.box_stats(&Aabb::paper_volume(), &[0.0; 3]).count, 0);
        assert!(tree.cells_above(-100.0, &[0.0; 3]).is_empty());
    }

    #[test]
    fn degenerate_single_cell_axis_builds() {
        let layout = VoxelLayout::new(Aabb::paper_volume(), (16, 1, 1)).unwrap();
        let values = ramp_values(&layout);
        let tree = VoxelOctree::build(layout, &values).unwrap();
        assert_eq!(tree.root_stats().count, 16);
        let all = tree.cells_above(f64::NEG_INFINITY, &values);
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn index_range_center_semantics() {
        // 4 cells across [0, 4] on x: centers at 0.5, 1.5, 2.5, 3.5.
        let layout = VoxelLayout::new(
            Aabb::new(Vec3::ZERO, Vec3::new(4.0, 1.0, 1.0)).unwrap(),
            (4, 1, 1),
        )
        .unwrap();
        let q = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(3.0, 1.0, 1.0)).unwrap();
        let r = layout.index_range(&q).unwrap();
        // Centers 1.5 and 2.5 fall in [1, 3]: cells 1 and 2.
        assert_eq!(r.lo.0, 1);
        assert_eq!(r.hi.0, 3);
        assert_eq!(r.cell_count(), 2);
    }
}
