//! Axis-aligned bounding boxes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::vec3::Vec3;

/// An axis-aligned box `[min, max]` in meters.
///
/// The paper's scan volume is a 3.74 × 3.20 × 2.10 m cuboid with a UWB anchor
/// at each of the 8 corners (§III-A); [`Aabb::corners`] yields exactly those
/// anchor positions.
///
/// # Examples
///
/// ```
/// use aerorem_spatial::{Aabb, Vec3};
///
/// let v = Aabb::new(Vec3::ZERO, Vec3::new(3.74, 3.20, 2.10)).unwrap();
/// assert_eq!(v.corners().len(), 8);
/// assert!(v.contains(v.center()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    min: Vec3,
    max: Vec3,
}

impl Aabb {
    /// Creates a box from opposite corners.
    ///
    /// Returns `None` when any component of `min` is not strictly less than
    /// the corresponding component of `max`, or when either corner is not
    /// finite.
    pub fn new(min: Vec3, max: Vec3) -> Option<Self> {
        if !min.is_finite() || !max.is_finite() {
            return None;
        }
        if min.x < max.x && min.y < max.y && min.z < max.z {
            Some(Aabb { min, max })
        } else {
            None
        }
    }

    /// The paper's demo volume: 3.74 m (x) × 3.20 m (y) × 2.10 m (z),
    /// origin at a corner.
    pub fn paper_volume() -> Self {
        Aabb {
            min: Vec3::ZERO,
            max: Vec3::new(3.74, 3.20, 2.10),
        }
    }

    /// Minimum corner.
    pub fn min(&self) -> Vec3 {
        self.min
    }

    /// Maximum corner.
    pub fn max(&self) -> Vec3 {
        self.max
    }

    /// Size along each axis.
    pub fn size(&self) -> Vec3 {
        self.max - self.min
    }

    /// Geometric center.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Volume in cubic meters.
    pub fn volume(&self) -> f64 {
        let s = self.size();
        s.x * s.y * s.z
    }

    /// Whether `p` is inside (inclusive of the boundary).
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// The 8 corners, in a fixed order (z-major, then y, then x).
    ///
    /// These are the anchor positions of the paper's deployment.
    pub fn corners(&self) -> [Vec3; 8] {
        let (lo, hi) = (self.min, self.max);
        [
            Vec3::new(lo.x, lo.y, lo.z),
            Vec3::new(hi.x, lo.y, lo.z),
            Vec3::new(lo.x, hi.y, lo.z),
            Vec3::new(hi.x, hi.y, lo.z),
            Vec3::new(lo.x, lo.y, hi.z),
            Vec3::new(hi.x, lo.y, hi.z),
            Vec3::new(lo.x, hi.y, hi.z),
            Vec3::new(hi.x, hi.y, hi.z),
        ]
    }

    /// Clamps a point to lie within the box.
    pub fn clamp(&self, p: Vec3) -> Vec3 {
        p.max(self.min).min(self.max)
    }

    /// Grows the box by `margin` on every side.
    ///
    /// Returns `None` if a negative margin would invert the box.
    pub fn inflated(&self, margin: f64) -> Option<Aabb> {
        Aabb::new(self.min - Vec3::splat(margin), self.max + Vec3::splat(margin))
    }

    /// The point at normalized coordinates `t ∈ [0, 1]³` within the box.
    pub fn lerp_point(&self, tx: f64, ty: f64, tz: f64) -> Vec3 {
        Vec3::new(
            self.min.x + (self.max.x - self.min.x) * tx,
            self.min.y + (self.max.y - self.min.y) * ty,
            self.min.z + (self.max.z - self.min.z) * tz,
        )
    }

    /// Whether two boxes overlap (inclusive).
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }
}

impl fmt::Display for Aabb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.size();
        write!(
            f,
            "[{:.2} x {:.2} x {:.2} m at {}]",
            s.x, s.y, s.z, self.min
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Aabb::new(Vec3::ZERO, Vec3::splat(1.0)).is_some());
        assert!(Aabb::new(Vec3::splat(1.0), Vec3::ZERO).is_none());
        assert!(Aabb::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 1.0)).is_none());
        assert!(Aabb::new(Vec3::ZERO, Vec3::new(f64::NAN, 1.0, 1.0)).is_none());
    }

    #[test]
    fn paper_volume_dimensions() {
        let v = Aabb::paper_volume();
        let s = v.size();
        assert!((s.x - 3.74).abs() < 1e-12);
        assert!((s.y - 3.20).abs() < 1e-12);
        assert!((s.z - 2.10).abs() < 1e-12);
        assert!((v.volume() - 3.74 * 3.20 * 2.10).abs() < 1e-9);
    }

    #[test]
    fn contains_boundary_inclusive() {
        let v = Aabb::new(Vec3::ZERO, Vec3::splat(1.0)).unwrap();
        assert!(v.contains(Vec3::ZERO));
        assert!(v.contains(Vec3::splat(1.0)));
        assert!(v.contains(v.center()));
        assert!(!v.contains(Vec3::new(1.0001, 0.5, 0.5)));
        assert!(!v.contains(Vec3::new(0.5, -0.0001, 0.5)));
    }

    #[test]
    fn eight_distinct_corners_inside() {
        let v = Aabb::paper_volume();
        let corners = v.corners();
        for (i, a) in corners.iter().enumerate() {
            assert!(v.contains(*a));
            for b in corners.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn clamp_projects_outside_points() {
        let v = Aabb::new(Vec3::ZERO, Vec3::splat(2.0)).unwrap();
        assert_eq!(v.clamp(Vec3::new(-1.0, 1.0, 5.0)), Vec3::new(0.0, 1.0, 2.0));
        let inside = Vec3::splat(1.0);
        assert_eq!(v.clamp(inside), inside);
    }

    #[test]
    fn inflate() {
        let v = Aabb::new(Vec3::ZERO, Vec3::splat(1.0)).unwrap();
        let big = v.inflated(0.5).unwrap();
        assert_eq!(big.min(), Vec3::splat(-0.5));
        assert_eq!(big.max(), Vec3::splat(1.5));
        assert!(v.inflated(-0.6).is_none());
    }

    #[test]
    fn lerp_point_corners_and_center() {
        let v = Aabb::paper_volume();
        assert_eq!(v.lerp_point(0.0, 0.0, 0.0), v.min());
        assert_eq!(v.lerp_point(1.0, 1.0, 1.0), v.max());
        assert_eq!(v.lerp_point(0.5, 0.5, 0.5), v.center());
    }

    #[test]
    fn intersects() {
        let a = Aabb::new(Vec3::ZERO, Vec3::splat(1.0)).unwrap();
        let b = Aabb::new(Vec3::splat(0.5), Vec3::splat(2.0)).unwrap();
        let c = Aabb::new(Vec3::splat(1.5), Vec3::splat(2.0)).unwrap();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching boundaries count as intersecting.
        let d = Aabb::new(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0)).unwrap();
        assert!(a.intersects(&d));
    }

    #[test]
    fn display() {
        assert!(format!("{}", Aabb::paper_volume()).contains("3.74"));
    }
}
