//! Waypoint lattice generation, tour ordering, and fleet partitioning.
//!
//! §III-A of the paper: "72 locations evenly spread over the volume were
//! identified, with each UAV responsible for scanning 36 of them", and the
//! fleet "can be scaled by simply adding sets of waypoints". This module
//! turns a scan volume and a target count into that lattice, orders it into
//! a low-travel boustrophedon tour, and splits the tour across a fleet.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::aabb::Aabb;
use crate::vec3::Vec3;

/// Error type for waypoint-grid construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// A grid with zero waypoints was requested.
    EmptyGrid,
    /// The fleet size was zero or exceeded the waypoint count.
    BadFleetSize {
        /// Requested number of UAVs.
        fleet: usize,
        /// Number of waypoints available.
        waypoints: usize,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::EmptyGrid => write!(f, "waypoint grid must contain at least one point"),
            GridError::BadFleetSize { fleet, waypoints } => write!(
                f,
                "fleet size {fleet} invalid for {waypoints} waypoints (need 1..={waypoints})"
            ),
        }
    }
}

impl std::error::Error for GridError {}

/// An evenly spread 3D lattice of scan waypoints inside a volume.
///
/// Waypoints sit at cell centers of an `nx × ny × nz` subdivision whose
/// aspect follows the volume's aspect, so spacing is as uniform as the
/// requested count allows.
///
/// # Examples
///
/// ```
/// use aerorem_spatial::{Aabb, grid::WaypointGrid};
///
/// let grid = WaypointGrid::even(Aabb::paper_volume(), 72).unwrap();
/// assert_eq!(grid.len(), 72);
/// assert_eq!(grid.dims().0 * grid.dims().1 * grid.dims().2, 72);
/// let fleets = grid.partition(2).unwrap();
/// assert_eq!(fleets[0].len(), 36);
/// assert_eq!(fleets[1].len(), 36);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaypointGrid {
    volume: Aabb,
    dims: (usize, usize, usize),
    /// Waypoints in boustrophedon tour order (z layers, snaking y rows,
    /// snaking x within each row) to minimize inter-waypoint travel.
    points: Vec<Vec3>,
}

impl WaypointGrid {
    /// Builds a grid of exactly `n` waypoints evenly spread over `volume`.
    ///
    /// The dimensions `(nx, ny, nz)` are chosen among all factorizations of
    /// `n` to minimize the spread of per-axis spacing relative to the volume
    /// aspect. Prime or awkward `n` therefore still works (e.g. `n = 7`
    /// yields a 7×1×1 line along the longest axis).
    ///
    /// # Errors
    ///
    /// Returns [`GridError::EmptyGrid`] when `n == 0`.
    pub fn even(volume: Aabb, n: usize) -> Result<Self, GridError> {
        if n == 0 {
            return Err(GridError::EmptyGrid);
        }
        let size = volume.size();
        let dims = best_factorization(n, size);
        Ok(Self::with_dims(volume, dims))
    }

    /// Builds a grid with explicit dimensions `(nx, ny, nz)` (cell centers).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn with_dims(volume: Aabb, dims: (usize, usize, usize)) -> Self {
        let (nx, ny, nz) = dims;
        assert!(nx > 0 && ny > 0 && nz > 0, "grid dims must be non-zero");
        let mut points = Vec::with_capacity(nx * ny * nz);
        // Boustrophedon tour: z layers bottom-up; within each layer snake
        // along y; within each y row snake along x. Consecutive waypoints
        // are then always grid neighbors.
        let mut row = 0usize; // global row counter keeps x-direction continuous across layers
        for iz in 0..nz {
            for iy_raw in 0..ny {
                let iy = if iz % 2 == 0 { iy_raw } else { ny - 1 - iy_raw };
                let forward = row.is_multiple_of(2);
                row += 1;
                for ix_raw in 0..nx {
                    let ix = if forward { ix_raw } else { nx - 1 - ix_raw };
                    let t = |i: usize, n: usize| (i as f64 + 0.5) / n as f64;
                    points.push(volume.lerp_point(t(ix, nx), t(iy, ny), t(iz, nz)));
                }
            }
        }
        WaypointGrid {
            volume,
            dims,
            points,
        }
    }

    /// The volume the grid spans.
    pub fn volume(&self) -> Aabb {
        self.volume
    }

    /// Grid dimensions `(nx, ny, nz)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        self.dims
    }

    /// Number of waypoints.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid has no waypoints (never true for constructed grids).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Waypoints in tour order.
    pub fn iter(&self) -> impl Iterator<Item = &Vec3> {
        self.points.iter()
    }

    /// Waypoints in tour order as a slice.
    pub fn as_slice(&self) -> &[Vec3] {
        &self.points
    }

    /// Per-axis spacing between adjacent waypoints.
    pub fn spacing(&self) -> Vec3 {
        let s = self.volume.size();
        Vec3::new(
            s.x / self.dims.0 as f64,
            s.y / self.dims.1 as f64,
            s.z / self.dims.2 as f64,
        )
    }

    /// Total tour length (sum of consecutive waypoint distances).
    pub fn tour_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].distance(w[1]))
            .sum()
    }

    /// Index of the waypoint nearest to `p`.
    pub fn nearest_index(&self, p: Vec3) -> usize {
        self.points
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.distance(p)
                    .partial_cmp(&b.distance(p))
                    .expect("waypoints are finite")
            })
            .map(|(i, _)| i)
            .expect("grid is non-empty")
    }

    /// Splits the tour into `fleet` contiguous legs of near-equal length, one
    /// per UAV. Contiguity keeps each UAV in its own sub-region — matching
    /// the paper's deployment where each UAV scanned one side of the room.
    ///
    /// # Errors
    ///
    /// Returns [`GridError::BadFleetSize`] when `fleet == 0` or
    /// `fleet > self.len()`.
    pub fn partition(&self, fleet: usize) -> Result<Vec<Vec<Vec3>>, GridError> {
        if fleet == 0 || fleet > self.points.len() {
            return Err(GridError::BadFleetSize {
                fleet,
                waypoints: self.points.len(),
            });
        }
        let n = self.points.len();
        let base = n / fleet;
        let extra = n % fleet;
        let mut out = Vec::with_capacity(fleet);
        let mut start = 0;
        for i in 0..fleet {
            let take = base + usize::from(i < extra);
            out.push(self.points[start..start + take].to_vec());
            start += take;
        }
        Ok(out)
    }
}

impl<'a> IntoIterator for &'a WaypointGrid {
    type Item = &'a Vec3;
    type IntoIter = std::slice::Iter<'a, Vec3>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

/// Chooses `(nx, ny, nz)` with `nx·ny·nz = n` whose per-axis spacing is most
/// uniform for a volume of the given size.
fn best_factorization(n: usize, size: Vec3) -> (usize, usize, usize) {
    let mut best = (n, 1, 1);
    let mut best_score = f64::INFINITY;
    let mut a = 1;
    while a * a * a <= n * n * n {
        if a > n {
            break;
        }
        if n.is_multiple_of(a) {
            let rest = n / a;
            let mut b = 1;
            while b <= rest {
                if rest.is_multiple_of(b) {
                    let c = rest / b;
                    // Try all axis assignments of (a, b, c).
                    for dims in permutations3(a, b, c) {
                        let sx = size.x / dims.0 as f64;
                        let sy = size.y / dims.1 as f64;
                        let sz = size.z / dims.2 as f64;
                        let mean = (sx + sy + sz) / 3.0;
                        let score = (sx - mean).powi(2) + (sy - mean).powi(2) + (sz - mean).powi(2);
                        if score < best_score {
                            best_score = score;
                            best = dims;
                        }
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

fn permutations3(a: usize, b: usize, c: usize) -> [(usize, usize, usize); 6] {
    [
        (a, b, c),
        (a, c, b),
        (b, a, c),
        (b, c, a),
        (c, a, b),
        (c, b, a),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_72_points_inside() {
        let v = Aabb::paper_volume();
        let g = WaypointGrid::even(v, 72).unwrap();
        assert_eq!(g.len(), 72);
        assert!(!g.is_empty());
        assert!(g.iter().all(|p| v.contains(*p)));
        let (nx, ny, nz) = g.dims();
        assert_eq!(nx * ny * nz, 72);
        // The long axis gets at least as many points as the short axes.
        assert!(nx >= nz);
    }

    #[test]
    fn all_waypoints_distinct() {
        let g = WaypointGrid::even(Aabb::paper_volume(), 72).unwrap();
        for (i, a) in g.iter().enumerate() {
            for b in g.as_slice().iter().skip(i + 1) {
                assert!(a.distance(*b) > 1e-9);
            }
        }
    }

    #[test]
    fn prime_count_degenerates_to_line() {
        let g = WaypointGrid::even(Aabb::paper_volume(), 7).unwrap();
        assert_eq!(g.len(), 7);
        let (nx, ny, nz) = g.dims();
        assert_eq!(nx * ny * nz, 7);
        // 7 is prime: one axis carries all points.
        assert_eq!([nx, ny, nz].iter().filter(|&&d| d == 1).count(), 2);
    }

    #[test]
    fn single_point_grid_at_center() {
        let v = Aabb::paper_volume();
        let g = WaypointGrid::even(v, 1).unwrap();
        assert_eq!(g.as_slice(), &[v.center()]);
    }

    #[test]
    fn zero_points_rejected() {
        assert_eq!(
            WaypointGrid::even(Aabb::paper_volume(), 0),
            Err(GridError::EmptyGrid)
        );
    }

    #[test]
    fn boustrophedon_tour_steps_are_short() {
        let g = WaypointGrid::even(Aabb::paper_volume(), 72).unwrap();
        let spacing = g.spacing();
        let max_step = spacing.x.max(spacing.y).max(spacing.z) * 1.5;
        for w in g.as_slice().windows(2) {
            assert!(
                w[0].distance(w[1]) <= max_step + 1e-9,
                "tour step too long: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn tour_is_shorter_than_naive_row_major() {
        let v = Aabb::paper_volume();
        let g = WaypointGrid::even(v, 72).unwrap();
        // Naive raster: sort by (z, y, x) without snaking.
        let mut naive = g.as_slice().to_vec();
        naive.sort_by(|a, b| {
            (a.z, a.y, a.x)
                .partial_cmp(&(b.z, b.y, b.x))
                .expect("finite")
        });
        let naive_len: f64 = naive.windows(2).map(|w| w[0].distance(w[1])).sum();
        assert!(g.tour_length() < naive_len);
    }

    #[test]
    fn partition_into_two_fleets_of_36() {
        let g = WaypointGrid::even(Aabb::paper_volume(), 72).unwrap();
        let legs = g.partition(2).unwrap();
        assert_eq!(legs.len(), 2);
        assert_eq!(legs[0].len(), 36);
        assert_eq!(legs[1].len(), 36);
        // Partitions are disjoint and cover everything.
        let total: usize = legs.iter().map(Vec::len).sum();
        assert_eq!(total, 72);
    }

    #[test]
    fn partition_uneven_counts_balanced() {
        let g = WaypointGrid::even(Aabb::paper_volume(), 10).unwrap();
        let legs = g.partition(3).unwrap();
        let sizes: Vec<usize> = legs.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn partition_rejects_bad_sizes() {
        let g = WaypointGrid::even(Aabb::paper_volume(), 4).unwrap();
        assert!(matches!(
            g.partition(0),
            Err(GridError::BadFleetSize { .. })
        ));
        assert!(matches!(
            g.partition(5),
            Err(GridError::BadFleetSize { .. })
        ));
        assert!(g.partition(4).is_ok());
    }

    #[test]
    fn partitions_are_spatially_contiguous() {
        // With 2 UAVs over the paper grid, each leg should span roughly half
        // the volume, not interleave: check the z-extents overlap little.
        let g = WaypointGrid::even(Aabb::paper_volume(), 72).unwrap();
        let legs = g.partition(2).unwrap();
        let max_z_a = legs[0].iter().map(|p| p.z).fold(f64::MIN, f64::max);
        let min_z_b = legs[1].iter().map(|p| p.z).fold(f64::MAX, f64::min);
        // Leg A owns the lower layers, leg B the upper.
        assert!(max_z_a <= min_z_b + 1e-9);
    }

    #[test]
    fn nearest_index_finds_waypoint() {
        let g = WaypointGrid::even(Aabb::paper_volume(), 72).unwrap();
        for (i, p) in g.iter().enumerate() {
            assert_eq!(g.nearest_index(*p), i);
        }
        // A point near a waypoint maps to it.
        let target = g.as_slice()[10];
        assert_eq!(g.nearest_index(target + Vec3::splat(0.01)), 10);
    }

    #[test]
    fn spacing_matches_dims() {
        let g = WaypointGrid::with_dims(Aabb::paper_volume(), (6, 4, 3));
        let s = g.spacing();
        assert!((s.x - 3.74 / 6.0).abs() < 1e-12);
        assert!((s.y - 3.20 / 4.0).abs() < 1e-12);
        assert!((s.z - 2.10 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn into_iterator_for_reference() {
        let g = WaypointGrid::even(Aabb::paper_volume(), 8).unwrap();
        let count = (&g).into_iter().count();
        assert_eq!(count, 8);
    }

    #[test]
    fn grid_error_display() {
        assert!(GridError::EmptyGrid.to_string().contains("at least one"));
        let e = GridError::BadFleetSize {
            fleet: 0,
            waypoints: 5,
        };
        assert!(e.to_string().contains("fleet size 0"));
    }
}
