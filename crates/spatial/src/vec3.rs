//! Double-precision 3D vectors.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A 3D vector / point in meters, using the paper's axes: x along the long
/// side of the volume, y along the short side, z up.
///
/// # Examples
///
/// ```
/// use aerorem_spatial::Vec3;
///
/// let a = Vec3::new(3.0, 4.0, 0.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!(a.dot(Vec3::Z), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component (meters).
    pub x: f64,
    /// Y component (meters).
    pub y: f64,
    /// Z component (meters, up).
    pub z: f64,
}

impl Vec3 {
    /// The origin / zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along x.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };
    /// Unit vector along y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };
    /// Unit vector along z (up).
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// A vector with all components equal to `v`.
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * rhs.z - self.z * rhs.y,
            y: self.z * rhs.x - self.x * rhs.z,
            z: self.x * rhs.y - self.y * rhs.x,
        }
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root).
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Horizontal (x, y) distance to another point, ignoring z.
    pub fn horizontal_distance(self, other: Vec3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Unit vector in the same direction, or `None` for (near-)zero vectors.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    /// `t` is not clamped.
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Component-wise minimum.
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.x.min(other.x),
            y: self.y.min(other.y),
            z: self.z.min(other.z),
        }
    }

    /// Component-wise maximum.
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.x.max(other.x),
            y: self.y.max(other.y),
            z: self.z.max(other.z),
        }
    }

    /// Whether every component is finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Components as an array `[x, y, z]`.
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 3]> for Vec3 {
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3}, {:.3})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::splat(3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::X;
        v += Vec3::Y;
        v -= Vec3::X;
        assert_eq!(v, Vec3::Y);
    }

    #[test]
    fn dot_and_cross() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::X), -Vec3::Z);
        let a = Vec3::new(1.0, 2.0, 3.0);
        // a × a = 0
        assert_eq!(a.cross(a), Vec3::ZERO);
    }

    #[test]
    fn norms_and_distances() {
        let a = Vec3::new(3.0, 4.0, 12.0);
        assert_eq!(a.norm(), 13.0);
        assert_eq!(a.norm_squared(), 169.0);
        assert_eq!(a.distance(Vec3::ZERO), 13.0);
        assert_eq!(a.horizontal_distance(Vec3::ZERO), 5.0);
    }

    #[test]
    fn normalization() {
        let n = Vec3::new(0.0, 0.0, 2.0).normalized().unwrap();
        assert_eq!(n, Vec3::Z);
        assert_eq!(Vec3::ZERO.normalized(), None);
        assert_eq!(Vec3::splat(1e-13).normalized(), None);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn min_max_componentwise() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.0));
    }

    #[test]
    fn finite_check_and_conversions() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
        let v: Vec3 = [1.0, 2.0, 3.0].into();
        let a: [f64; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Vec3::new(1.0, 2.5, -3.0)), "(1.000, 2.500, -3.000)");
    }
}
