//! 3D geometry for the `aerorem` toolchain.
//!
//! The paper's scan volume is a rectangular cuboid (3.74 × 3.20 × 2.10 m in
//! the demo apartment) over which waypoints are "evenly spread" (§III-A).
//! This crate provides:
//!
//! * [`Vec3`] — double-precision 3D vectors with the usual operations.
//! * [`Attitude`] and [`Pose`] — orientation (roll/pitch/yaw) and position
//!   plus yaw, as used by the commander and the localization EKF.
//! * [`Aabb`] — axis-aligned boxes: the scan volume, walls, and anchor
//!   placement all build on it.
//! * [`grid`] — waypoint lattice generation and fleet partitioning helpers.
//! * [`octree`] — per-node-aggregate octree over voxel lattices: the
//!   serving layer's index for box statistics, coverage isosurfaces, and
//!   LOD summaries.
//!
//! # Examples
//!
//! ```
//! use aerorem_spatial::{Aabb, Vec3, grid::WaypointGrid};
//!
//! // The paper's living-room volume with 72 evenly spread waypoints.
//! let volume = Aabb::new(Vec3::ZERO, Vec3::new(3.74, 3.20, 2.10)).unwrap();
//! let grid = WaypointGrid::even(volume, 72).unwrap();
//! assert_eq!(grid.len(), 72);
//! assert!(grid.iter().all(|w| volume.contains(*w)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aabb;
pub mod grid;
pub mod octree;
mod pose;
mod vec3;

pub use aabb::Aabb;
pub use pose::{Attitude, Pose};
pub use vec3::Vec3;
