//! A bounded, timestamped trace log for simulation debugging.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the event was recorded.
    pub time: SimTime,
    /// Short component tag, e.g. `"commander"` or `"radio"`.
    pub component: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:<12} {}", self.time, self.component, self.message)
    }
}

/// A bounded FIFO of [`TraceEntry`] records.
///
/// When full, the oldest entries are evicted, so long campaigns keep a
/// recent window instead of growing without bound.
///
/// # Examples
///
/// ```
/// use aerorem_simkit::{SimTime, TraceLog};
///
/// let mut log = TraceLog::with_capacity(2);
/// log.record(SimTime::ZERO, "radio", "off".to_string());
/// log.record(SimTime::from_secs(3), "radio", "on".to_string());
/// log.record(SimTime::from_secs(4), "scan", "done".to_string());
/// assert_eq!(log.len(), 2); // the first entry was evicted
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl TraceLog {
    /// Creates a log bounded to `capacity` entries.
    ///
    /// A capacity of zero disables recording entirely (every record is
    /// counted as dropped).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceLog {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Creates a log with a generous default capacity (65 536 entries).
    pub fn new() -> Self {
        Self::with_capacity(65_536)
    }

    /// Records one entry, evicting the oldest if the log is full.
    pub fn record(&mut self, time: SimTime, component: &'static str, message: String) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            time,
            component,
            message,
        });
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries evicted or rejected so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Entries from the given component, oldest first.
    pub fn by_component<'a>(
        &'a self,
        component: &'a str,
    ) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.component == component)
    }

    /// Drops all entries (the dropped counter is preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_iterates_in_order() {
        let mut log = TraceLog::new();
        log.record(SimTime::from_secs(1), "a", "one".into());
        log.record(SimTime::from_secs(2), "b", "two".into());
        let msgs: Vec<&str> = log.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["one", "two"]);
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn eviction_keeps_most_recent() {
        let mut log = TraceLog::with_capacity(3);
        for i in 0..10u64 {
            log.record(SimTime::from_secs(i), "x", format!("{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 7);
        let msgs: Vec<&str> = log.iter().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["7", "8", "9"]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut log = TraceLog::with_capacity(0);
        log.record(SimTime::ZERO, "x", "gone".into());
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn filter_by_component() {
        let mut log = TraceLog::new();
        log.record(SimTime::ZERO, "radio", "off".into());
        log.record(SimTime::ZERO, "scan", "start".into());
        log.record(SimTime::from_secs(3), "radio", "on".into());
        assert_eq!(log.by_component("radio").count(), 2);
        assert_eq!(log.by_component("scan").count(), 1);
        assert_eq!(log.by_component("nope").count(), 0);
    }

    #[test]
    fn display_contains_fields() {
        let e = TraceEntry {
            time: SimTime::from_millis(1500),
            component: "commander",
            message: "wdt fed".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("commander"));
        assert!(s.contains("wdt fed"));
    }

    #[test]
    fn clear_preserves_dropped_count() {
        let mut log = TraceLog::with_capacity(1);
        log.record(SimTime::ZERO, "x", "a".into());
        log.record(SimTime::ZERO, "x", "b".into());
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 1);
    }
}
