//! Periodic-task and watchdog bookkeeping.
//!
//! These model the two FreeRTOS mechanisms the paper's firmware changes rely
//! on: the 100 ms position-hold feedback task that is *resumed* at the start
//! of each scan and *suspended* at its end (§II-C), and the
//! `COMMANDER_WDT_TIMEOUT_SHUTDOWN` watchdog that shuts the UAV down when no
//! setpoint arrives in time.

use crate::time::{SimDuration, SimTime};

/// Lifecycle state of a [`PeriodicTask`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// The task fires at its period.
    Running,
    /// The task is suspended: [`PeriodicTask::due`] never returns firings.
    Suspended,
}

/// A fixed-rate task, with FreeRTOS-style suspend/resume.
///
/// The task does not own a callback; the simulation loop asks it how many
/// firings are [`due`](PeriodicTask::due) and performs the work itself. This
/// keeps the kernel free of closures and lifetimes while preserving exact
/// firing times.
///
/// # Examples
///
/// ```
/// use aerorem_simkit::{PeriodicTask, SimDuration, SimTime};
///
/// // The paper's position-hold feedback task: every 100 ms.
/// let mut task = PeriodicTask::new(SimDuration::from_millis(100));
/// task.resume(SimTime::ZERO);
/// let firings = task.due(SimTime::from_millis(350));
/// assert_eq!(firings.len(), 3); // t=100, 200, 300 ms
/// ```
#[derive(Debug, Clone)]
pub struct PeriodicTask {
    period: SimDuration,
    state: TaskState,
    /// Time of the next firing while running.
    next_fire: SimTime,
}

impl PeriodicTask {
    /// Creates a suspended task with the given period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: SimDuration) -> Self {
        assert!(period > SimDuration::ZERO, "period must be positive");
        PeriodicTask {
            period,
            state: TaskState::Suspended,
            next_fire: SimTime::ZERO,
        }
    }

    /// The configured period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Current lifecycle state.
    pub fn state(&self) -> TaskState {
        self.state
    }

    /// Resumes the task at `now`; the first firing is one period later.
    /// Resuming an already-running task restarts its phase.
    pub fn resume(&mut self, now: SimTime) {
        self.state = TaskState::Running;
        self.next_fire = now + self.period;
    }

    /// Suspends the task; pending firings are discarded.
    pub fn suspend(&mut self) {
        self.state = TaskState::Suspended;
    }

    /// Returns the exact times of every firing due up to and including `now`,
    /// advancing the internal schedule. Suspended tasks return nothing.
    pub fn due(&mut self, now: SimTime) -> Vec<SimTime> {
        let mut fired = Vec::new();
        if self.state != TaskState::Running {
            return fired;
        }
        while self.next_fire <= now {
            fired.push(self.next_fire);
            self.next_fire += self.period;
        }
        fired
    }

    /// The time of the next scheduled firing, or `None` if suspended.
    pub fn next_fire(&self) -> Option<SimTime> {
        match self.state {
            TaskState::Running => Some(self.next_fire),
            TaskState::Suspended => None,
        }
    }
}

/// A feed-or-expire watchdog timer.
///
/// Models `COMMANDER_WDT_TIMEOUT_SHUTDOWN`: if the commander receives no
/// setpoint within the timeout, the Crazyflie shuts down (§II-C). The paper
/// raises the timeout to 10 s so the radio-off scan interval can be bridged.
///
/// # Examples
///
/// ```
/// use aerorem_simkit::{SimDuration, SimTime, Watchdog};
///
/// let mut wdt = Watchdog::new(SimDuration::from_secs(2));
/// wdt.feed(SimTime::ZERO);
/// assert!(!wdt.expired(SimTime::from_secs(1)));
/// assert!(wdt.expired(SimTime::from_secs(3)));
/// ```
#[derive(Debug, Clone)]
pub struct Watchdog {
    timeout: SimDuration,
    last_fed: SimTime,
    enabled: bool,
}

impl Watchdog {
    /// Creates an enabled watchdog, last fed at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    pub fn new(timeout: SimDuration) -> Self {
        assert!(timeout > SimDuration::ZERO, "timeout must be positive");
        Watchdog {
            timeout,
            last_fed: SimTime::ZERO,
            enabled: true,
        }
    }

    /// The configured timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// Replaces the timeout (the paper's firmware patch raises it to 10 s).
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    pub fn set_timeout(&mut self, timeout: SimDuration) {
        assert!(timeout > SimDuration::ZERO, "timeout must be positive");
        self.timeout = timeout;
    }

    /// Records activity, restarting the countdown.
    pub fn feed(&mut self, now: SimTime) {
        self.last_fed = now;
    }

    /// Whether the watchdog has gone unfed for longer than the timeout.
    /// Disabled watchdogs never expire.
    pub fn expired(&self, now: SimTime) -> bool {
        self.enabled && now.saturating_since(self.last_fed) > self.timeout
    }

    /// Time remaining before expiry (zero if already expired or disabled).
    pub fn remaining(&self, now: SimTime) -> SimDuration {
        if !self.enabled {
            return SimDuration::ZERO;
        }
        self.timeout
            .saturating_sub(now.saturating_since(self.last_fed))
    }

    /// Disables the watchdog (it will never expire).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Re-enables the watchdog, feeding it at `now`.
    pub fn enable(&mut self, now: SimTime) {
        self.enabled = true;
        self.last_fed = now;
    }

    /// Whether the watchdog is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_task_fires_at_exact_times() {
        let mut t = PeriodicTask::new(SimDuration::from_millis(100));
        t.resume(SimTime::from_millis(50));
        let f = t.due(SimTime::from_millis(400));
        assert_eq!(
            f,
            vec![
                SimTime::from_millis(150),
                SimTime::from_millis(250),
                SimTime::from_millis(350)
            ]
        );
        // No double delivery.
        assert!(t.due(SimTime::from_millis(400)).is_empty());
        assert_eq!(t.next_fire(), Some(SimTime::from_millis(450)));
    }

    #[test]
    fn suspended_task_never_fires() {
        let mut t = PeriodicTask::new(SimDuration::from_millis(100));
        assert_eq!(t.state(), TaskState::Suspended);
        assert!(t.due(SimTime::from_secs(10)).is_empty());
        assert_eq!(t.next_fire(), None);
    }

    #[test]
    fn suspend_resume_cycle_restarts_phase() {
        let mut t = PeriodicTask::new(SimDuration::from_millis(100));
        t.resume(SimTime::ZERO);
        t.due(SimTime::from_millis(100));
        t.suspend();
        assert!(t.due(SimTime::from_secs(5)).is_empty());
        t.resume(SimTime::from_secs(5));
        let f = t.due(SimTime::from_millis(5100));
        assert_eq!(f, vec![SimTime::from_millis(5100)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        PeriodicTask::new(SimDuration::ZERO);
    }

    #[test]
    fn watchdog_expires_after_timeout() {
        let mut w = Watchdog::new(SimDuration::from_millis(500));
        w.feed(SimTime::from_secs(1));
        assert!(!w.expired(SimTime::from_millis(1500)));
        assert!(!w.expired(SimTime::from_millis(1500))); // exactly at limit: not expired
        assert!(w.expired(SimTime::from_millis(1501)));
    }

    #[test]
    fn watchdog_feed_resets() {
        let mut w = Watchdog::new(SimDuration::from_secs(1));
        w.feed(SimTime::ZERO);
        w.feed(SimTime::from_secs(5));
        assert!(!w.expired(SimTime::from_secs(5)));
        assert_eq!(
            w.remaining(SimTime::from_millis(5400)),
            SimDuration::from_millis(600)
        );
    }

    #[test]
    fn watchdog_disable_enable() {
        let mut w = Watchdog::new(SimDuration::from_millis(10));
        w.disable();
        assert!(!w.expired(SimTime::from_secs(100)));
        assert!(!w.is_enabled());
        assert_eq!(w.remaining(SimTime::from_secs(100)), SimDuration::ZERO);
        w.enable(SimTime::from_secs(100));
        assert!(w.is_enabled());
        assert!(!w.expired(SimTime::from_secs(100)));
        assert!(w.expired(SimTime::from_millis(100_011)));
    }

    #[test]
    fn watchdog_timeout_extension_bridges_gap() {
        // The paper's scenario: a ~3 s radio-off scan must not trip the WDT.
        let mut w = Watchdog::new(SimDuration::from_millis(2000)); // default-ish
        w.feed(SimTime::ZERO);
        let scan_end = SimTime::from_secs(3);
        assert!(w.expired(scan_end), "default timeout should trip");
        w.set_timeout(SimDuration::from_secs(10)); // the paper's patch
        assert!(!w.expired(scan_end), "patched timeout should survive");
    }
}
