//! A deterministic, time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: ordered by time, then by insertion sequence so
/// that events scheduled for the same instant pop in FIFO order. This makes
/// every simulation run bit-reproducible.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with stable FIFO ordering for simultaneous
/// events.
///
/// The queue is the core of every `aerorem` scenario: mission steps, radio
/// state changes, watchdog expiries, and battery events are all payloads
/// scheduled here.
///
/// # Examples
///
/// ```
/// use aerorem_simkit::{EventQueue, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { ScanDone, RadioOn }
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(3), Ev::ScanDone);
/// q.schedule(SimTime::from_secs(3), Ev::RadioOn); // same instant: FIFO
/// assert_eq!(q.pop().unwrap().1, Ev::ScanDone);
/// assert_eq!(q.pop().unwrap().1, Ev::RadioOn);
/// assert!(q.is_empty());
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past (before the time of the last popped event) is
    /// clamped to "now": the event will be the next one delivered. This
    /// mirrors an RTOS posting to an expired timer rather than corrupting the
    /// timeline.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Removes and returns the earliest event, advancing the internal clock
    /// to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events, keeping the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E: std::fmt::Debug> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "late");
        q.pop();
        // Now at t=10; schedule for t=1 should clamp, not time-travel.
        q.schedule(SimTime::from_secs(1), "clamped");
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(10));
        assert_eq!(e, "clamped");
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(3), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(q.now() + SimDuration::from_secs(1), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn len_peek_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(2), ());
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        q.clear();
        assert!(q.is_empty());
    }
}
