//! Deterministic discrete-event simulation kernel.
//!
//! The paper's firmware runs on FreeRTOS: periodic tasks (the 100 ms
//! position-hold feedback task), watchdog timers
//! (`COMMANDER_WDT_TIMEOUT_SHUTDOWN`), and queues (`CRTP_TX_QUEUE_SIZE`).
//! This crate provides the simulation-side equivalents:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time.
//! * [`EventQueue`] — a deterministic time-ordered event queue with stable
//!   FIFO tie-breaking, the heart of every scenario in `aerorem-mission`.
//! * [`PeriodicTask`] — fixed-rate task bookkeeping with suspend/resume,
//!   mirroring FreeRTOS `vTaskSuspend`/`vTaskResume` semantics the paper's
//!   feedback task relies on.
//! * [`Watchdog`] — feed-or-expire timers for the commander shutdown rule.
//! * [`TraceLog`] — a bounded, timestamped trace for debugging scenarios.
//!
//! Everything here is pure and deterministic: no wall-clock access, no
//! threads, no randomness.
//!
//! # Examples
//!
//! ```
//! use aerorem_simkit::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(20), "b");
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(10), "a");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t.as_millis(), e), (10, "a"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod tasks;
mod time;
mod trace;

pub use event::EventQueue;
pub use tasks::{PeriodicTask, TaskState, Watchdog};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEntry, TraceLog};
