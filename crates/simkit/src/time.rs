//! Simulated time: instants and durations with microsecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time, measured in microseconds since simulation
/// start.
///
/// `SimTime` is a newtype over `u64`; it cannot go negative, mirroring the
/// monotonic tick counter of an embedded RTOS.
///
/// # Examples
///
/// ```
/// use aerorem_simkit::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
/// assert_eq!(t.as_millis(), 1500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from microseconds since simulation start.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction: `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.as_millis();
        let mins = total_ms / 60_000;
        let secs = (total_ms % 60_000) / 1000;
        let ms = total_ms % 1000;
        write!(f, "{mins:02}:{secs:02}.{ms:03}")
    }
}

/// A span of simulated time, measured in microseconds.
///
/// # Examples
///
/// ```
/// use aerorem_simkit::SimDuration;
///
/// let scan = SimDuration::from_secs(3);
/// let travel = SimDuration::from_secs(4);
/// assert_eq!((scan + travel).as_secs_f64(), 7.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, truncated to whole
    /// microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "duration must be non-negative");
        SimDuration((s * 1e6) as u64)
    }

    /// Microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in this duration (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds in this duration as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics on underflow; use [`SimTime::saturating_since`] when the
    /// ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics when dividing by zero.
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimTime::from_millis(1500).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(0.0015).as_micros(), 1500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 1500);
        let d = t - SimTime::from_secs(1);
        assert_eq!(d.as_millis(), 500);
        assert_eq!((SimDuration::from_secs(4) * 3).as_secs_f64(), 12.0);
        assert_eq!((SimDuration::from_secs(4) / 2).as_secs_f64(), 2.0);
    }

    #[test]
    fn saturating_since() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(3);
        assert_eq!(late.saturating_since(early).as_secs_f64(), 2.0);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_secs(1);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_millis(6 * 60_000 + 12_345);
        assert_eq!(format!("{t}"), "06:12.345");
        assert_eq!(format!("{}", SimDuration::from_millis(1500)), "1.500s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
