//! Byte-level simulation of the AI Thinker ESP-01 AT-command firmware.
//!
//! §III-A: "This driver communicates with the ESP-01 module over its UART
//! interface by sending AT instructions and parsing the output. Since the
//! module is only used to scan for available access points, it suffices that
//! the driver supports just the following AT instructions: i) `AT`, ii)
//! `AT+CWMODE_CUR`, iii) `AT+CWLAP`, iv) `AT+CWLAPOPT`." This module
//! implements that firmware surface, including its insistence on being put
//! into station mode before a scan will run.

use rand::RngCore;

use aerorem_propagation::scan::{perform_scan, ScanConfig};

use crate::driver::MeasurementContext;

/// ESP8266 Wi-Fi operating modes for `AT+CWMODE_CUR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CwMode {
    /// Station (client) mode — required for `AT+CWLAP`.
    Station,
    /// SoftAP mode.
    SoftAp,
    /// Station + SoftAP.
    StationAndSoftAp,
}

impl CwMode {
    fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            1 => CwMode::Station,
            2 => CwMode::SoftAp,
            3 => CwMode::StationAndSoftAp,
            _ => return None,
        })
    }
}

/// The simulated ESP-01 module: feed it AT command lines, get response
/// lines back.
///
/// # Examples
///
/// ```
/// use aerorem_scanner::at::Esp01Module;
///
/// let mut esp = Esp01Module::new();
/// assert_eq!(esp.execute_control("AT"), vec!["OK".to_string()]);
/// assert_eq!(esp.execute_control("AT+CWMODE_CUR=1"), vec!["OK".to_string()]);
/// ```
#[derive(Debug, Clone)]
pub struct Esp01Module {
    mode: Option<CwMode>,
    /// `AT+CWLAPOPT` print mask; bit 0 = ecn? The AI-Thinker mask we care
    /// about selects ⟨ssid, rssi, mac, channel⟩.
    lap_mask: u32,
    scan_config: ScanConfig,
}

/// The `AT+CWLAPOPT` mask selecting ssid (2), rssi (4), mac (8) and
/// channel (16) columns.
pub const CWLAPOPT_SSID_RSSI_MAC_CHANNEL: u32 = 2 | 4 | 8 | 16;

impl Esp01Module {
    /// Powers up a module: no mode set, default print mask, paper-default
    /// scan parameters.
    pub fn new() -> Self {
        Esp01Module {
            mode: None,
            lap_mask: CWLAPOPT_SSID_RSSI_MAC_CHANNEL,
            scan_config: ScanConfig::paper_default(),
        }
    }

    /// Replaces the scan parameters (dwell, channel list, thresholds).
    pub fn set_scan_config(&mut self, config: ScanConfig) {
        self.scan_config = config;
    }

    /// The active scan parameters.
    pub fn scan_config(&self) -> &ScanConfig {
        &self.scan_config
    }

    /// The currently configured Wi-Fi mode, if any.
    pub fn mode(&self) -> Option<CwMode> {
        self.mode
    }

    /// Executes a *control* AT command (everything except `AT+CWLAP`,
    /// which needs a radio context — see [`Esp01Module::execute_cwlap`]).
    ///
    /// Returns the module's response lines; the final line is `OK` on
    /// success or `ERROR` on failure, like the real firmware.
    pub fn execute_control(&mut self, line: &str) -> Vec<String> {
        let line = line.trim();
        if line == "AT" {
            return vec!["OK".into()];
        }
        if line == "AT+RST" {
            // Software reset: the module reboots into its power-on state.
            self.mode = None;
            self.lap_mask = CWLAPOPT_SSID_RSSI_MAC_CHANNEL;
            return vec!["OK".into(), "ready".into()];
        }
        if line == "AT+GMR" {
            // Firmware version banner, AI-Thinker style.
            return vec![
                "AT version:1.2.0.0 (simulated)".into(),
                "SDK version:aerorem-esp01".into(),
                "OK".into(),
            ];
        }
        if line == "ATE0" || line == "ATE1" {
            // Echo control: accepted; the simulation never echoes anyway.
            return vec!["OK".into()];
        }
        if let Some(rest) = line.strip_prefix("AT+CWMODE_CUR=") {
            return match rest.parse::<u8>().ok().and_then(CwMode::from_code) {
                Some(mode) => {
                    self.mode = Some(mode);
                    vec!["OK".into()]
                }
                None => vec!["ERROR".into()],
            };
        }
        if let Some(rest) = line.strip_prefix("AT+CWLAPOPT=") {
            // Real syntax: AT+CWLAPOPT=<sort_enable>,<mask>
            let parts: Vec<&str> = rest.split(',').collect();
            if parts.len() == 2 {
                if let (Ok(_sort), Ok(mask)) = (parts[0].parse::<u8>(), parts[1].parse::<u32>()) {
                    self.lap_mask = mask;
                    return vec!["OK".into()];
                }
            }
            return vec!["ERROR".into()];
        }
        if line == "AT+CWLAP" {
            // Needs execute_cwlap; signalled as busy to a naive caller.
            return vec!["ERROR".into()];
        }
        vec!["ERROR".into()]
    }

    /// Executes `AT+CWLAP`: performs a real scan sweep against the context
    /// and returns `+CWLAP:(...)` rows followed by `OK`.
    ///
    /// Mirrors the firmware's requirement that station mode be configured
    /// first: without it the response is just `ERROR`.
    pub fn execute_cwlap(
        &mut self,
        ctx: &MeasurementContext<'_>,
        rng: &mut dyn RngCore,
    ) -> Vec<String> {
        match self.mode {
            Some(CwMode::Station) | Some(CwMode::StationAndSoftAp) => {}
            _ => return vec!["ERROR".into()],
        }
        let observations = perform_scan(
            ctx.environment(),
            ctx.position(),
            ctx.interferers(),
            &self.scan_config,
            rng,
        );
        let mut lines: Vec<String> = observations
            .iter()
            .map(crate::parse::format_cwlap_row)
            .collect();
        lines.push("OK".into());
        lines
    }
}

impl Default for Esp01Module {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerorem_propagation::building::SyntheticBuilding;
    use aerorem_spatial::Aabb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn at_ping() {
        let mut esp = Esp01Module::new();
        assert_eq!(esp.execute_control("AT"), vec!["OK".to_string()]);
        assert_eq!(esp.execute_control("  AT  "), vec!["OK".to_string()]);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let mut esp = Esp01Module::new();
        esp.execute_control("AT+CWMODE_CUR=1");
        esp.execute_control("AT+CWLAPOPT=1,6");
        let resp = esp.execute_control("AT+RST");
        assert_eq!(resp.first().map(String::as_str), Some("OK"));
        assert!(resp.iter().any(|l| l == "ready"));
        assert_eq!(esp.mode(), None, "mode cleared by reset");
    }

    #[test]
    fn version_banner_and_echo() {
        let mut esp = Esp01Module::new();
        let gmr = esp.execute_control("AT+GMR");
        assert_eq!(gmr.last().map(String::as_str), Some("OK"));
        assert!(gmr.iter().any(|l| l.contains("AT version")));
        assert_eq!(esp.execute_control("ATE0"), vec!["OK".to_string()]);
        assert_eq!(esp.execute_control("ATE1"), vec!["OK".to_string()]);
        assert_eq!(esp.execute_control("ATE2"), vec!["ERROR".to_string()]);
    }

    #[test]
    fn cwmode_transitions() {
        let mut esp = Esp01Module::new();
        assert_eq!(esp.mode(), None);
        assert_eq!(esp.execute_control("AT+CWMODE_CUR=1"), vec!["OK".to_string()]);
        assert_eq!(esp.mode(), Some(CwMode::Station));
        assert_eq!(esp.execute_control("AT+CWMODE_CUR=3"), vec!["OK".to_string()]);
        assert_eq!(esp.mode(), Some(CwMode::StationAndSoftAp));
        assert_eq!(esp.execute_control("AT+CWMODE_CUR=9"), vec!["ERROR".to_string()]);
        assert_eq!(esp.execute_control("AT+CWMODE_CUR=x"), vec!["ERROR".to_string()]);
    }

    #[test]
    fn cwlapopt_sets_mask() {
        let mut esp = Esp01Module::new();
        assert_eq!(esp.execute_control("AT+CWLAPOPT=1,30"), vec!["OK".to_string()]);
        assert_eq!(esp.execute_control("AT+CWLAPOPT=1"), vec!["ERROR".to_string()]);
        assert_eq!(esp.execute_control("AT+CWLAPOPT=a,b"), vec!["ERROR".to_string()]);
    }

    #[test]
    fn unknown_command_errors() {
        let mut esp = Esp01Module::new();
        assert_eq!(esp.execute_control("AT+BOGUS"), vec!["ERROR".to_string()]);
        assert_eq!(esp.execute_control(""), vec!["ERROR".to_string()]);
    }

    #[test]
    fn cwlap_requires_station_mode() {
        let mut rng = StdRng::seed_from_u64(11);
        let env = SyntheticBuilding::paper_like().generate(Aabb::paper_volume(), &mut rng);
        let ctx = MeasurementContext::new(&env, Aabb::paper_volume().center(), &[]);
        let mut esp = Esp01Module::new();
        assert_eq!(esp.execute_cwlap(&ctx, &mut rng), vec!["ERROR".to_string()]);
        esp.execute_control("AT+CWMODE_CUR=2"); // SoftAP only: still can't scan
        assert_eq!(esp.execute_cwlap(&ctx, &mut rng), vec!["ERROR".to_string()]);
        esp.execute_control("AT+CWMODE_CUR=1");
        let lines = esp.execute_cwlap(&ctx, &mut rng);
        assert_eq!(lines.last().map(String::as_str), Some("OK"));
        assert!(lines.len() > 5, "a building full of APs yields rows");
        assert!(lines[0].starts_with("+CWLAP:(\""));
    }

    #[test]
    fn cwlap_rows_have_four_fields() {
        let mut rng = StdRng::seed_from_u64(12);
        let env = SyntheticBuilding::paper_like().generate(Aabb::paper_volume(), &mut rng);
        let ctx = MeasurementContext::new(&env, Aabb::paper_volume().center(), &[]);
        let mut esp = Esp01Module::new();
        esp.execute_control("AT+CWMODE_CUR=1");
        let lines = esp.execute_cwlap(&ctx, &mut rng);
        for row in lines.iter().filter(|l| l.starts_with("+CWLAP")) {
            // ssid and mac are quoted; rssi and channel are bare ints.
            assert_eq!(row.matches('"').count(), 4, "row {row}");
            assert!(row.ends_with(')'), "row {row}");
        }
    }

    #[test]
    fn control_cwlap_refuses_without_context() {
        let mut esp = Esp01Module::new();
        esp.execute_control("AT+CWMODE_CUR=1");
        assert_eq!(esp.execute_control("AT+CWLAP"), vec!["ERROR".to_string()]);
    }

    #[test]
    fn scan_config_swap() {
        let mut esp = Esp01Module::new();
        let cfg = ScanConfig {
            dwell_ms: 80.0,
            ..ScanConfig::paper_default()
        };
        esp.set_scan_config(cfg.clone());
        assert_eq!(esp.scan_config(), &cfg);
    }
}
