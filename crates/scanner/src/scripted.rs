//! A scripted receiver for tests and failure injection.
//!
//! Implements the four-instruction [`RemReceiver`] contract without any
//! radio model: measurements replay a pre-programmed queue of outcomes.
//! Used to test mission logic against receiver faults that the simulated
//! ESP-01 never produces on its own (flaky init, mid-campaign faults,
//! garbage output).

use std::collections::VecDeque;

use rand::RngCore;

use aerorem_propagation::scan::BeaconObservation;

use crate::driver::{MeasurementContext, ReceiverError, ReceiverStatus, RemReceiver};

/// One scripted measurement outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptedOutcome {
    /// The measurement succeeds with these rows.
    Rows(Vec<BeaconObservation>),
    /// The module faults; the receiver enters [`ReceiverStatus::Fault`].
    Fault,
}

/// A replayed receiver.
///
/// # Examples
///
/// ```
/// use aerorem_scanner::scripted::{ScriptedOutcome, ScriptedReceiver};
/// use aerorem_scanner::{RemReceiver, ReceiverStatus};
///
/// let mut rx = ScriptedReceiver::new(vec![ScriptedOutcome::Rows(vec![])], 1.0);
/// rx.init().unwrap();
/// assert_eq!(rx.status(), ReceiverStatus::Ready);
/// ```
#[derive(Debug, Clone)]
pub struct ScriptedReceiver {
    outcomes: VecDeque<ScriptedOutcome>,
    status: ReceiverStatus,
    pending: Option<Vec<BeaconObservation>>,
    duration_ms: f64,
    /// When `true`, `init` fails (simulating a dead module).
    pub fail_init: bool,
    measurements_taken: usize,
}

impl ScriptedReceiver {
    /// Creates a receiver that replays `outcomes` in order; once exhausted,
    /// further measurements return empty row sets.
    pub fn new(outcomes: Vec<ScriptedOutcome>, duration_ms: f64) -> Self {
        ScriptedReceiver {
            outcomes: outcomes.into(),
            status: ReceiverStatus::Uninitialized,
            pending: None,
            duration_ms,
            fail_init: false,
            measurements_taken: 0,
        }
    }

    /// How many measurements have been taken.
    pub fn measurements_taken(&self) -> usize {
        self.measurements_taken
    }
}

impl RemReceiver for ScriptedReceiver {
    fn init(&mut self) -> Result<(), ReceiverError> {
        if self.fail_init {
            self.status = ReceiverStatus::Fault;
            return Err(ReceiverError::ProtocolError {
                response: "no response to AT".into(),
            });
        }
        self.status = ReceiverStatus::Ready;
        Ok(())
    }

    fn status(&self) -> ReceiverStatus {
        self.status
    }

    fn measure(
        &mut self,
        _ctx: &MeasurementContext<'_>,
        _rng: &mut dyn RngCore,
    ) -> Result<(), ReceiverError> {
        if self.status != ReceiverStatus::Ready {
            return Err(ReceiverError::InvalidState {
                was: self.status,
                instruction: "measure",
            });
        }
        self.measurements_taken += 1;
        match self.outcomes.pop_front() {
            Some(ScriptedOutcome::Rows(rows)) => {
                self.pending = Some(rows);
                Ok(())
            }
            Some(ScriptedOutcome::Fault) => {
                self.status = ReceiverStatus::Fault;
                Err(ReceiverError::ProtocolError {
                    response: "scripted module fault".into(),
                })
            }
            None => {
                self.pending = Some(Vec::new());
                Ok(())
            }
        }
    }

    fn take_observations(&mut self) -> Result<Vec<BeaconObservation>, ReceiverError> {
        self.pending.take().ok_or(ReceiverError::NoOutput)
    }

    fn measurement_duration_ms(&self) -> f64 {
        self.duration_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerorem_propagation::ap::{MacAddress, Ssid};
    use aerorem_propagation::environment::RadioEnvironmentBuilder;
    use aerorem_propagation::WifiChannel;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn row() -> BeaconObservation {
        BeaconObservation {
            ssid: Ssid::new("scripted"),
            rssi_dbm: -60,
            mac: MacAddress::from_index(1),
            channel: WifiChannel::new(6).unwrap(),
        }
    }

    #[test]
    fn replays_in_order_then_runs_dry() {
        let env = RadioEnvironmentBuilder::new().build();
        let ctx = MeasurementContext::new(&env, aerorem_spatial::Vec3::ZERO, &[]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut rx = ScriptedReceiver::new(
            vec![
                ScriptedOutcome::Rows(vec![row(), row()]),
                ScriptedOutcome::Rows(vec![row()]),
            ],
            500.0,
        );
        rx.init().unwrap();
        rx.measure(&ctx, &mut rng).unwrap();
        assert_eq!(rx.take_observations().unwrap().len(), 2);
        rx.measure(&ctx, &mut rng).unwrap();
        assert_eq!(rx.take_observations().unwrap().len(), 1);
        // Script exhausted: empty results, not errors.
        rx.measure(&ctx, &mut rng).unwrap();
        assert!(rx.take_observations().unwrap().is_empty());
        assert_eq!(rx.measurements_taken(), 3);
        assert_eq!(rx.measurement_duration_ms(), 500.0);
    }

    #[test]
    fn fault_injection_stops_the_receiver() {
        let env = RadioEnvironmentBuilder::new().build();
        let ctx = MeasurementContext::new(&env, aerorem_spatial::Vec3::ZERO, &[]);
        let mut rng = StdRng::seed_from_u64(0);
        let mut rx = ScriptedReceiver::new(
            vec![
                ScriptedOutcome::Rows(vec![row()]),
                ScriptedOutcome::Fault,
            ],
            500.0,
        );
        rx.init().unwrap();
        rx.measure(&ctx, &mut rng).unwrap();
        let _ = rx.take_observations().unwrap();
        assert!(rx.measure(&ctx, &mut rng).is_err());
        assert_eq!(rx.status(), ReceiverStatus::Fault);
        // Fault is sticky: further measurements are invalid-state errors.
        assert!(matches!(
            rx.measure(&ctx, &mut rng),
            Err(ReceiverError::InvalidState { .. })
        ));
    }

    #[test]
    fn dead_module_fails_init() {
        let mut rx = ScriptedReceiver::new(vec![], 100.0);
        rx.fail_init = true;
        assert!(rx.init().is_err());
        assert_eq!(rx.status(), ReceiverStatus::Fault);
    }
}
