//! REM-generating receiver simulation: the ESP-01 module and the
//! four-instruction driver contract.
//!
//! §II-A of the paper defines a modular interface between the UAV and *any*
//! REM-sampling receiver: a driver must support (i) initializing, (ii)
//! checking the state of, (iii) instructing a measurement on, and (iv)
//! parsing the output of the receiver. That contract is the [`RemReceiver`]
//! trait here — implement it and your receiver rides the same toolchain.
//!
//! The paper instantiates the contract with an AI Thinker ESP-01 (ESP8266)
//! Wi-Fi module driven over UART with AT commands (§III-A). This crate
//! contains a byte-level simulation of that module ([`at::Esp01Module`]:
//! `AT`, `AT+CWMODE_CUR`, `AT+CWLAPOPT`, `AT+CWLAP`) and the driver that
//! speaks to it ([`esp01::Esp01Receiver`]), producing the
//! `⟨ssid, rssi, mac, channel⟩` tuples the rest of the pipeline consumes.
//!
//! # Examples
//!
//! ```
//! use aerorem_scanner::{Esp01Receiver, MeasurementContext, RemReceiver};
//! use aerorem_propagation::building::SyntheticBuilding;
//! use aerorem_spatial::Aabb;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let env = SyntheticBuilding::paper_like().generate(Aabb::paper_volume(), &mut rng);
//! let mut rx = Esp01Receiver::new();
//! rx.init()?;
//! let ctx = MeasurementContext::new(&env, Aabb::paper_volume().center(), &[]);
//! rx.measure(&ctx, &mut rng)?;
//! let rows = rx.take_observations()?;
//! assert!(!rows.is_empty(), "the apartment building is full of APs");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod at;
pub mod driver;
pub mod esp01;
pub mod parse;
pub mod scripted;

pub use driver::{MeasurementContext, ReceiverError, ReceiverStatus, RemReceiver};
pub use esp01::Esp01Receiver;
