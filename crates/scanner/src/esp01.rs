//! The paper's custom ESP-01 driver: a [`RemReceiver`] built on the
//! AT-command module.
//!
//! The driver's init sequence mirrors §III-A: ping with `AT`, set station
//! mode via `AT+CWMODE_CUR=1`, then configure the output columns with
//! `AT+CWLAPOPT`. Measurements issue `AT+CWLAP` and buffer the raw response
//! until the commander fetches and parses it.

use rand::RngCore;

use aerorem_propagation::scan::{BeaconObservation, ScanConfig};

use crate::at::{Esp01Module, CWLAPOPT_SSID_RSSI_MAC_CHANNEL};
use crate::driver::{MeasurementContext, ReceiverError, ReceiverStatus, RemReceiver};
use crate::parse::parse_cwlap_response;

/// The ESP-01 receiver driver.
///
/// # Examples
///
/// ```
/// use aerorem_scanner::{Esp01Receiver, RemReceiver, ReceiverStatus};
///
/// let rx = Esp01Receiver::new();
/// assert_eq!(rx.status(), ReceiverStatus::Uninitialized);
/// ```
#[derive(Debug, Clone)]
pub struct Esp01Receiver {
    module: Esp01Module,
    status: ReceiverStatus,
    pending_output: Option<Vec<String>>,
    /// Deterministic fault schedule: within every `fault_period` measure
    /// attempts, the last `fault_burst` fault. Zero disables injection.
    fault_period: u32,
    fault_burst: u32,
    measures: u32,
}

impl Esp01Receiver {
    /// Creates an uninitialized driver around a fresh module.
    pub fn new() -> Self {
        Esp01Receiver {
            module: Esp01Module::new(),
            status: ReceiverStatus::Uninitialized,
            pending_output: None,
            fault_period: 0,
            fault_burst: 0,
            measures: 0,
        }
    }

    /// Creates a driver that deterministically faults: within every
    /// `period` measure attempts the last `burst` fail with a module fault
    /// (sticky until the next [`RemReceiver::init`]). A burst longer than
    /// one survives a single re-init, modelling the flaky ESP-01 modules
    /// the paper's client had to work around. `period == 0` disables
    /// injection; the schedule draws no randomness, so runs stay
    /// reproducible.
    pub fn with_fault_injection(period: u32, burst: u32) -> Self {
        let mut rx = Self::new();
        rx.fault_period = period;
        rx.fault_burst = burst;
        rx
    }

    /// Creates a driver with custom scan parameters.
    pub fn with_scan_config(config: ScanConfig) -> Self {
        let mut rx = Self::new();
        rx.module.set_scan_config(config);
        rx
    }

    /// Access to the underlying simulated module (for tests and fault
    /// injection).
    pub fn module_mut(&mut self) -> &mut Esp01Module {
        &mut self.module
    }

    fn expect_ok(&mut self, lines: Vec<String>) -> Result<(), ReceiverError> {
        match lines.last().map(String::as_str) {
            Some("OK") => Ok(()),
            _ => {
                self.status = ReceiverStatus::Fault;
                Err(ReceiverError::ProtocolError {
                    response: lines.join("\n"),
                })
            }
        }
    }
}

impl Default for Esp01Receiver {
    fn default() -> Self {
        Self::new()
    }
}

impl RemReceiver for Esp01Receiver {
    fn init(&mut self) -> Result<(), ReceiverError> {
        let ping = self.module.execute_control("AT");
        self.expect_ok(ping)?;
        let mode = self.module.execute_control("AT+CWMODE_CUR=1");
        self.expect_ok(mode)?;
        let opt = self
            .module
            .execute_control(&format!("AT+CWLAPOPT=1,{CWLAPOPT_SSID_RSSI_MAC_CHANNEL}"));
        self.expect_ok(opt)?;
        self.status = ReceiverStatus::Ready;
        Ok(())
    }

    fn status(&self) -> ReceiverStatus {
        self.status
    }

    fn measure(
        &mut self,
        ctx: &MeasurementContext<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<(), ReceiverError> {
        if self.status != ReceiverStatus::Ready {
            return Err(ReceiverError::InvalidState {
                was: self.status,
                instruction: "measure",
            });
        }
        let attempt = self.measures;
        self.measures = self.measures.wrapping_add(1);
        if self.fault_period > 0
            && attempt % self.fault_period >= self.fault_period.saturating_sub(self.fault_burst)
        {
            self.status = ReceiverStatus::Fault;
            return Err(ReceiverError::ProtocolError {
                response: "injected module fault".into(),
            });
        }
        self.status = ReceiverStatus::Busy;
        let lines = self.module.execute_cwlap(ctx, rng);
        if lines.last().map(String::as_str) != Some("OK") {
            self.status = ReceiverStatus::Fault;
            return Err(ReceiverError::ProtocolError {
                response: lines.join("\n"),
            });
        }
        self.pending_output = Some(lines);
        self.status = ReceiverStatus::Ready;
        Ok(())
    }

    fn take_observations(&mut self) -> Result<Vec<BeaconObservation>, ReceiverError> {
        let lines = self.pending_output.take().ok_or(ReceiverError::NoOutput)?;
        parse_cwlap_response(&lines).map_err(|e| ReceiverError::ProtocolError {
            response: e.to_string(),
        })
    }

    fn measurement_duration_ms(&self) -> f64 {
        self.module.scan_config().duration_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerorem_propagation::building::SyntheticBuilding;
    use aerorem_spatial::Aabb;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> (aerorem_propagation::RadioEnvironment, StdRng) {
        let mut rng = StdRng::seed_from_u64(0xE59);
        let env = SyntheticBuilding::paper_like().generate(Aabb::paper_volume(), &mut rng);
        (env, rng)
    }

    #[test]
    fn lifecycle_init_measure_fetch() {
        let (env, mut rng) = world();
        let mut rx = Esp01Receiver::new();
        assert_eq!(rx.status(), ReceiverStatus::Uninitialized);
        rx.init().unwrap();
        assert_eq!(rx.status(), ReceiverStatus::Ready);
        let ctx = MeasurementContext::new(&env, Aabb::paper_volume().center(), &[]);
        rx.measure(&ctx, &mut rng).unwrap();
        assert_eq!(rx.status(), ReceiverStatus::Ready);
        let obs = rx.take_observations().unwrap();
        assert!(
            (15..=73).contains(&obs.len()),
            "expected a few dozen rows, got {}",
            obs.len()
        );
        // The tuples reference real building APs.
        for o in &obs {
            assert!(env.access_point(o.mac).is_some(), "unknown MAC {}", o.mac);
        }
    }

    #[test]
    fn measure_before_init_rejected() {
        let (env, mut rng) = world();
        let mut rx = Esp01Receiver::new();
        let ctx = MeasurementContext::new(&env, Aabb::paper_volume().center(), &[]);
        let err = rx.measure(&ctx, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            ReceiverError::InvalidState {
                was: ReceiverStatus::Uninitialized,
                ..
            }
        ));
    }

    #[test]
    fn output_consumed_once() {
        let (env, mut rng) = world();
        let mut rx = Esp01Receiver::new();
        rx.init().unwrap();
        let ctx = MeasurementContext::new(&env, Aabb::paper_volume().center(), &[]);
        rx.measure(&ctx, &mut rng).unwrap();
        assert!(rx.take_observations().is_ok());
        assert_eq!(rx.take_observations(), Err(ReceiverError::NoOutput));
    }

    #[test]
    fn fetch_without_measure_is_no_output() {
        let mut rx = Esp01Receiver::new();
        rx.init().unwrap();
        assert_eq!(rx.take_observations(), Err(ReceiverError::NoOutput));
    }

    #[test]
    fn duration_follows_scan_config() {
        let cfg = ScanConfig {
            dwell_ms: 100.0,
            ..ScanConfig::paper_default()
        };
        let rx = Esp01Receiver::with_scan_config(cfg);
        assert!((rx.measurement_duration_ms() - 1300.0).abs() < 1e-9);
    }

    #[test]
    fn fault_injection_follows_the_schedule() {
        // period 3, burst 2: attempts 0 ok, 1-2 fault, 3 ok, 4-5 fault...
        let (env, mut rng) = world();
        let ctx = MeasurementContext::new(&env, Aabb::paper_volume().center(), &[]);
        let mut rx = Esp01Receiver::with_fault_injection(3, 2);
        rx.init().unwrap();
        assert!(rx.measure(&ctx, &mut rng).is_ok());
        let _ = rx.take_observations().unwrap();
        assert!(rx.measure(&ctx, &mut rng).is_err());
        assert_eq!(rx.status(), ReceiverStatus::Fault);
        // Sticky until re-init; one re-init is not enough (burst 2).
        rx.init().unwrap();
        assert!(rx.measure(&ctx, &mut rng).is_err());
        rx.init().unwrap();
        assert!(rx.measure(&ctx, &mut rng).is_ok());
        let _ = rx.take_observations().unwrap();
    }

    #[test]
    fn repeated_measurements_differ() {
        // Fading and detection randomness make consecutive scans differ.
        let (env, mut rng) = world();
        let mut rx = Esp01Receiver::new();
        rx.init().unwrap();
        let ctx = MeasurementContext::new(&env, Aabb::paper_volume().center(), &[]);
        rx.measure(&ctx, &mut rng).unwrap();
        let a = rx.take_observations().unwrap();
        rx.measure(&ctx, &mut rng).unwrap();
        let b = rx.take_observations().unwrap();
        assert_ne!(a, b, "two scans should not be byte-identical");
    }
}
