//! Parsing `+CWLAP:(...)` response rows into observation tuples.

use std::fmt;

use aerorem_propagation::ap::{MacAddress, Ssid};
use aerorem_propagation::scan::BeaconObservation;
use aerorem_propagation::WifiChannel;

/// Error produced when a `+CWLAP` row cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCwlapError {
    line: String,
    reason: &'static str,
}

impl ParseCwlapError {
    fn new(line: &str, reason: &'static str) -> Self {
        ParseCwlapError {
            line: line.to_string(),
            reason,
        }
    }
}

impl fmt::Display for ParseCwlapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse CWLAP row ({}): {:?}", self.reason, self.line)
    }
}

impl std::error::Error for ParseCwlapError {}

/// Formats one observation as a `+CWLAP:("ssid",rssi,"mac",channel)` wire
/// row — the single formatter shared by the ESP-01 module simulator and the
/// uplink wire writers, paired with [`parse_cwlap_row`].
///
/// SSIDs are escaped (`\"`, `\\`, `\n`, `\r`) so quotes survive the quoted
/// field and newlines survive the newline-delimited uplink framing.
///
/// # Examples
///
/// ```
/// use aerorem_propagation::ap::{MacAddress, Ssid};
/// use aerorem_propagation::scan::BeaconObservation;
/// use aerorem_propagation::WifiChannel;
/// use aerorem_scanner::parse::{format_cwlap_row, parse_cwlap_row};
///
/// let obs = BeaconObservation {
///     ssid: Ssid::new("quo\"ted"),
///     rssi_dbm: -61,
///     mac: MacAddress::from_index(7),
///     channel: WifiChannel::new(6).unwrap(),
/// };
/// assert_eq!(parse_cwlap_row(&format_cwlap_row(&obs)).unwrap(), obs);
/// ```
pub fn format_cwlap_row(obs: &BeaconObservation) -> String {
    format!(
        "+CWLAP:(\"{}\",{},\"{}\",{})",
        escape_ssid(obs.ssid.as_str()),
        obs.rssi_dbm,
        obs.mac,
        obs.channel.number()
    )
}

fn escape_ssid(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape_ssid(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            '"' => out.push('"'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Parses one `+CWLAP:("ssid",rssi,"mac",channel)` row.
///
/// # Errors
///
/// Returns [`ParseCwlapError`] describing the first malformed field.
///
/// # Examples
///
/// ```
/// use aerorem_scanner::parse::parse_cwlap_row;
///
/// let obs = parse_cwlap_row("+CWLAP:(\"HomeNet\",-67,\"02:00:00:00:00:01\",6)").unwrap();
/// assert_eq!(obs.rssi_dbm, -67);
/// assert_eq!(obs.channel.number(), 6);
/// ```
pub fn parse_cwlap_row(line: &str) -> Result<BeaconObservation, ParseCwlapError> {
    let line = line.trim();
    let body = line
        .strip_prefix("+CWLAP:(")
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| ParseCwlapError::new(line, "missing +CWLAP:(...) frame"))?;

    // ssid is quoted and may contain commas or escaped quotes; find the
    // first *unescaped* closing quote.
    let body = body
        .strip_prefix('"')
        .ok_or_else(|| ParseCwlapError::new(line, "ssid not quoted"))?;
    let mut ssid_end = None;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => {
                ssid_end = Some(i);
                break;
            }
            _ => {}
        }
    }
    let ssid_end = ssid_end.ok_or_else(|| ParseCwlapError::new(line, "unterminated ssid"))?;
    // lint:allow(slice-index) — ssid_end came from char_indices over body, so it is a valid char boundary
    let ssid = unescape_ssid(&body[..ssid_end])
        .ok_or_else(|| ParseCwlapError::new(line, "invalid ssid escape"))?;
    // lint:allow(slice-index) — ssid_end indexes the one-byte `"` terminator, so ssid_end + 1 ≤ body.len()
    let rest = body[ssid_end + 1..]
        .strip_prefix(',')
        .ok_or_else(|| ParseCwlapError::new(line, "missing field separator after ssid"))?;

    let mut fields = rest.split(',');
    let rssi_str = fields
        .next()
        .ok_or_else(|| ParseCwlapError::new(line, "missing rssi"))?;
    let rssi_dbm: i32 = rssi_str
        .trim()
        .parse()
        .map_err(|_| ParseCwlapError::new(line, "rssi not an integer"))?;

    let mac_str = fields
        .next()
        .ok_or_else(|| ParseCwlapError::new(line, "missing mac"))?
        .trim();
    let mac_str = mac_str
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| ParseCwlapError::new(line, "mac not quoted"))?;
    let mac: MacAddress = mac_str
        .parse()
        .map_err(|_| ParseCwlapError::new(line, "invalid mac"))?;

    let ch_str = fields
        .next()
        .ok_or_else(|| ParseCwlapError::new(line, "missing channel"))?;
    let ch_num: u8 = ch_str
        .trim()
        .parse()
        .map_err(|_| ParseCwlapError::new(line, "channel not an integer"))?;
    let channel =
        WifiChannel::new(ch_num).ok_or_else(|| ParseCwlapError::new(line, "channel out of range"))?;

    if fields.next().is_some() {
        return Err(ParseCwlapError::new(line, "trailing fields"));
    }

    Ok(BeaconObservation {
        ssid: Ssid::new(ssid),
        rssi_dbm,
        mac,
        channel,
    })
}

/// Parses a full `AT+CWLAP` response: every `+CWLAP:` row, ignoring the
/// terminating `OK` and blank lines.
///
/// # Errors
///
/// Fails on the first malformed `+CWLAP:` row; non-row lines other than
/// `OK`/empty are also rejected so module faults are not silently skipped.
pub fn parse_cwlap_response(lines: &[String]) -> Result<Vec<BeaconObservation>, ParseCwlapError> {
    let mut out = Vec::new();
    for line in lines {
        let t = line.trim();
        if t.is_empty() || t == "OK" {
            continue;
        }
        if t.starts_with("+CWLAP:") {
            out.push(parse_cwlap_row(t)?);
        } else {
            return Err(ParseCwlapError::new(t, "unexpected line in response"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_valid_row() {
        let obs =
            parse_cwlap_row("+CWLAP:(\"telenet-12345\",-73,\"02:00:00:00:00:2a\",11)").unwrap();
        assert_eq!(obs.ssid.as_str(), "telenet-12345");
        assert_eq!(obs.rssi_dbm, -73);
        assert_eq!(obs.mac.to_string(), "02:00:00:00:00:2a");
        assert_eq!(obs.channel.number(), 11);
    }

    #[test]
    fn ssid_with_comma_and_parens() {
        let obs = parse_cwlap_row("+CWLAP:(\"my,net(2.4)\",-60,\"02:00:00:00:00:01\",1)").unwrap();
        assert_eq!(obs.ssid.as_str(), "my,net(2.4)");
    }

    #[test]
    fn empty_ssid_allowed() {
        let obs = parse_cwlap_row("+CWLAP:(\"\",-80,\"02:00:00:00:00:01\",13)").unwrap();
        assert_eq!(obs.ssid.as_str(), "");
    }

    #[test]
    fn malformed_rows_rejected() {
        let bad = [
            "CWLAP:(\"x\",-60,\"02:00:00:00:00:01\",1)",   // missing '+' frame
            "+CWLAP:(\"x\",-60,\"02:00:00:00:00:01\",1",    // missing ')'
            "+CWLAP:(x,-60,\"02:00:00:00:00:01\",1)",       // unquoted ssid
            "+CWLAP:(\"x\",abc,\"02:00:00:00:00:01\",1)",   // bad rssi
            "+CWLAP:(\"x\",-60,02:00:00:00:00:01,1)",       // unquoted mac
            "+CWLAP:(\"x\",-60,\"nope\",1)",                // bad mac
            "+CWLAP:(\"x\",-60,\"02:00:00:00:00:01\",14)",  // channel out of range
            "+CWLAP:(\"x\",-60,\"02:00:00:00:00:01\",1,9)", // trailing field
            "+CWLAP:(\"x\",-60,\"02:00:00:00:00:01\")",     // missing channel
        ];
        for b in bad {
            assert!(parse_cwlap_row(b).is_err(), "{b} should fail");
        }
    }

    #[test]
    fn response_parsing_skips_ok_and_blanks() {
        let lines = vec![
            "+CWLAP:(\"a\",-50,\"02:00:00:00:00:01\",1)".to_string(),
            "".to_string(),
            "+CWLAP:(\"b\",-60,\"02:00:00:00:00:02\",6)".to_string(),
            "OK".to_string(),
        ];
        let obs = parse_cwlap_response(&lines).unwrap();
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[1].rssi_dbm, -60);
    }

    #[test]
    fn response_rejects_stray_lines() {
        let lines = vec!["busy p...".to_string()];
        assert!(parse_cwlap_response(&lines).is_err());
    }

    #[test]
    fn error_display_mentions_reason() {
        let e = parse_cwlap_row("junk").unwrap_err();
        assert!(e.to_string().contains("frame"));
    }

    #[test]
    fn round_trip_with_formatter() {
        // The module formats rows; the parser must read them back.
        let obs = BeaconObservation {
            ssid: Ssid::new("Net X"),
            rssi_dbm: -71,
            mac: MacAddress::from_index(99),
            channel: WifiChannel::new(9).unwrap(),
        };
        assert_eq!(parse_cwlap_row(&format_cwlap_row(&obs)).unwrap(), obs);
    }

    #[test]
    fn round_trip_hostile_ssids() {
        // Quotes, backslashes, and newlines historically broke the
        // duplicated unescaped formatters; the shared one must survive them.
        for ssid in ["say \"hi\"", "back\\slash", "multi\nline", "cr\rlf", "\"", "\\"] {
            let obs = BeaconObservation {
                ssid: Ssid::new(ssid),
                rssi_dbm: -55,
                mac: MacAddress::from_index(3),
                channel: WifiChannel::new(4).unwrap(),
            };
            let line = format_cwlap_row(&obs);
            assert!(!line.contains('\n'), "escaped row must stay one line");
            assert_eq!(parse_cwlap_row(&line).unwrap(), obs, "ssid {ssid:?}");
        }
    }

    #[test]
    fn unescaped_quote_in_ssid_rejected_not_misparsed() {
        // The old parser took the first quote as the terminator and read
        // garbage fields; now the row fails loudly instead.
        assert!(parse_cwlap_row("+CWLAP:(\"a\"b\",-60,\"02:00:00:00:00:01\",1)").is_err());
    }

    #[test]
    fn invalid_escape_rejected() {
        assert!(parse_cwlap_row("+CWLAP:(\"a\\x\",-60,\"02:00:00:00:00:01\",1)").is_err());
    }
}
