//! The technology-agnostic receiver driver contract.
//!
//! "For integration with the UAV, the user is required to provide the driver
//! for the REM-generating receiver to react to the four specified
//! instructions" (§II-A). Those four instructions are the methods of
//! [`RemReceiver`]; anything that implements the trait — Wi-Fi, BLE, LoRa,
//! mmWave — can be carried by the simulated UAV, provided it would
//! physically fit the paper's size (USB-dongle) and weight (≤ 20 g) limits.

use std::fmt;

use rand::RngCore;

use aerorem_propagation::scan::BeaconObservation;
use aerorem_propagation::{InterferenceSource, RadioEnvironment};
use aerorem_spatial::Vec3;

/// Everything a receiver needs to take one measurement: where it is and
/// what the radio world looks like.
#[derive(Clone, Copy)]
pub struct MeasurementContext<'a> {
    env: &'a RadioEnvironment,
    position: Vec3,
    interferers: &'a [InterferenceSource],
}

impl<'a> MeasurementContext<'a> {
    /// Bundles the environment, receiver position, and active interferers.
    pub fn new(
        env: &'a RadioEnvironment,
        position: Vec3,
        interferers: &'a [InterferenceSource],
    ) -> Self {
        MeasurementContext {
            env,
            position,
            interferers,
        }
    }

    /// The radio environment being sampled.
    pub fn environment(&self) -> &'a RadioEnvironment {
        self.env
    }

    /// The receiver's position in the scan-volume frame.
    pub fn position(&self) -> Vec3 {
        self.position
    }

    /// Interference sources active during the measurement (empty when the
    /// Crazyradio is shut down, per the paper's design).
    pub fn interferers(&self) -> &'a [InterferenceSource] {
        self.interferers
    }
}

impl fmt::Debug for MeasurementContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MeasurementContext")
            .field("position", &self.position)
            .field("aps", &self.env.access_points().len())
            .field("interferers", &self.interferers.len())
            .finish()
    }
}

/// Lifecycle state of a receiver, as reported by instruction (ii).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReceiverStatus {
    /// Power applied but the driver has not initialized it yet.
    Uninitialized,
    /// Initialized and idle; a measurement can be started.
    Ready,
    /// A measurement is in progress.
    Busy,
    /// The receiver reported an unrecoverable error.
    Fault,
}

impl fmt::Display for ReceiverStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Errors surfaced by receiver drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReceiverError {
    /// An instruction was issued in the wrong state (e.g. measuring before
    /// initializing).
    InvalidState {
        /// The state the receiver was in.
        was: ReceiverStatus,
        /// The instruction that was attempted.
        instruction: &'static str,
    },
    /// The module answered something the driver could not parse.
    ProtocolError {
        /// The offending response line.
        response: String,
    },
    /// No measurement output is available to fetch.
    NoOutput,
}

impl fmt::Display for ReceiverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReceiverError::InvalidState { was, instruction } => {
                write!(f, "instruction {instruction} invalid in state {was}")
            }
            ReceiverError::ProtocolError { response } => {
                write!(f, "unparseable module response: {response:?}")
            }
            ReceiverError::NoOutput => write!(f, "no measurement output available"),
        }
    }
}

impl std::error::Error for ReceiverError {}

/// The four-instruction driver contract of §II-A.
///
/// Implementations are expected to be state machines:
/// `Uninitialized → (init) → Ready → (measure) → Busy → Ready`, with the
/// measurement output retrievable exactly once after each measurement.
pub trait RemReceiver {
    /// Instruction (i): initializes the receiver.
    ///
    /// # Errors
    ///
    /// Returns [`ReceiverError`] when the module does not respond correctly.
    fn init(&mut self) -> Result<(), ReceiverError>;

    /// Instruction (ii): reports the receiver's state.
    fn status(&self) -> ReceiverStatus;

    /// Instruction (iii): performs one measurement at the context's
    /// position. Blocks (in simulated terms) for
    /// [`RemReceiver::measurement_duration_ms`].
    ///
    /// # Errors
    ///
    /// Returns [`ReceiverError::InvalidState`] unless the receiver is
    /// [`ReceiverStatus::Ready`].
    fn measure(
        &mut self,
        ctx: &MeasurementContext<'_>,
        rng: &mut dyn RngCore,
    ) -> Result<(), ReceiverError>;

    /// Instruction (iv): takes and parses the output of the last
    /// measurement. Consumes the output; calling twice yields
    /// [`ReceiverError::NoOutput`].
    ///
    /// # Errors
    ///
    /// Returns [`ReceiverError::NoOutput`] when no measurement has completed
    /// since the last fetch.
    fn take_observations(&mut self) -> Result<Vec<BeaconObservation>, ReceiverError>;

    /// How long one measurement takes, in milliseconds — the mission planner
    /// budgets scan time from this.
    fn measurement_duration_ms(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use aerorem_propagation::environment::RadioEnvironmentBuilder;

    #[test]
    fn context_accessors() {
        let env = RadioEnvironmentBuilder::new().build();
        let ctx = MeasurementContext::new(&env, Vec3::new(1.0, 2.0, 3.0), &[]);
        assert_eq!(ctx.position(), Vec3::new(1.0, 2.0, 3.0));
        assert!(ctx.interferers().is_empty());
        assert_eq!(ctx.environment().access_points().len(), 0);
        assert!(format!("{ctx:?}").contains("MeasurementContext"));
    }

    #[test]
    fn error_displays() {
        let e = ReceiverError::InvalidState {
            was: ReceiverStatus::Busy,
            instruction: "measure",
        };
        assert!(e.to_string().contains("Busy"));
        assert!(ReceiverError::NoOutput.to_string().contains("no measurement"));
        let p = ReceiverError::ProtocolError {
            response: "garbage".into(),
        };
        assert!(p.to_string().contains("garbage"));
        assert_eq!(ReceiverStatus::Ready.to_string(), "Ready");
    }
}
