# Developer entry points. `make check` is the full gate run in CI and
# before every commit; the individual targets exist for quicker loops.

.PHONY: check build test doc clippy bench-build bench timing

check: build test doc clippy bench-build

build:
	cargo build --release

test:
	cargo test -q

doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

# Benches must always compile, even when nobody runs them.
bench-build:
	cargo bench --no-run

# Regenerates BENCH_2.json: per-voxel vs batched REM lattice throughput.
bench:
	cargo bench -p aerorem-bench --bench rem_lattice

# Serial-vs-parallel pipeline timing table (see EXPERIMENTS.md).
timing:
	cargo run --release -p aerorem-bench --bin experiments -- timing
