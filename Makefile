# Developer entry points. `make check` is the full gate run in CI and
# before every commit; the individual targets exist for quicker loops.

.PHONY: check build test doc clippy timing

check: build test doc clippy

build:
	cargo build --release

test:
	cargo test -q

doc:
	RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

clippy:
	cargo clippy --workspace --all-targets -- -D warnings

# Serial-vs-parallel pipeline timing table (see EXPERIMENTS.md).
timing:
	cargo run --release -p aerorem-bench --bin experiments -- timing
