//! Shape tests for the future-work extension experiments (DESIGN.md §6).

use aerorem_bench::{density, fleet, lighthouse_cmp};

/// Density sweep: more waypoints → better REM, with diminishing returns.
#[test]
fn density_sweep_improves_then_flattens() {
    let rows = density::run(&[12, 48], 2206).unwrap();
    assert_eq!(rows.len(), 2);
    assert!(rows[1].samples > rows[0].samples * 2);
    assert!(
        rows[1].ground_truth_rmse_db < rows[0].ground_truth_rmse_db,
        "denser sampling must improve the map: {} vs {}",
        rows[1].ground_truth_rmse_db,
        rows[0].ground_truth_rmse_db
    );
    // And costs proportionally more time.
    assert!(rows[1].campaign_secs > rows[0].campaign_secs * 2.0);
}

/// Fleet scaling: one UAV cannot finish the 72-waypoint demo on a single
/// battery — the reason the paper flies two.
#[test]
fn single_uav_hits_the_battery_wall() {
    let rows = fleet::run(&[1, 2], 2206);
    let solo = &rows[0];
    let pair = &rows[1];
    assert_eq!(solo.fleet, 1);
    assert!(
        solo.battery_aborts == 1 && solo.waypoints_visited < 72,
        "a single UAV must abort partway: visited {}",
        solo.waypoints_visited
    );
    assert_eq!(pair.waypoints_visited, 72, "two UAVs finish the job");
    assert_eq!(pair.battery_aborts, 0);
    assert!(pair.samples > solo.samples);
}

/// Lighthouse comparison: two base stations match or beat six UWB anchors —
/// the conclusion's "comparable precision, while requiring less anchors".
#[test]
fn lighthouse_matches_uwb_with_less_infrastructure() {
    let rows = lighthouse_cmp::run(2206);
    let lighthouse = rows
        .iter()
        .find(|r| r.system.contains("Lighthouse"))
        .unwrap();
    let uwb6 = rows
        .iter()
        .find(|r| r.system.contains("Twr, 6 anchors"))
        .unwrap();
    assert_eq!(lighthouse.infrastructure, 2);
    assert_eq!(uwb6.infrastructure, 6);
    assert!(
        lighthouse.rmse_m <= uwb6.rmse_m,
        "lighthouse {} m vs 6-anchor UWB {} m",
        lighthouse.rmse_m,
        uwb6.rmse_m
    );
    assert!(lighthouse.rmse_m < 0.05, "sub-5 cm hover accuracy");
    // Rendering mentions both families.
    let txt = lighthouse_cmp::render(&rows);
    assert!(txt.contains("UWB"));
    assert!(txt.contains("Lighthouse"));
}

/// Shadowing ablation: interpolation quality degrades monotonically as the
/// shadow field decorrelates — the physical premise of REM interpolation.
#[test]
fn shorter_shadow_correlation_means_worse_interpolation() {
    let rows = aerorem_bench::shadow::run(&[0.5, 2.0, 4.0], 2206);
    assert_eq!(rows.len(), 3);
    assert!(
        rows[0].rmse_db > rows[1].rmse_db && rows[1].rmse_db > rows[2].rmse_db,
        "expected monotone decline, got {:?}",
        rows.iter().map(|r| r.rmse_db).collect::<Vec<_>>()
    );
}

/// Sequential vs concurrent scheduling: the paper's "run in a sequence, not
/// jointly" decision must pay off in recovered samples.
#[test]
fn sequential_operation_beats_concurrent() {
    let rows = aerorem_bench::sequential::run(2206);
    assert_eq!(rows.len(), 2);
    let seq = rows.iter().find(|r| r.schedule == "sequential").unwrap();
    let conc = rows.iter().find(|r| r.schedule == "concurrent").unwrap();
    assert!(
        seq.samples as f64 > conc.samples as f64 * 1.15,
        "sequential {} should clearly beat concurrent {}",
        seq.samples,
        conc.samples
    );
}

/// Adaptive resurvey: with an equal follow-up budget, uncertainty-driven
/// waypoints must improve the map at least as much as random ones (and
/// both must beat the initial sparse survey).
#[test]
fn adaptive_resurvey_beats_random_followups() {
    let rows = aerorem_bench::adaptive::run(2206).unwrap();
    let rmse = |name: &str| {
        rows.iter()
            .find(|r| r.strategy == name)
            .unwrap()
            .ground_truth_rmse_db
    };
    assert!(rmse("adaptive") < rmse("initial"));
    assert!(rmse("random") < rmse("initial"));
    assert!(
        rmse("adaptive") <= rmse("random"),
        "adaptive {} vs random {}",
        rmse("adaptive"),
        rmse("random")
    );
}

/// IMU ablation: at the demo's 100 Hz ranging rate the IMU is irrelevant;
/// at sparse fix rates it becomes load-bearing — the reason the Crazyflie's
/// estimator (Mueller et al.) fuses it at all.
#[test]
fn imu_matters_only_at_low_ranging_rates() {
    let rows = aerorem_bench::imurate::run(2206);
    let at = |hz: f64| rows.iter().find(|r| (r.fix_hz - hz).abs() < 0.1).unwrap();
    // 100 Hz: both approaches equivalent (within 30 %).
    let fast = at(100.0);
    assert!(fast.aided_worst_m < fast.blind_worst_m * 1.3);
    // 2 Hz: the aided filter is clearly better.
    let slow = at(2.0);
    assert!(
        slow.aided_worst_m < slow.blind_worst_m * 0.7,
        "aided {} vs blind {}",
        slow.aided_worst_m,
        slow.blind_worst_m
    );
    // Blind error grows monotonically as fixes get sparser.
    for w in rows.windows(2) {
        assert!(w[1].blind_worst_m > w[0].blind_worst_m);
    }
}
