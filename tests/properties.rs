//! Property-based tests over the core data structures and invariants.

use aerorem::ml::kdtree::{brute_force_nearest, KdTree};
use aerorem::ml::knn::{KnnRegressor, Weighting};
use aerorem::ml::kriging::{Variogram, VariogramKind};
use aerorem::ml::Regressor;
use aerorem::numerics::stats::{rmse, Histogram};
use aerorem::numerics::Matrix;
use aerorem::propagation::channel::{band_overlap_fraction, WifiChannel};
use aerorem::propagation::shadowing::ShadowingField;
use aerorem::radio::crtp::{CrtpPacket, CrtpPort};
use aerorem::simkit::{EventQueue, SimTime};
use aerorem::spatial::{Aabb, Vec3};
use proptest::prelude::*;

fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_map(move |x| {
        let span = range.end - range.start;
        range.start + (x.abs() % span)
    })
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (
        finite_f64(-50.0..50.0),
        finite_f64(-50.0..50.0),
        finite_f64(-50.0..50.0),
    )
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

proptest! {
    // --- spatial ---

    #[test]
    fn vec3_triangle_inequality(a in vec3(), b in vec3(), c in vec3()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    #[test]
    fn vec3_norm_scales_linearly(v in vec3(), s in finite_f64(0.0..100.0)) {
        prop_assert!(((v * s).norm() - s * v.norm()).abs() < 1e-6 * (1.0 + v.norm() * s));
    }

    #[test]
    fn aabb_clamp_is_inside_and_idempotent(p in vec3()) {
        let v = Aabb::paper_volume();
        let c = v.clamp(p);
        prop_assert!(v.contains(c));
        prop_assert_eq!(v.clamp(c), c);
    }

    #[test]
    fn waypoint_grids_stay_inside(n in 1usize..100) {
        let v = Aabb::paper_volume();
        let g = aerorem::spatial::grid::WaypointGrid::even(v, n).unwrap();
        prop_assert_eq!(g.len(), n);
        prop_assert!(g.iter().all(|p| v.contains(*p)));
    }

    // --- numerics ---

    #[test]
    fn lu_solve_reconstructs_rhs(
        seed in 0u64..1000,
        n in 1usize..8,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = rng.gen_range(-5.0..5.0);
            }
            a[(i, i)] += 10.0; // diagonally dominant → nonsingular
        }
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = a.solve(&b).unwrap();
        for (u, v) in x.iter().zip(&x_true) {
            prop_assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn cholesky_solve_matches_lu(seed in 0u64..500, n in 1usize..7) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // SPD via AᵀA + I.
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = rng.gen_range(-2.0..2.0);
            }
        }
        let spd = m.transpose().matmul(&m).unwrap().add_mat(&Matrix::identity(n)).unwrap();
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let x1 = spd.solve_spd(&b).unwrap();
        let x2 = spd.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            prop_assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn rmse_nonnegative_and_zero_iff_equal(ys in prop::collection::vec(finite_f64(-100.0..0.0), 1..40)) {
        prop_assert_eq!(rmse(&ys, &ys), 0.0);
        let shifted: Vec<f64> = ys.iter().map(|y| y + 1.0).collect();
        prop_assert!((rmse(&shifted, &ys) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_conserves_observations(
        xs in prop::collection::vec(finite_f64(-10.0..10.0), 0..200),
    ) {
        let mut h = Histogram::new(-5.0, 5.0, 0.5).unwrap();
        h.extend(xs.iter().copied());
        prop_assert_eq!(h.total() + h.outliers(), xs.len() as u64);
    }

    // --- propagation ---

    #[test]
    fn band_overlap_fraction_bounded(
        a_lo in finite_f64(0.0..100.0), a_w in finite_f64(0.1..50.0),
        b_lo in finite_f64(0.0..100.0), b_w in finite_f64(0.1..50.0),
    ) {
        let f = band_overlap_fraction(a_lo, a_lo + a_w, b_lo, b_lo + b_w);
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn channel_overlap_symmetric_for_equal_widths(a in 1u8..=13, b in 1u8..=13) {
        let ca = WifiChannel::new(a).unwrap();
        let cb = WifiChannel::new(b).unwrap();
        prop_assert!((ca.overlap_fraction(cb) - cb.overlap_fraction(ca)).abs() < 1e-12);
    }

    #[test]
    fn shadowing_deterministic_and_finite(p in vec3(), ap in 0u64..50) {
        let f = ShadowingField::new(4.0, 2.0, 99);
        let v = f.sample(ap, p);
        prop_assert!(v.is_finite());
        prop_assert_eq!(v, f.sample(ap, p));
        // Physically plausible bound: |shadowing| < 8σ.
        prop_assert!(v.abs() < 32.0);
    }

    // --- radio ---

    #[test]
    fn crtp_fragment_reassemble_roundtrip(data in prop::collection::vec(any::<u8>(), 0..500)) {
        let frags = CrtpPacket::fragment(CrtpPort::Console, 0, &data).unwrap();
        let whole = CrtpPacket::reassemble(&frags);
        prop_assert!(whole.is_complete());
        prop_assert_eq!(whole.fragments_lost, 0);
        prop_assert_eq!(whole.contiguous().unwrap(), data);
    }

    #[test]
    fn crtp_wire_roundtrip(
        channel in 0u8..=3,
        payload in prop::collection::vec(any::<u8>(), 0..=30),
    ) {
        let pkt = CrtpPacket::new(CrtpPort::Log, channel, payload).unwrap();
        prop_assert_eq!(CrtpPacket::decode(&pkt.encode()).unwrap(), pkt);
    }

    // --- simkit ---

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..10_000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    // --- ml ---

    #[test]
    fn kdtree_matches_brute_force(
        seed in 0u64..300,
        n in 1usize..80,
        k in 1usize..10,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let points: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.gen_range(-5.0..5.0)).collect())
            .collect();
        let tree = KdTree::build(points.clone()).unwrap();
        let q: Vec<f64> = (0..3).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let got = tree.nearest(&q, k);
        let want = brute_force_nearest(&points, &q, k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g.1 - w.1).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_prediction_within_target_range(
        seed in 0u64..200,
        k in 1usize..8,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..30).map(|_| vec![rng.gen_range(0.0..10.0)]).collect();
        let y: Vec<f64> = x.iter().map(|r| -60.0 - r[0]).collect();
        let mut knn = KnnRegressor::new(k, Weighting::Distance, 2.0).unwrap();
        knn.fit(&x, &y).unwrap();
        let q = rng.gen_range(0.0..10.0);
        let p = knn.predict_one(&[q]).unwrap();
        // kNN is a convex combination of targets.
        let lo = y.iter().cloned().fold(f64::MAX, f64::min);
        let hi = y.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!((lo - 1e-9..=hi + 1e-9).contains(&p));
    }

    /// `predict_batch` must reproduce mapped `predict_one` **bit for bit**
    /// for every estimator in the zoo — batching is a performance
    /// optimization, never a numerical change. Covers the kNN arena-tree
    /// backend (Euclidean, dim ≤ 8), the generic Minkowski brute path, the
    /// per-group ensemble (including its global-mean fallback), the MLP
    /// matrix-level forward, IDW, kriging, and the baseline.
    #[test]
    fn predict_batch_matches_predict_one_across_the_zoo(
        seed in 0u64..25,
        n_queries in 1usize..10,
    ) {
        use aerorem::ml::baseline::GroupMeanBaseline;
        use aerorem::ml::ensemble::PerGroupKnn;
        use aerorem::ml::idw::IdwInterpolator;
        use aerorem::ml::kriging::{KrigingConfig, OrdinaryKriging};
        use aerorem::ml::mlp::{Activation, Mlp, MlpConfig};
        use aerorem::ml::FeatureMatrix;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        // Rows: [x, y, z, one-hot group of width 2], like the paper's
        // feature layout in miniature.
        let row = |rng: &mut rand::rngs::StdRng, g: usize| {
            vec![
                rng.gen_range(0.0..4.0),
                rng.gen_range(0.0..3.0),
                rng.gen_range(0.0..2.0),
                if g == 0 { 1.0 } else { 0.0 },
                if g == 1 { 1.0 } else { 0.0 },
            ]
        };
        let x: Vec<Vec<f64>> = (0..40).map(|i| row(&mut rng, i % 2)).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| -60.0 - 2.0 * r[0] - r[1] + 0.5 * r[2] - 5.0 * r[4])
            .collect();
        let queries: Vec<Vec<f64>> = (0..n_queries).map(|i| row(&mut rng, i % 2)).collect();
        let fm = FeatureMatrix::from_rows(&queries).unwrap();
        let mlp_config = MlpConfig {
            hidden: vec![(8, Activation::Sigmoid)],
            epochs: 5,
            ..MlpConfig::paper_tuned()
        };
        let scale = {
            let mut s = vec![1.0; 5];
            s[3] = 3.0;
            s[4] = 3.0;
            s
        };
        let mut zoo: Vec<Box<dyn Regressor>> = vec![
            Box::new(GroupMeanBaseline::new(3..5).unwrap()),
            // Euclidean, dim ≤ 8 → arena KD-tree backend.
            Box::new(KnnRegressor::new(3, Weighting::Distance, 2.0).unwrap()),
            // Non-Euclidean Minkowski → generic brute-force backend.
            Box::new(KnnRegressor::new(4, Weighting::Uniform, 1.0).unwrap()),
            // Scaled one-hot block, as in the paper's best model.
            Box::new(
                KnnRegressor::new(8, Weighting::Distance, 2.0)
                    .unwrap()
                    .with_feature_scaling(scale)
                    .unwrap(),
            ),
            Box::new(PerGroupKnn::new(3..5, 2, Weighting::Distance, 2.0).unwrap()),
            Box::new(Mlp::new(mlp_config)),
            Box::new(IdwInterpolator::new(2.0, Some(8)).unwrap()),
            Box::new(OrdinaryKriging::new(KrigingConfig::default())),
        ];
        for model in &mut zoo {
            model.fit(&x, &y).unwrap();
        }
        for model in &zoo {
            let batch = model.predict_batch(&fm).unwrap();
            prop_assert_eq!(batch.len(), queries.len());
            for (q, b) in queries.iter().zip(&batch) {
                prop_assert_eq!(model.predict_one(q).unwrap(), *b);
            }
        }
    }

    /// `fit_batch` must leave every estimator in exactly the state `fit`
    /// would — training through a flat [`FeatureMatrix`] is a performance
    /// optimization, never a numerical change. Two zoos are built
    /// identically, one trained row-nested and one trained flat, and every
    /// prediction must agree bit for bit.
    #[test]
    fn fit_batch_matches_fit_across_the_zoo(
        seed in 0u64..15,
        n_queries in 1usize..8,
    ) {
        use aerorem::ml::baseline::{GlobalMean, GroupMeanBaseline};
        use aerorem::ml::ensemble::PerGroupKnn;
        use aerorem::ml::idw::IdwInterpolator;
        use aerorem::ml::kriging::{KrigingConfig, OrdinaryKriging};
        use aerorem::ml::mlp::{Activation, Mlp, MlpConfig};
        use aerorem::ml::FeatureMatrix;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let row = |rng: &mut rand::rngs::StdRng, g: usize| {
            vec![
                rng.gen_range(0.0..4.0),
                rng.gen_range(0.0..3.0),
                rng.gen_range(0.0..2.0),
                if g == 0 { 1.0 } else { 0.0 },
                if g == 1 { 1.0 } else { 0.0 },
            ]
        };
        let x: Vec<Vec<f64>> = (0..40).map(|i| row(&mut rng, i % 2)).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| -60.0 - 2.0 * r[0] - r[1] + 0.5 * r[2] - 5.0 * r[4])
            .collect();
        let queries: Vec<Vec<f64>> = (0..n_queries).map(|i| row(&mut rng, i % 2)).collect();
        let scale = {
            let mut s = vec![1.0; 5];
            s[3] = 3.0;
            s[4] = 3.0;
            s
        };
        let make_zoo = || -> Vec<Box<dyn Regressor>> {
            vec![
                Box::new(GlobalMean::new()),
                Box::new(GroupMeanBaseline::new(3..5).unwrap()),
                Box::new(KnnRegressor::new(3, Weighting::Distance, 2.0).unwrap()),
                Box::new(KnnRegressor::new(4, Weighting::Uniform, 1.0).unwrap()),
                Box::new(
                    KnnRegressor::new(8, Weighting::Distance, 2.0)
                        .unwrap()
                        .with_feature_scaling(scale.clone())
                        .unwrap(),
                ),
                Box::new(PerGroupKnn::new(3..5, 2, Weighting::Distance, 2.0).unwrap()),
                Box::new(Mlp::new(MlpConfig {
                    hidden: vec![(8, Activation::Sigmoid)],
                    epochs: 5,
                    ..MlpConfig::paper_tuned()
                })),
                Box::new(IdwInterpolator::new(2.0, Some(8)).unwrap()),
                Box::new(OrdinaryKriging::new(KrigingConfig::default())),
            ]
        };
        let xm = FeatureMatrix::from_rows(&x).unwrap();
        let mut nested = make_zoo();
        let mut flat = make_zoo();
        for (a, b) in nested.iter_mut().zip(&mut flat) {
            a.fit(&x, &y).unwrap();
            b.fit_batch(&xm, &y).unwrap();
        }
        for (a, b) in nested.iter().zip(&flat) {
            for q in &queries {
                prop_assert_eq!(a.predict_one(q).unwrap(), b.predict_one(q).unwrap());
            }
        }
    }

    /// Grid search must rank candidates identically — names and RMSE bits —
    /// under both execution policies, for any seed.
    #[test]
    fn grid_search_policy_identity(seed in 0u64..100) {
        use aerorem::ml::dataset::Dataset;
        use aerorem::ml::gridsearch::{grid_search_with, knn_grid};
        use aerorem::numerics::ExecPolicy;
        use rand::SeedableRng;
        let data = Dataset::new(
            (0..50).map(|i| vec![i as f64 / 7.0, (i % 4) as f64]).collect(),
            (0..50).map(|i| -60.0 - (i % 9) as f64 * 1.1).collect(),
        ).unwrap();
        let serial = grid_search_with(
            knn_grid(&[1, 3, 8]),
            &data,
            0.25,
            &mut rand::rngs::StdRng::seed_from_u64(seed),
            ExecPolicy::Serial,
        ).unwrap();
        let parallel = grid_search_with(
            knn_grid(&[1, 3, 8]),
            &data,
            0.25,
            &mut rand::rngs::StdRng::seed_from_u64(seed),
            ExecPolicy::Parallel,
        ).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    /// Fold-parallel cross-validation must return the exact per-fold RMSEs
    /// of the serial loop, for any seed and fold count.
    #[test]
    fn cross_validate_policy_identity(seed in 0u64..100, k in 2usize..6) {
        use aerorem::ml::crossval::cross_validate_with;
        use aerorem::ml::dataset::Dataset;
        use aerorem::numerics::ExecPolicy;
        use rand::SeedableRng;
        let data = Dataset::new(
            (0..36).map(|i| vec![i as f64, (i % 5) as f64 * 0.4]).collect(),
            (0..36).map(|i| -55.0 - (i % 7) as f64).collect(),
        ).unwrap();
        let make = KnnRegressor::paper_tuned;
        let serial = cross_validate_with(
            &data, k, &mut rand::rngs::StdRng::seed_from_u64(seed), make, ExecPolicy::Serial,
        ).unwrap();
        let parallel = cross_validate_with(
            &data, k, &mut rand::rngs::StdRng::seed_from_u64(seed), make, ExecPolicy::Parallel,
        ).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn variogram_monotone_nondecreasing(
        nugget in finite_f64(0.0..2.0),
        sill in finite_f64(0.1..10.0),
        range in finite_f64(0.5..20.0),
        h1 in finite_f64(0.001..50.0),
        h2 in finite_f64(0.001..50.0),
    ) {
        for kind in [VariogramKind::Exponential, VariogramKind::Spherical, VariogramKind::Gaussian] {
            let v = Variogram { kind, nugget, sill, range };
            let (lo, hi) = if h1 <= h2 { (h1, h2) } else { (h2, h1) };
            prop_assert!(v.gamma(lo) <= v.gamma(hi) + 1e-12);
            prop_assert!(v.gamma(lo) >= 0.0);
        }
    }
}

// --- mission / uav invariants ---

proptest! {
    /// The shared CWLAP formatter and parser must round-trip any SSID —
    /// including quotes, backslashes, commas, newlines and unicode — on a
    /// single wire line.
    #[test]
    fn cwlap_format_parse_roundtrip(
        ssid in prop::collection::vec(any::<u8>(), 0..32)
            .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned()),
        rssi in -100i32..0,
        mac_idx in 0u32..1000,
        ch in 1u8..=13,
    ) {
        use aerorem::propagation::ap::{MacAddress, Ssid};
        use aerorem::propagation::scan::BeaconObservation;
        use aerorem::scanner::parse::{format_cwlap_row, parse_cwlap_row};
        let obs = BeaconObservation {
            ssid: Ssid::new(ssid),
            rssi_dbm: rssi,
            mac: MacAddress::from_index(mac_idx),
            channel: WifiChannel::new(ch).unwrap(),
        };
        let line = format_cwlap_row(&obs);
        prop_assert!(!line.contains('\n'), "wire rows must stay single-line");
        prop_assert_eq!(parse_cwlap_row(&line).unwrap(), obs);
    }

    /// A lossy link (random fragment drops + reordering) must never hand
    /// the parser a *spliced* row: every recovered line that parses as a
    /// CWLAP row is byte-identical to a row that was actually sent.
    #[test]
    fn lossy_crtp_link_never_splices_rows(
        seed in 0u64..300,
        n_rows in 1usize..25,
        drop_pct in 0u32..60,
    ) {
        use aerorem::propagation::ap::{MacAddress, Ssid};
        use aerorem::propagation::scan::BeaconObservation;
        use aerorem::scanner::parse::{format_cwlap_row, parse_cwlap_row};
        use rand::{Rng, SeedableRng};
        let rows: Vec<String> = (0..n_rows as u32)
            .map(|i| {
                format_cwlap_row(&BeaconObservation {
                    ssid: Ssid::new(format!("ap-{i}")),
                    rssi_dbm: -40 - i as i32,
                    mac: MacAddress::from_index(i),
                    channel: WifiChannel::new(1 + (i % 13) as u8).unwrap(),
                })
            })
            .collect();
        let wire: String = rows.iter().map(|r| format!("{r}\n")).collect();
        let frags = CrtpPacket::fragment(CrtpPort::Console, 0, wire.as_bytes()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut kept: Vec<_> = frags
            .into_iter()
            .filter(|_| rng.gen_range(0u32..100) >= drop_pct)
            .collect();
        for i in (1..kept.len()).rev() {
            let j = rng.gen_range(0..=i);
            kept.swap(i, j);
        }
        let recovered = CrtpPacket::reassemble(&kept).lines();
        for line in &recovered.lines {
            if parse_cwlap_row(line).is_ok() {
                prop_assert!(
                    rows.iter().any(|r| r == line),
                    "link synthesized a row that was never sent: {}",
                    line
                );
            }
        }
    }

    #[test]
    fn csv_roundtrip_arbitrary_ssids(ssids in prop::collection::vec(".{0,32}", 1..10)) {
        use aerorem::mission::{csv, Sample, SampleSet};
        use aerorem::propagation::ap::{MacAddress, Ssid};
        use aerorem::propagation::WifiChannel;
        use aerorem::simkit::SimTime;
        use aerorem::uav::UavId;
        let mut set = SampleSet::new();
        for (i, name) in ssids.iter().enumerate() {
            set.push(Sample {
                uav: UavId(0),
                waypoint_index: i,
                position: Vec3::new(i as f64, 0.0, 1.0),
                true_position: Vec3::new(i as f64, 0.0, 1.0),
                ssid: Ssid::new(name.clone()),
                mac: MacAddress::from_index(i as u32),
                channel: WifiChannel::new(6).unwrap(),
                rssi_dbm: -70,
                timestamp: SimTime::from_millis(i as u64),
            });
        }
        let back = csv::from_csv(&csv::to_csv(&set)).unwrap();
        prop_assert_eq!(back, set);
    }

    #[test]
    fn commander_never_recovers_from_shutdown(
        feed_times in prop::collection::vec(0u64..20_000, 0..30),
        probe in 0u64..40_000,
    ) {
        use aerorem::simkit::SimTime;
        use aerorem::uav::commander::{Commander, CommanderState};
        use aerorem::uav::dynamics::ControlInput;
        use aerorem::uav::firmware::FirmwareConfig;
        let mut c = Commander::new(FirmwareConfig::stock_2021_06(), SimTime::ZERO);
        let mut feeds = feed_times.clone();
        feeds.sort_unstable();
        let mut shutdown_seen = false;
        for t in feeds {
            let input = c.control(SimTime::from_millis(t));
            if c.state() == CommanderState::Shutdown {
                shutdown_seen = true;
                prop_assert_eq!(input, ControlInput::MotorsOff);
            }
            if !shutdown_seen {
                c.set_setpoint(SimTime::from_millis(t), Vec3::splat(1.0));
            } else {
                // Feeding after shutdown must not resurrect the commander.
                c.set_setpoint(SimTime::from_millis(t), Vec3::splat(1.0));
                prop_assert_eq!(c.state(), CommanderState::Shutdown);
            }
        }
        let final_input = c.control(SimTime::from_millis(probe.max(30_000)));
        // 30+ s of silence always ends in shutdown on stock firmware.
        prop_assert_eq!(final_input, ControlInput::MotorsOff);
    }

    #[test]
    fn battery_drain_is_monotone(
        durations in prop::collection::vec(1u64..120, 1..40),
    ) {
        use aerorem::simkit::SimDuration;
        use aerorem::uav::battery::{Battery, BatteryConfig, PowerState};
        let mut b = Battery::new(BatteryConfig::paper_crazyflie());
        let mut last = b.remaining_mah();
        for d in durations {
            b.drain(SimDuration::from_secs(d), PowerState::hover_with_decks());
            prop_assert!(b.remaining_mah() <= last);
            prop_assert!(b.remaining_mah() >= 0.0);
            last = b.remaining_mah();
        }
    }

    #[test]
    fn quadrotor_stays_above_floor(
        targets in prop::collection::vec(
            (finite_f64(-3.0..3.0), finite_f64(-3.0..3.0), finite_f64(-2.0..3.0)),
            1..6,
        ),
    ) {
        use aerorem::uav::dynamics::{ControlInput, DynamicsConfig, Quadrotor};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut q = Quadrotor::new(DynamicsConfig::crazyflie(), Vec3::ZERO);
        for (x, y, z) in targets {
            for _ in 0..100 {
                q.step(0.01, ControlInput::Position(Vec3::new(x, y, z)), &mut rng);
                prop_assert!(q.position().z >= -1e-9, "below floor: {}", q.position().z);
                prop_assert!(q.velocity().norm() <= 0.6 + 1e-9);
            }
        }
    }
}

/// The per-AP link cache memoizes a deterministic quantity, so a cached
/// campaign must emit a bit-identical report for any seed. Campaigns are
/// expensive (a full fleet simulation per run), so this sweeps a fixed
/// handful of seeds as a plain test instead of a proptest.
#[test]
fn cached_campaign_reports_are_bit_identical() {
    use aerorem::mission::{Campaign, CampaignConfig, FleetPlan};
    use aerorem::simkit::SimDuration;
    use rand::SeedableRng;
    let config = |link_cache: bool| CampaignConfig {
        fleet_plan: FleetPlan {
            fleet_size: 2,
            total_waypoints: 12,
            travel_time: SimDuration::from_secs(2),
            scan_time: SimDuration::from_secs(2),
        },
        link_cache,
        ..CampaignConfig::paper_demo()
    };
    for seed in [0u64, 7, 1234, 0xAE90] {
        let cached = Campaign::new(config(true))
            .run(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let uncached = Campaign::new(config(false))
            .run(&mut rand::rngs::StdRng::seed_from_u64(seed));
        assert_eq!(cached.samples, uncached.samples, "seed {seed}");
        assert_eq!(cached.total_time, uncached.total_time, "seed {seed}");
    }
}
