//! Property-based tests for the wire frame codec
//! (`docs/WIRE_FORMAT.md`), mirroring `tests/snapshot.rs`: round-trip
//! bit-identity over arbitrary payload bit patterns, and typed rejection
//! of every single-byte flip, every truncation offset, and hostile
//! declared lengths — never a panic, never an attacker-sized allocation.

use aerorem::numerics::codec::crc32;
use aerorem::propagation::ap::MacAddress;
use aerorem::serve::wire::{
    ErrorCode, Frame, FrameKind, Message, NamespaceInfo, WireError, FRAME_HEADER_LEN, MAX_PAYLOAD,
};
use aerorem::serve::{Query, Response};
use aerorem::spatial::octree::BoxStats;
use aerorem::spatial::{Aabb, Vec3};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Seeded queries with arbitrary f64 bit patterns wherever the wire
/// carries raw bits (positions, thresholds); box regions stay finite and
/// ordered because `Aabb` enforces positive extent.
fn random_queries(seed: u64, count: usize) -> Vec<Query> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mac = MacAddress::from_index(rng.gen_range(1..200));
            let raw_vec = |rng: &mut rand::rngs::StdRng| {
                Vec3::new(
                    f64::from_bits(rng.gen()),
                    f64::from_bits(rng.gen()),
                    f64::from_bits(rng.gen()),
                )
            };
            match rng.gen_range(0..4) {
                0 => Query::Point {
                    pos: raw_vec(&mut rng),
                    ap: mac,
                },
                1 => Query::BestAp {
                    pos: raw_vec(&mut rng),
                },
                2 => {
                    let min = Vec3::new(
                        rng.gen_range(-50.0..50.0),
                        rng.gen_range(-50.0..50.0),
                        rng.gen_range(-50.0..50.0),
                    );
                    let max = Vec3::new(
                        min.x + rng.gen_range(0.1..9.0),
                        min.y + rng.gen_range(0.1..9.0),
                        min.z + rng.gen_range(0.1..9.0),
                    );
                    Query::BoxStats {
                        region: Aabb::new(min, max).expect("positive extent"),
                        ap: mac,
                    }
                }
                _ => Query::Coverage {
                    threshold_dbm: f64::from_bits(rng.gen()),
                    ap: mac,
                },
            }
        })
        .collect()
}

/// Seeded responses with arbitrary f64 bit patterns everywhere.
fn random_responses(seed: u64, count: usize) -> Vec<Response> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| match rng.gen_range(0..4) {
            0 => Response::Value(if rng.gen() {
                Some(f64::from_bits(rng.gen()))
            } else {
                None
            }),
            1 => Response::Best(if rng.gen() {
                Some((
                    MacAddress::from_index(rng.gen_range(1..200)),
                    f64::from_bits(rng.gen()),
                ))
            } else {
                None
            }),
            2 => Response::Stats(BoxStats {
                min: f64::from_bits(rng.gen()),
                max: f64::from_bits(rng.gen()),
                sum: f64::from_bits(rng.gen()),
                count: rng.gen_range(0..1 << 32),
            }),
            _ => Response::Covered {
                cells: rng.gen_range(0..1 << 32),
                fraction: f64::from_bits(rng.gen()),
            },
        })
        .collect()
}

fn queries_bit_identical(a: &[Query], b: &[Query]) -> bool {
    let v3 = |v: Vec3| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()];
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Query::Point { pos: p, ap: m }, Query::Point { pos: q, ap: n }) => {
                v3(*p) == v3(*q) && m == n
            }
            (Query::BestAp { pos: p }, Query::BestAp { pos: q }) => v3(*p) == v3(*q),
            (Query::BoxStats { region: r, ap: m }, Query::BoxStats { region: s, ap: n }) => {
                v3(r.min()) == v3(s.min()) && v3(r.max()) == v3(s.max()) && m == n
            }
            (
                Query::Coverage { threshold_dbm: t, ap: m },
                Query::Coverage { threshold_dbm: u, ap: n },
            ) => t.to_bits() == u.to_bits() && m == n,
            _ => false,
        })
}

fn responses_bit_identical(a: &[Response], b: &[Response]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Response::Value(u), Response::Value(v)) => {
                u.map(f64::to_bits) == v.map(f64::to_bits)
            }
            (Response::Best(u), Response::Best(v)) => {
                u.map(|(m, x)| (m, x.to_bits())) == v.map(|(m, x)| (m, x.to_bits()))
            }
            (Response::Stats(u), Response::Stats(v)) => {
                u.min.to_bits() == v.min.to_bits()
                    && u.max.to_bits() == v.max.to_bits()
                    && u.sum.to_bits() == v.sum.to_bits()
                    && u.count == v.count
            }
            (
                Response::Covered { cells: uc, fraction: uf },
                Response::Covered { cells: vc, fraction: vf },
            ) => uc == vc && uf.to_bits() == vf.to_bits(),
            _ => false,
        })
}

proptest! {
    // --- round trip: frames and messages survive the wire bit-exactly ---

    #[test]
    fn request_frames_round_trip_bit_identically(
        seed in 0u64..300,
        count in 0usize..24,
        namespace in 0u32..16,
        seq in any::<u64>(),
    ) {
        let queries = random_queries(seed, count);
        let frame = Message::Request { queries: queries.clone() }.into_frame(namespace, seq);
        let bytes = frame.encode();
        let decoded = Frame::decode_exact(&bytes).expect("own encoding must decode");
        prop_assert_eq!(decoded.kind, FrameKind::Request);
        prop_assert_eq!(decoded.namespace, namespace);
        prop_assert_eq!(decoded.seq, seq);
        match Message::from_frame(&decoded).expect("own payload must decode") {
            Message::Request { queries: got } => prop_assert!(queries_bit_identical(&queries, &got)),
            other => prop_assert!(false, "wrong message decoded: {other:?}"),
        }
    }

    #[test]
    fn response_frames_round_trip_bit_identically(
        seed in 0u64..300,
        count in 0usize..24,
        generation in any::<u64>(),
        seq in any::<u64>(),
    ) {
        let responses = random_responses(seed, count);
        let frame = Message::Response { generation, responses: responses.clone() }
            .into_frame(0, seq);
        let decoded = Frame::decode_exact(&frame.encode()).expect("own encoding must decode");
        match Message::from_frame(&decoded).expect("own payload must decode") {
            Message::Response { generation: g, responses: got } => {
                prop_assert_eq!(g, generation);
                prop_assert!(responses_bit_identical(&responses, &got));
            }
            other => prop_assert!(false, "wrong message decoded: {other:?}"),
        }
    }

    // --- corruption: every single-byte flip anywhere is a typed error ---
    //
    // The frame leaves no unprotected bytes: magic and version are
    // checked literally, the remaining 22 header bytes (and the header
    // CRC itself) are covered by the header CRC-32, and the payload by
    // the payload CRC-32. So ANY one-byte change is rejected, and the
    // error class is determined by the region that changed.

    #[test]
    fn any_single_byte_flip_is_rejected(
        seed in 0u64..150,
        count in 1usize..8,
        pos_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let frame = Message::Request { queries: random_queries(seed, count) }.into_frame(3, 77);
        let mut bytes = frame.encode();
        let pos = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[pos] ^= mask;
        let err = Frame::decode_exact(&bytes).expect_err("corrupted frame must not decode");
        match pos {
            0..=3 => prop_assert!(matches!(err, WireError::BadMagic { .. })),
            4..=5 => prop_assert!(matches!(err, WireError::UnsupportedVersion { .. })),
            6..=31 => prop_assert!(matches!(err, WireError::HeaderChecksum)),
            _ => prop_assert!(matches!(err, WireError::PayloadChecksum)),
        }
    }

    // --- truncation at any offset is "incomplete", never a panic ---

    #[test]
    fn any_truncation_is_rejected(
        seed in 0u64..150,
        count in 1usize..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = Message::Request { queries: random_queries(seed, count) }.into_frame(0, 1);
        let bytes = frame.encode();
        let cut = ((cut_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        // Exact decode: a typed truncation error.
        let err = Frame::decode_exact(&bytes[..cut]).expect_err("truncated frame must not decode");
        prop_assert!(matches!(err, WireError::Truncated(_)));
        // Stream decode: the same prefix just means "need more bytes".
        prop_assert_eq!(Frame::decode_stream(&bytes[..cut]).expect("prefix is valid"), None);
    }

    // --- hostile declared lengths fail before any allocation ---

    #[test]
    fn oversized_declared_payload_lengths_are_rejected(
        declared in (MAX_PAYLOAD as u64 + 1..=u32::MAX as u64),
    ) {
        let mut bytes = Message::List.into_frame(0, 9).encode();
        bytes[20..24].copy_from_slice(&(declared as u32).to_le_bytes());
        // Re-seal the header CRC so ONLY the length field is hostile.
        let crc = crc32(&bytes[..28]);
        bytes[28..32].copy_from_slice(&crc.to_le_bytes());
        let err = Frame::decode_exact(&bytes[..FRAME_HEADER_LEN])
            .expect_err("oversized declared payload must not decode");
        prop_assert_eq!(err, WireError::Oversized {
            declared,
            max: MAX_PAYLOAD as u64,
        });
    }

    #[test]
    fn hostile_declared_counts_never_oversize_allocations(
        count in (1u64 << 20..=u32::MAX as u64),
        as_response in any::<bool>(),
    ) {
        // A tiny payload declaring up to 4 billion records must fail on
        // truncation (allocation grows with bytes read, not the count).
        let kind = if as_response { FrameKind::Response } else { FrameKind::Request };
        let mut payload = Vec::new();
        if kind == FrameKind::Response {
            payload.extend_from_slice(&7u64.to_le_bytes()); // generation
        }
        payload.extend_from_slice(&(count as u32).to_le_bytes());
        let frame = Frame { kind, namespace: 0, seq: 0, payload };
        let err = Message::from_frame(&frame).expect_err("bodyless count must not decode");
        prop_assert!(matches!(err, WireError::Truncated(_)));
    }
}

// --- deterministic spot checks ---

/// The worked example from `docs/WIRE_FORMAT.md` §8, byte for byte. If
/// this test fails, either the codec or the spec is wrong — fix the
/// document together with the code.
#[test]
fn the_specs_worked_example_is_byte_exact() {
    let expected: Vec<u8> = [
        0x41, 0x52, 0x57, 0x46, 0x01, 0x00, 0x01, 0x00, // magic, version, kind, flags
        0x02, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, // namespace 2, seq 1...
        0x00, 0x00, 0x00, 0x00, 0x23, 0x00, 0x00, 0x00, // ...seq, payload_len 35
        0xD0, 0x6D, 0x01, 0x7A, 0x92, 0x80, 0x0A, 0xE1, // payload CRC, header CRC
        0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, // count 1, tag Point, x...
        0x00, 0x00, 0x00, 0xF0, 0x3F, 0x00, 0x00, 0x00, // ...x = 1.0, y...
        0x00, 0x00, 0x00, 0x00, 0x40, 0x00, 0x00, 0x00, // ...y = 2.0, z...
        0x00, 0x00, 0x00, 0xE0, 0x3F, 0x02, 0x00, 0x00, // ...z = 0.5, mac...
        0x00, 0x00, 0x01, // ...mac 02:00:00:00:00:01
    ]
    .to_vec();

    let frame = Message::Request {
        queries: vec![Query::Point {
            pos: Vec3::new(1.0, 2.0, 0.5),
            ap: MacAddress([2, 0, 0, 0, 0, 1]),
        }],
    }
    .into_frame(2, 1);
    assert_eq!(frame.encode(), expected, "encoder must match the spec");

    let decoded = Frame::decode_exact(&expected).expect("spec bytes decode");
    assert_eq!(decoded.namespace, 2);
    assert_eq!(decoded.seq, 1);
    assert_eq!(Message::from_frame(&decoded).unwrap(), Message::Request {
        queries: vec![Query::Point {
            pos: Vec3::new(1.0, 2.0, 0.5),
            ap: MacAddress([2, 0, 0, 0, 0, 1]),
        }],
    });
}

#[test]
fn error_frames_round_trip_and_unknown_codes_are_rejected() {
    let frame = Message::Error {
        code: ErrorCode::UnknownNamespace,
        detail: "namespace 9 is not served".into(),
    }
    .into_frame(9, 4);
    let decoded = Frame::decode_exact(&frame.encode()).unwrap();
    assert_eq!(
        Message::from_frame(&decoded).unwrap(),
        Message::Error {
            code: ErrorCode::UnknownNamespace,
            detail: "namespace 9 is not served".into(),
        }
    );

    // An error payload with an unregistered code byte is typed, not trusted.
    let mut payload = vec![0xEE, 0x00]; // code 0x00EE
    payload.extend_from_slice(&0u32.to_le_bytes()); // empty detail
    let hostile = Frame {
        kind: FrameKind::Error,
        namespace: 0,
        seq: 0,
        payload,
    };
    assert_eq!(
        Message::from_frame(&hostile).unwrap_err(),
        WireError::BadErrorCode { found: 0xEE }
    );
}

#[test]
fn listing_frames_round_trip() {
    let namespaces = vec![
        NamespaceInfo {
            id: 0,
            generation: 3,
            aps: 4,
            cells: 65536,
            name: "building-a".into(),
        },
        NamespaceInfo {
            id: 1,
            generation: 1,
            aps: 2,
            cells: 4096,
            name: "лаборатория".into(), // non-ASCII UTF-8 survives
        },
    ];
    let frame = Message::Listing {
        namespaces: namespaces.clone(),
    }
    .into_frame(0, 11);
    let decoded = Frame::decode_exact(&frame.encode()).unwrap();
    assert_eq!(
        Message::from_frame(&decoded).unwrap(),
        Message::Listing { namespaces }
    );
}

#[test]
fn non_utf8_names_are_rejected() {
    let mut payload = Vec::new();
    payload.extend_from_slice(&2u32.to_le_bytes()); // name length
    payload.extend_from_slice(&[0xFF, 0xFE]); // invalid UTF-8
    payload.extend_from_slice(&0u32.to_le_bytes()); // empty snapshot body
    let frame = Frame {
        kind: FrameKind::Load,
        namespace: 0,
        seq: 0,
        payload,
    };
    assert_eq!(Message::from_frame(&frame).unwrap_err(), WireError::BadName);
}
