//! The headline shape claims of the paper, asserted end to end.
//!
//! These are the repository's acceptance tests: not absolute numbers (our
//! substrate is a simulator, not the authors' apartment), but *who wins, by
//! roughly what factor, and in which direction* — per `DESIGN.md` §4.

use aerorem_bench::{endurance, fig5, fig6, fig8, loc, paper_campaign, prep, queue};
use aerorem::core::models::ModelKind;

/// FIG5 shape: scans with the radio off detect strictly more APs in total
/// than with the radio at any frequency.
#[test]
fn fig5_radio_off_wins_everywhere() {
    let fig = fig5::run(2206);
    let off = fig.series.last().unwrap();
    assert!(off.radio_mhz.is_none());
    for s in &fig.series[..fig.series.len() - 1] {
        assert!(
            off.total() > s.total() * 1.1,
            "radio off {} vs {:?} {}",
            off.total(),
            s.radio_mhz,
            s.total()
        );
    }
}

/// FIG6 + STATS + PREP shapes from one full campaign run.
#[test]
fn campaign_statistics_shape() {
    let report = paper_campaign(2206);

    // STATS: sample volume and diversity in the paper's neighbourhood.
    let total = report.samples.len();
    assert!(
        (1800..=3600).contains(&total),
        "total samples {total} (paper 2696)"
    );
    let macs = report.samples.distinct_macs();
    assert!((55..=73).contains(&macs), "distinct MACs {macs} (paper 73)");
    let ssids = report.samples.distinct_ssids();
    assert!(ssids < macs, "SSIDs are shared: {ssids} < {macs}");
    let mean = report.samples.mean_rssi_dbm().unwrap();
    assert!(
        (-78.0..=-68.0).contains(&mean),
        "mean RSS {mean} (paper ≈ -73)"
    );

    // Per-leg timing: ~36 × 7 s + takeoff/landing ≈ 4-5 min each, at the
    // battery's operating limit but not beyond it.
    for leg in &report.legs {
        let secs = leg.active_time.as_secs_f64();
        assert!((240.0..330.0).contains(&secs), "{} active {secs}s", leg.uav);
        assert!(!leg.aborted_on_battery, "{} died early", leg.uav);
        assert_eq!(leg.waypoints_visited, 36);
    }

    // FIG6: UAV A (building-core side) out-collects UAV B (thick-wall side).
    let fig = fig6::run(&report);
    let totals: Vec<usize> = fig
        .series
        .iter()
        .map(|s| s.per_location.iter().map(|(_, n)| n).sum())
        .collect();
    assert!(
        totals[0] > totals[1],
        "UAV A {} should out-collect UAV B {}",
        totals[0],
        totals[1]
    );
    // Every location yielded something.
    for s in &fig.series {
        assert!(s.per_location.iter().all(|&(_, n)| n > 0));
    }

    // PREP: a small but nonzero fraction of samples drops with rare MACs.
    let p = prep::run(&report).unwrap();
    assert!(p.dropped_samples > 0, "some MACs must be rare");
    let drop_frac = p.dropped_samples as f64 / p.total_samples as f64;
    assert!(
        drop_frac < 0.15,
        "paper dropped ~5%; we dropped {:.0}%",
        drop_frac * 100.0
    );
}

/// FIG8 shape: every estimator lands in the single-digit dBm band, the
/// scaled kNN beats the baseline, and the spread is modest (the paper's
/// models are within ~0.5 dBm of each other).
#[test]
fn fig8_model_ordering() {
    let report = paper_campaign(2206);
    let fig = fig8::run(&report, false, 2206).unwrap();
    let rmse_of = |k: ModelKind| {
        fig.scores
            .iter()
            .find(|s| s.kind == k)
            .map(|s| s.rmse_dbm)
            .unwrap()
    };
    let baseline = rmse_of(ModelKind::MeanPerMac);
    let best_knn = rmse_of(ModelKind::KnnScaled16);
    let mlp = rmse_of(ModelKind::Mlp16);
    assert!(
        (3.5..7.0).contains(&baseline),
        "baseline {baseline} (paper 4.81)"
    );
    assert!(best_knn < baseline, "kNN x3 {best_knn} vs baseline {baseline}");
    assert!(mlp < baseline * 1.05, "MLP {mlp} roughly at/below baseline");
    assert!(
        best_knn <= mlp * 1.05,
        "paper: best kNN ({best_knn}) edges out the MLP ({mlp})"
    );
    // All models comparable, as the paper notes for its small dataset.
    let spread = fig
        .scores
        .iter()
        .map(|s| s.rmse_dbm)
        .fold(f64::MIN, f64::max)
        - fig
            .scores
            .iter()
            .map(|s| s.rmse_dbm)
            .fold(f64::MAX, f64::min);
    assert!(spread < 1.5, "model spread {spread} dBm");
}

/// ENDUR shape: ≈ 36 scans in ≈ 6 minutes before erratic behaviour.
#[test]
fn endurance_window() {
    let r = endurance::run(2206);
    assert!(
        (30..=44).contains(&r.scans_completed),
        "{} scans (paper 36)",
        r.scans_completed
    );
    let secs = r.endurance.as_secs_f64();
    assert!(
        (320.0..430.0).contains(&secs),
        "endurance {secs}s (paper 372s)"
    );
}

/// LOC shape: decimeter accuracy at 6+ anchors; 8 anchors no worse than 4.
#[test]
fn localization_accuracy_claims() {
    let rows = loc::run(2206);
    let six = rows.iter().find(|r| r.anchors == 6).unwrap();
    assert!(six.twr_rmse_m < 0.15, "6-anchor TWR {} m", six.twr_rmse_m);
    assert!(six.tdoa_rmse_m < 0.15, "6-anchor TDoA {} m", six.tdoa_rmse_m);
    let four = rows.iter().find(|r| r.anchors == 4).unwrap();
    let eight = rows.iter().find(|r| r.anchors == 8).unwrap();
    assert!(
        eight.twr_rmse_m <= four.twr_rmse_m * 1.05,
        "more anchors must not hurt: 8 → {} vs 4 → {}",
        eight.twr_rmse_m,
        four.twr_rmse_m
    );
}

/// QUEUE shape: only the full firmware patch survives the scan *and*
/// delivers every row.
#[test]
fn firmware_ablation_ladder() {
    let rows = queue::run(2206);
    assert_eq!(rows.len(), 4);
    // Stock: dead.
    assert!(!rows[0].survived);
    // WDT only: alive but drifting.
    assert!(rows[1].survived);
    // WDT + feedback: steady but lossy with the stock queue.
    assert!(rows[2].survived);
    assert!(rows[2].position_drift_m < rows[1].position_drift_m + 0.5);
    assert!(rows[2].packets_dropped > 0);
    // Full patch: steady and lossless.
    assert!(rows[3].survived);
    assert_eq!(rows[3].packets_dropped, 0);
    assert_eq!(rows[3].rows_delivered, rows[3].rows_scanned);
}
