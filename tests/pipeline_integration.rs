//! Cross-crate integration: the full pipeline from synthetic world to REM.

use aerorem::core::coverage::CoverageMap;
use aerorem::core::models::ModelKind;
use aerorem::core::pipeline::{PipelineConfig, RemPipeline};
use aerorem::mission::campaign::CampaignConfig;
use aerorem::mission::plan::FleetPlan;
use aerorem::simkit::SimDuration;
use aerorem::spatial::Vec3;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fast_config() -> PipelineConfig {
    PipelineConfig {
        campaign: CampaignConfig {
            fleet_plan: FleetPlan {
                fleet_size: 2,
                total_waypoints: 16,
                travel_time: SimDuration::from_secs(3),
                scan_time: SimDuration::from_secs(2),
            },
            ..CampaignConfig::paper_demo()
        },
        preprocess: aerorem::core::features::PreprocessConfig {
            min_samples_per_mac: 8,
        },
        eval_models: vec![
            ModelKind::MeanPerMac,
            ModelKind::Knn3,
            ModelKind::KnnScaled16,
        ],
        rem_model: ModelKind::KnnScaled16,
        rem_resolution_m: 0.5,
    }
}

#[test]
fn pipeline_produces_usable_rem() {
    let mut rng = StdRng::seed_from_u64(0x1777);
    let result = RemPipeline::new(fast_config()).run(&mut rng).unwrap();

    // Every leg completed and delivered everything (patched firmware).
    for leg in &result.campaign.legs {
        assert_eq!(leg.waypoints_visited, leg.waypoints_planned);
        assert!(!leg.shutdown);
        assert_eq!(leg.packets_dropped, 0);
    }

    // Predictions are plausible dBm everywhere inside the volume.
    let mac = result.strongest_mac().unwrap();
    let volume = result.campaign.plan.volume;
    for t in [0.1, 0.5, 0.9] {
        let p = volume.lerp_point(t, 1.0 - t, 0.5);
        let rss = result.predict(p, mac).unwrap();
        assert!((-100.0..=-10.0).contains(&rss), "rss {rss} at {p}");
    }

    // REM grid covers the volume consistently with point predictions.
    let rem = result.generate_rem(mac).unwrap();
    assert_eq!(rem.volume(), volume);
    let center_grid = rem.sample(volume.center()).unwrap();
    let center_pt = result.predict(volume.center(), mac).unwrap();
    assert!(
        (center_grid - center_pt).abs() < 6.0,
        "grid {center_grid} vs point {center_pt}"
    );
}

#[test]
fn location_annotations_track_ground_truth() {
    let mut rng = StdRng::seed_from_u64(0x1778);
    let result = RemPipeline::new(fast_config()).run(&mut rng).unwrap();
    // Decimeter-level UWB localization (§II-B): annotation error is small.
    let err = result
        .campaign
        .samples
        .mean_annotation_error_m()
        .expect("samples exist");
    assert!(err < 0.10, "mean annotation error {err} m");
}

#[test]
fn models_learn_the_actual_radio_world() {
    // The trained model's predictions at unvisited locations must track
    // the hidden propagation surface far better than a constant guess.
    let mut rng = StdRng::seed_from_u64(0x1779);
    let result = RemPipeline::new(fast_config()).run(&mut rng).unwrap();
    let rmse = result.ground_truth_rmse(80, &mut rng).unwrap();
    assert!(rmse < 8.0, "ground-truth RMSE {rmse} dB");
}

#[test]
fn coverage_planning_works_on_generated_rems() {
    let mut rng = StdRng::seed_from_u64(0x177A);
    let result = RemPipeline::new(fast_config()).run(&mut rng).unwrap();
    let macs = result.layout.macs();
    let rems: Vec<_> = macs
        .iter()
        .take(4)
        .map(|&m| result.generate_rem(m).unwrap())
        .collect();
    let cov = CoverageMap::from_rems(&rems).unwrap();
    // Thresholds order coverage monotonically.
    let f90 = cov.coverage_fraction(-90.0);
    let f70 = cov.coverage_fraction(-70.0);
    let f50 = cov.coverage_fraction(-50.0);
    assert!(f90 >= f70 && f70 >= f50);
    // If anything is dark at −60 dBm, the planner proposes something.
    if !cov.dark_cells(-60.0).is_empty() {
        let plan = cov.suggest_relay(-60.0, 1.5).unwrap();
        assert!(result.campaign.plan.volume.contains(plan.position));
    }
}

#[test]
fn different_seeds_different_worlds_same_invariants() {
    for seed in [1u64, 99] {
        let mut rng = StdRng::seed_from_u64(seed);
        let result = RemPipeline::new(fast_config()).run(&mut rng).unwrap();
        assert!(result.preprocess_report.retained_samples > 50);
        let scores = &result.scores;
        assert_eq!(scores.len(), 3);
        assert!(scores.iter().all(|s| s.rmse_dbm.is_finite() && s.rmse_dbm > 0.0));
        // Samples all carry in-volume annotations.
        let vol = result.campaign.plan.volume.inflated(0.5).unwrap();
        for s in result.campaign.samples.iter() {
            assert!(vol.contains(s.position), "sample at {}", s.position);
        }
        let _ = Vec3::ZERO;
    }
}
