//! Failure injection across the mission stack: receiver faults, lossy
//! links, UWB outages, and battery exhaustion must degrade the campaign
//! gracefully — and with the recovery layer on, be *won back* — but never
//! corrupt it.
//!
//! Heavy campaign-level tests honour `AEROREM_FAULTS_SMOKE=1` by shrinking
//! (or skipping battery-bound sections of) their scenarios, so `make check`
//! can run this suite quickly while `make faults` runs it in full.

use aerorem::localization::{AnchorConstellation, RangingConfig, RangingMode};
use aerorem::mission::basestation::BaseStationClient;
use aerorem::mission::campaign::{Campaign, CampaignConfig};
use aerorem::mission::checkpoint::CampaignCheckpoint;
use aerorem::mission::plan::FleetPlan;
use aerorem::mission::recovery::{RetryPolicy, ScanFaultInjection};
use aerorem::propagation::building::SyntheticBuilding;
use aerorem::scanner::scripted::{ScriptedOutcome, ScriptedReceiver};
use aerorem::scanner::RemReceiver;
use aerorem::simkit::{SimDuration, SimTime};
use aerorem::spatial::{Aabb, Vec3};
use aerorem::uav::firmware::FirmwareConfig;
use aerorem::uav::{Uav, UavId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn smoke() -> bool {
    std::env::var("AEROREM_FAULTS_SMOKE").is_ok()
}

fn world() -> (
    aerorem::mission::MissionPlan,
    aerorem::propagation::RadioEnvironment,
    AnchorConstellation,
    StdRng,
) {
    let volume = Aabb::paper_volume();
    let plan = FleetPlan {
        fleet_size: 1,
        total_waypoints: 6,
        travel_time: SimDuration::from_secs(3),
        scan_time: SimDuration::from_secs(2),
    }
    .expand(volume)
    .unwrap();
    let mut rng = StdRng::seed_from_u64(0xFA11);
    let env = SyntheticBuilding::paper_like().generate(volume, &mut rng);
    (plan, env, AnchorConstellation::volume_corners(volume), rng)
}

fn client() -> BaseStationClient {
    BaseStationClient::new(
        2450.0,
        Vec3::new(-1.5, 1.6, 0.8),
        FirmwareConfig::paper_patched(),
        RangingConfig::lps_default(RangingMode::Tdoa),
    )
}

fn row(i: u32) -> aerorem::propagation::scan::BeaconObservation {
    aerorem::propagation::scan::BeaconObservation {
        ssid: aerorem::propagation::ap::Ssid::new(format!("net-{i}")),
        rssi_dbm: -50 - i as i32,
        mac: aerorem::propagation::ap::MacAddress::from_index(i),
        channel: aerorem::propagation::WifiChannel::new(1 + (i % 13) as u8).unwrap(),
    }
}

#[test]
fn transient_fault_is_recovered_by_a_retry() {
    let (plan, env, anchors, mut rng) = world();
    // Fault on the 3rd of 6 scans; once the script is exhausted further
    // measurements return empty row sets (a healthy-but-quiet module).
    let mut receiver = ScriptedReceiver::new(
        vec![
            ScriptedOutcome::Rows(vec![row(1), row(1)]),
            ScriptedOutcome::Rows(vec![row(1)]),
            ScriptedOutcome::Fault,
        ],
        1500.0,
    );
    receiver.init().unwrap();
    let mut c = client(); // paper-default retry policy
    let (outcome, _) = c.fly_leg_with_receiver(
        &plan,
        &plan.legs[0],
        &env,
        &anchors,
        SimTime::ZERO,
        &mut receiver,
        &mut rng,
    );
    assert_eq!(outcome.waypoints_visited, 6);
    assert!(!outcome.shutdown);
    // One fault at waypoint 3; the first retry re-inits the receiver and
    // the re-scan succeeds, so the waypoint is saved instead of skipped.
    assert_eq!(outcome.receiver_faults, 1);
    assert_eq!(outcome.scan_retries, 1);
    assert_eq!(outcome.scans_recovered, 1);
    assert_eq!(outcome.samples.len(), 3);
    assert_eq!(outcome.rows_lost, 0);
    assert_eq!(outcome.rows_corrupted, 0);
}

#[test]
fn sticky_fault_exhausts_retries_then_skips_the_waypoint() {
    let (plan, env, anchors, mut rng) = world();
    // Waypoint 1 delivers one row, then the module faults on every attempt:
    // 5 remaining waypoints × (1 attempt + 2 retries) = 15 scripted faults.
    let mut script = vec![ScriptedOutcome::Rows(vec![row(7)])];
    script.extend(std::iter::repeat_with(|| ScriptedOutcome::Fault).take(15));
    let mut receiver = ScriptedReceiver::new(script, 1500.0);
    receiver.init().unwrap();
    let mut c = client();
    let (outcome, _) = c.fly_leg_with_receiver(
        &plan,
        &plan.legs[0],
        &env,
        &anchors,
        SimTime::ZERO,
        &mut receiver,
        &mut rng,
    );
    // The flight still completes; the faulted waypoints yield nothing.
    assert_eq!(outcome.waypoints_visited, 6);
    assert_eq!(outcome.samples.len(), 1);
    assert_eq!(outcome.receiver_faults, 15);
    assert_eq!(outcome.scan_retries, 10);
    assert_eq!(outcome.scans_recovered, 0);
}

#[test]
fn no_retry_policy_preserves_skip_on_first_fault() {
    let (plan, env, anchors, mut rng) = world();
    // One scripted fault is sticky forever under RetryPolicy::none():
    // nothing re-inits the receiver, so every later scan is an
    // invalid-state error — the pre-recovery behaviour.
    let mut receiver = ScriptedReceiver::new(vec![ScriptedOutcome::Fault], 1000.0);
    receiver.init().unwrap();
    let mut c = client().with_retry_policy(RetryPolicy::none());
    let (outcome, _) = c.fly_leg_with_receiver(
        &plan,
        &plan.legs[0],
        &env,
        &anchors,
        SimTime::ZERO,
        &mut receiver,
        &mut rng,
    );
    assert_eq!(outcome.samples.len(), 0);
    assert_eq!(outcome.receiver_faults, 6);
    assert_eq!(outcome.scan_retries, 0);
    assert_eq!(outcome.waypoints_visited, 6, "the survey itself completes");
}

#[test]
fn lossy_link_admits_no_corrupted_rows() {
    // Acceptance: shrink the uplink queue so most of each scan is lost in
    // flight, then check every admitted sample against the rows actually
    // sent — reassembly must never splice a "valid" row out of fragments
    // of different rows.
    let volume = Aabb::paper_volume();
    let plan = FleetPlan {
        fleet_size: 1,
        total_waypoints: 4,
        travel_time: SimDuration::from_secs(3),
        scan_time: SimDuration::from_secs(2),
    }
    .expand(volume)
    .unwrap();
    let mut rng = StdRng::seed_from_u64(0xFA14);
    let env = SyntheticBuilding::paper_like().generate(volume, &mut rng);
    let anchors = AnchorConstellation::volume_corners(volume);
    let sent: Vec<_> = (0..40).map(row).collect();
    let mut receiver = ScriptedReceiver::new(
        (0..4).map(|_| ScriptedOutcome::Rows(sent.clone())).collect(),
        1500.0,
    );
    receiver.init().unwrap();
    let mut c = BaseStationClient::new(
        2450.0,
        Vec3::new(-1.5, 1.6, 0.8),
        FirmwareConfig {
            tx_queue_size: 24, // 40 rows need far more than 24 fragments
            ..FirmwareConfig::paper_patched()
        },
        RangingConfig::lps_default(RangingMode::Tdoa),
    );
    let (outcome, _) = c.fly_leg_with_receiver(
        &plan,
        &plan.legs[0],
        &env,
        &anchors,
        SimTime::ZERO,
        &mut receiver,
        &mut rng,
    );
    assert!(outcome.packets_dropped > 0, "the queue must overflow");
    let shortfall = outcome.rows_lost + outcome.rows_corrupted;
    assert!(shortfall > 0);
    // The ledger adds up: every sent row is admitted, lost, or quarantined.
    assert_eq!(
        outcome.samples.len() as u64 + shortfall,
        4 * sent.len() as u64
    );
    // Zero corrupted rows admitted: each sample is byte-equal to a sent row.
    for s in outcome.samples.iter() {
        assert!(
            sent.iter().any(|r| r.ssid == s.ssid
                && r.mac == s.mac
                && r.channel == s.channel
                && r.rssi_dbm == s.rssi_dbm),
            "admitted sample {} / {} matches no sent row",
            s.ssid.as_str(),
            s.mac
        );
    }
}

/// A campaign configuration under the acceptance-criteria fault cocktail:
/// a sticky receiver fault schedule (burst 2 survives one re-init), a
/// lossy uplink (24-packet queue), and — in the full-size variant — legs
/// long enough to abort on battery.
fn faulty_config(recovering: bool, waypoints: usize) -> CampaignConfig {
    CampaignConfig {
        fleet_plan: FleetPlan {
            fleet_size: 1,
            total_waypoints: waypoints,
            travel_time: SimDuration::from_secs(4),
            scan_time: SimDuration::from_secs(3),
        },
        firmware: FirmwareConfig {
            tx_queue_size: 24,
            ..FirmwareConfig::paper_patched()
        },
        scan_fault_injection: Some(ScanFaultInjection { period: 3, burst: 2 }),
        retry_policy: if recovering {
            RetryPolicy::paper_default()
        } else {
            RetryPolicy::none()
        },
        max_leg_reflights: usize::from(recovering),
        ..CampaignConfig::paper_demo()
    }
}

#[test]
fn recovery_campaign_beats_no_recovery_at_the_same_seed() {
    // Acceptance: under injected faults, retries + re-flights recover
    // strictly more valid samples than the pre-recovery behaviour
    // (RetryPolicy::none, no re-flights) at the same seed.
    let waypoints = if smoke() { 9 } else { 60 };
    let seed = 0xFA15u64;
    let baseline = Campaign::new(faulty_config(false, waypoints))
        .run(&mut StdRng::seed_from_u64(seed));
    let recovered = Campaign::new(faulty_config(true, waypoints))
        .run(&mut StdRng::seed_from_u64(seed));
    assert!(
        recovered.samples.len() > baseline.samples.len(),
        "recovery must win strictly more samples: {} vs {}",
        recovered.samples.len(),
        baseline.samples.len()
    );
    let recovered_scans: u64 = recovered.legs.iter().map(|l| l.scans_recovered).sum();
    assert!(recovered_scans > 0, "the schedule must actually fault");
    if !smoke() {
        // Full size: the leg overruns one battery; the recovery campaign
        // re-flies the unvisited tail as an extra LegOutcome. Retries cost
        // battery, so the win shows up not in raw waypoints flown but in
        // waypoints that actually yielded samples.
        assert!(baseline.legs.iter().any(|l| l.aborted_on_battery));
        assert!(
            recovered.legs.len() > baseline.legs.len(),
            "the aborted leg must be re-flown over its tail"
        );
        let sampled_waypoints = |r: &aerorem::mission::campaign::CampaignReport| {
            r.samples
                .iter()
                .map(|s| s.waypoint_index)
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        };
        assert!(sampled_waypoints(&recovered) > sampled_waypoints(&baseline));
    }
    // Zero corrupted rows admitted: every sample references a real AP of
    // the generated world, at a physical RSS.
    for report in [&baseline, &recovered] {
        for s in report.samples.iter() {
            assert!(
                report.environment.access_point(s.mac).is_some(),
                "sample names unknown AP {}",
                s.mac
            );
            assert!((-110..=0).contains(&s.rssi_dbm));
        }
    }
}

#[test]
fn checkpoint_resume_is_bit_identical_under_faults() {
    // Acceptance: interrupting a faulty campaign after each leg and
    // resuming from the (text round-tripped) checkpoint reproduces the
    // uninterrupted run bit for bit.
    let config = CampaignConfig {
        fleet_plan: FleetPlan {
            fleet_size: 2,
            total_waypoints: if smoke() { 8 } else { 16 },
            travel_time: SimDuration::from_secs(2),
            scan_time: SimDuration::from_secs(2),
        },
        firmware: FirmwareConfig {
            tx_queue_size: 24,
            ..FirmwareConfig::paper_patched()
        },
        scan_fault_injection: Some(ScanFaultInjection { period: 3, burst: 2 }),
        ..CampaignConfig::paper_demo()
    };
    let seed = 0xFA16u64;
    let whole = Campaign::new(config.clone()).run(&mut StdRng::seed_from_u64(seed));
    for stop_after in [1usize, 2] {
        let checkpoint = Campaign::new(config.clone())
            .run_partial(&mut StdRng::seed_from_u64(seed), stop_after);
        // Through the text format, as a real interrupted base station would.
        let text = checkpoint.to_text();
        let restored = CampaignCheckpoint::from_text(&text).unwrap();
        assert_eq!(restored, checkpoint, "checkpoint text round trip");
        let resumed =
            Campaign::new(config.clone()).resume(&mut StdRng::seed_from_u64(seed), &restored);
        assert_eq!(resumed.samples, whole.samples, "stop after {stop_after}");
        assert_eq!(resumed.legs, whole.legs, "stop after {stop_after}");
        assert_eq!(resumed.total_time, whole.total_time);
        let entries = |r: &aerorem::mission::campaign::CampaignReport| {
            r.trace.iter().cloned().collect::<Vec<_>>()
        };
        assert_eq!(entries(&resumed), entries(&whole), "stop after {stop_after}");
    }
}

#[test]
fn uwb_outage_degrades_estimate_then_recovers() {
    // Fly a hover with a 2-second total ranging outage in the middle: the
    // EKF coasts (uncertainty grows), then snaps back when ranging returns.
    let anchors = AnchorConstellation::volume_corners(Aabb::paper_volume());
    let good = RangingConfig::lps_default(RangingMode::Twr);
    let outage = RangingConfig {
        dropout_probability: 1.0,
        ..good
    };
    let mut rng = StdRng::seed_from_u64(0xFA12);
    let hover = Vec3::new(1.87, 1.6, 1.0);
    let mut uav = Uav::new(
        UavId(0),
        FirmwareConfig::paper_patched(),
        good,
        Vec3::new(hover.x, hover.y, 0.0),
    );
    // Converge for 5 s.
    for step in 1..=500u64 {
        let now = SimTime::from_millis(step * 10);
        uav.commander_mut().set_setpoint(now, hover);
        uav.step(now, 0.01, &anchors, &mut rng);
    }
    let err_before = uav.localization_error();
    assert!(err_before < 0.1, "converged before outage: {err_before}");

    // Outage: swap in the dropout config by rebuilding a UAV mid-test is
    // not possible (config is fixed), so emulate by ranging against an
    // empty constellation for 2 s.
    let empty = AnchorConstellation::new(vec![]);
    for step in 501..=700u64 {
        let now = SimTime::from_millis(step * 10);
        uav.commander_mut().set_setpoint(now, hover);
        uav.step(now, 0.01, &empty, &mut rng);
    }
    // Recovery.
    for step in 701..=900u64 {
        let now = SimTime::from_millis(step * 10);
        uav.commander_mut().set_setpoint(now, hover);
        uav.step(now, 0.01, &anchors, &mut rng);
    }
    let err_after = uav.localization_error();
    assert!(
        err_after < 0.1,
        "estimate must recover after the outage: {err_after}"
    );
    // And the outage config itself yields no measurements at all.
    assert!(outage.measure(&anchors, hover, &mut rng).is_empty());
}

#[test]
fn battery_exhaustion_aborts_leg_cleanly() {
    // A 60-waypoint single-UAV leg cannot fit one battery: the leg must
    // abort with partial results, not panic or produce garbage.
    if smoke() {
        return; // battery exhaustion inherently needs the full-length leg
    }
    let volume = Aabb::paper_volume();
    let plan = FleetPlan {
        fleet_size: 1,
        total_waypoints: 60,
        travel_time: SimDuration::from_secs(4),
        scan_time: SimDuration::from_secs(3),
    }
    .expand(volume)
    .unwrap();
    let mut rng = StdRng::seed_from_u64(0xFA13);
    let env = SyntheticBuilding::paper_like().generate(volume, &mut rng);
    let anchors = AnchorConstellation::volume_corners(volume);
    let mut c = client();
    let (outcome, _) = c.fly_leg(&plan, &plan.legs[0], &env, &anchors, SimTime::ZERO, &mut rng);
    assert!(outcome.aborted_on_battery);
    assert!(outcome.waypoints_visited < 60);
    assert!(
        outcome.waypoints_visited > 30,
        "should get well past half: {}",
        outcome.waypoints_visited
    );
    // Partial samples are still valid and annotated.
    assert!(!outcome.samples.is_empty());
    for s in outcome.samples.iter() {
        assert!(s.waypoint_index < outcome.waypoints_visited);
        assert!(volume.inflated(0.5).unwrap().contains(s.position));
    }
}
