//! Failure injection across the mission stack: receiver faults, UWB
//! outages, and battery exhaustion must degrade the campaign gracefully,
//! never corrupt it.

use aerorem::localization::{AnchorConstellation, RangingConfig, RangingMode};
use aerorem::mission::basestation::BaseStationClient;
use aerorem::mission::plan::FleetPlan;
use aerorem::propagation::building::SyntheticBuilding;
use aerorem::scanner::scripted::{ScriptedOutcome, ScriptedReceiver};
use aerorem::scanner::RemReceiver;
use aerorem::simkit::{SimDuration, SimTime};
use aerorem::spatial::{Aabb, Vec3};
use aerorem::uav::firmware::FirmwareConfig;
use aerorem::uav::{Uav, UavId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn world() -> (
    aerorem::mission::MissionPlan,
    aerorem::propagation::RadioEnvironment,
    AnchorConstellation,
    StdRng,
) {
    let volume = Aabb::paper_volume();
    let plan = FleetPlan {
        fleet_size: 1,
        total_waypoints: 6,
        travel_time: SimDuration::from_secs(3),
        scan_time: SimDuration::from_secs(2),
    }
    .expand(volume)
    .unwrap();
    let mut rng = StdRng::seed_from_u64(0xFA11);
    let env = SyntheticBuilding::paper_like().generate(volume, &mut rng);
    (plan, env, AnchorConstellation::volume_corners(volume), rng)
}

fn client() -> BaseStationClient {
    BaseStationClient::new(
        2450.0,
        Vec3::new(-1.5, 1.6, 0.8),
        FirmwareConfig::paper_patched(),
        RangingConfig::lps_default(RangingMode::Tdoa),
    )
}

#[test]
fn receiver_fault_mid_campaign_skips_waypoint_but_finishes_flight() {
    let (plan, env, anchors, mut rng) = world();
    // Fault on the 3rd of 6 scans; empty script afterwards (no rows).
    let row = aerorem::propagation::scan::BeaconObservation {
        ssid: "x".into(),
        rssi_dbm: -60,
        mac: aerorem::propagation::ap::MacAddress::from_index(1),
        channel: aerorem::propagation::WifiChannel::new(6).unwrap(),
    };
    let mut receiver = ScriptedReceiver::new(
        vec![
            ScriptedOutcome::Rows(vec![row.clone(), row.clone()]),
            ScriptedOutcome::Rows(vec![row.clone()]),
            ScriptedOutcome::Fault,
        ],
        1500.0,
    );
    receiver.init().unwrap();
    let mut c = client();
    let (outcome, _) = c.fly_leg_with_receiver(
        &plan,
        &plan.legs[0],
        &env,
        &anchors,
        SimTime::ZERO,
        &mut receiver,
        &mut rng,
    );
    // Flight completes every waypoint despite the dead receiver.
    assert_eq!(outcome.waypoints_visited, 6);
    assert!(!outcome.shutdown);
    // Scans 3..6 all fail (fault is sticky), scans 1-2 delivered rows.
    assert_eq!(outcome.receiver_faults, 4);
    assert_eq!(outcome.samples.len(), 3);
}

#[test]
fn dead_receiver_from_the_start_yields_empty_but_clean_leg() {
    let (plan, env, anchors, mut rng) = world();
    let mut receiver = ScriptedReceiver::new(vec![ScriptedOutcome::Fault], 1000.0);
    receiver.init().unwrap();
    let mut c = client();
    let (outcome, _) = c.fly_leg_with_receiver(
        &plan,
        &plan.legs[0],
        &env,
        &anchors,
        SimTime::ZERO,
        &mut receiver,
        &mut rng,
    );
    assert_eq!(outcome.samples.len(), 0);
    assert_eq!(outcome.receiver_faults, 6);
    assert_eq!(outcome.waypoints_visited, 6, "the survey itself completes");
}

#[test]
fn uwb_outage_degrades_estimate_then_recovers() {
    // Fly a hover with a 2-second total ranging outage in the middle: the
    // EKF coasts (uncertainty grows), then snaps back when ranging returns.
    let anchors = AnchorConstellation::volume_corners(Aabb::paper_volume());
    let good = RangingConfig::lps_default(RangingMode::Twr);
    let outage = RangingConfig {
        dropout_probability: 1.0,
        ..good
    };
    let mut rng = StdRng::seed_from_u64(0xFA12);
    let hover = Vec3::new(1.87, 1.6, 1.0);
    let mut uav = Uav::new(
        UavId(0),
        FirmwareConfig::paper_patched(),
        good,
        Vec3::new(hover.x, hover.y, 0.0),
    );
    // Converge for 5 s.
    for step in 1..=500u64 {
        let now = SimTime::from_millis(step * 10);
        uav.commander_mut().set_setpoint(now, hover);
        uav.step(now, 0.01, &anchors, &mut rng);
    }
    let err_before = uav.localization_error();
    assert!(err_before < 0.1, "converged before outage: {err_before}");

    // Outage: swap in the dropout config by rebuilding a UAV mid-test is
    // not possible (config is fixed), so emulate by ranging against an
    // empty constellation for 2 s.
    let empty = AnchorConstellation::new(vec![]);
    for step in 501..=700u64 {
        let now = SimTime::from_millis(step * 10);
        uav.commander_mut().set_setpoint(now, hover);
        uav.step(now, 0.01, &empty, &mut rng);
    }
    // Recovery.
    for step in 701..=900u64 {
        let now = SimTime::from_millis(step * 10);
        uav.commander_mut().set_setpoint(now, hover);
        uav.step(now, 0.01, &anchors, &mut rng);
    }
    let err_after = uav.localization_error();
    assert!(
        err_after < 0.1,
        "estimate must recover after the outage: {err_after}"
    );
    // And the outage config itself yields no measurements at all.
    assert!(outage.measure(&anchors, hover, &mut rng).is_empty());
}

#[test]
fn battery_exhaustion_aborts_leg_cleanly() {
    // A 60-waypoint single-UAV leg cannot fit one battery: the leg must
    // abort with partial results, not panic or produce garbage.
    let volume = Aabb::paper_volume();
    let plan = FleetPlan {
        fleet_size: 1,
        total_waypoints: 60,
        travel_time: SimDuration::from_secs(4),
        scan_time: SimDuration::from_secs(3),
    }
    .expand(volume)
    .unwrap();
    let mut rng = StdRng::seed_from_u64(0xFA13);
    let env = SyntheticBuilding::paper_like().generate(volume, &mut rng);
    let anchors = AnchorConstellation::volume_corners(volume);
    let mut c = client();
    let (outcome, _) = c.fly_leg(&plan, &plan.legs[0], &env, &anchors, SimTime::ZERO, &mut rng);
    assert!(outcome.aborted_on_battery);
    assert!(outcome.waypoints_visited < 60);
    assert!(
        outcome.waypoints_visited > 30,
        "should get well past half: {}",
        outcome.waypoints_visited
    );
    // Partial samples are still valid and annotated.
    assert!(!outcome.samples.is_empty());
    for s in outcome.samples.iter() {
        assert!(s.waypoint_index < outcome.waypoints_visited);
        assert!(volume.inflated(0.5).unwrap().contains(s.position));
    }
}
