//! Property-based tests for the versioned REM snapshot codec
//! (`docs/SNAPSHOT_FORMAT.md`): save→load bit-identity over arbitrary
//! grid shapes and payload bit patterns, and rejection of corrupted or
//! truncated inputs with typed errors — never a panic.

use aerorem::core::rem::RemGrid;
use aerorem::core::snapshot::{RemSnapshot, SnapshotError, FILE_HEADER_LEN};
use aerorem::propagation::ap::MacAddress;
use aerorem::spatial::{Aabb, Vec3};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Builds a snapshot with `aps` grids of the given dimensions whose voxel
/// values are *arbitrary f64 bit patterns* (including NaNs, infinities,
/// and subnormals) drawn from a seeded generator, over a random valid
/// volume. Exercises the codec far outside the dBm range real REMs use.
fn random_snapshot(seed: u64, aps: usize, dims: (usize, usize, usize)) -> RemSnapshot {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let min = Vec3::new(
        rng.gen_range(-10.0..10.0),
        rng.gen_range(-10.0..10.0),
        rng.gen_range(-10.0..10.0),
    );
    let max = Vec3::new(
        min.x + rng.gen_range(0.1..5.0),
        min.y + rng.gen_range(0.1..5.0),
        min.z + rng.gen_range(0.1..5.0),
    );
    let volume = Aabb::new(min, max).expect("positive extent on every axis");
    let cells = dims.0 * dims.1 * dims.2;
    let grids = (0..aps)
        .map(|i| {
            let values = (0..cells).map(|_| f64::from_bits(rng.gen())).collect();
            RemGrid::from_parts(MacAddress::from_index(i as u32 + 1), volume, dims, values)
                .expect("value count matches dims")
        })
        .collect();
    RemSnapshot::new(grids).expect("at least one grid")
}

/// Bitwise equality between two snapshots, NaN-tolerant where `==` is not.
fn bit_identical(a: &RemSnapshot, b: &RemSnapshot) -> bool {
    a.len() == b.len()
        && a.grids().iter().zip(b.grids()).all(|(ga, gb)| {
            ga.mac() == gb.mac()
                && ga.dims() == gb.dims()
                && ga.volume().min().to_bits() == gb.volume().min().to_bits()
                && ga.volume().max().to_bits() == gb.volume().max().to_bits()
                && ga.values().len() == gb.values().len()
                && ga
                    .values()
                    .iter()
                    .zip(gb.values())
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

trait Vec3Bits {
    fn to_bits(self) -> [u64; 3];
}

impl Vec3Bits for Vec3 {
    fn to_bits(self) -> [u64; 3] {
        [self.x.to_bits(), self.y.to_bits(), self.z.to_bits()]
    }
}

proptest! {
    // --- round trip: encode is injective up to bits, decode inverts it ---

    #[test]
    fn save_load_is_bit_identical(
        seed in 0u64..500,
        aps in 1usize..4,
        nx in 1usize..6,
        ny in 1usize..6,
        nz in 1usize..6,
    ) {
        let snap = random_snapshot(seed, aps, (nx, ny, nz));
        let decoded = RemSnapshot::from_bytes(&snap.to_bytes())
            .expect("own encoding must decode");
        prop_assert!(bit_identical(&snap, &decoded));
        // And through the filesystem path as well.
        let path = std::env::temp_dir().join(format!("aerorem_snap_{seed}_{aps}_{nx}{ny}{nz}.snap"));
        snap.save(&path).expect("save");
        let loaded = RemSnapshot::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        prop_assert!(bit_identical(&snap, &loaded));
    }

    // --- corruption: every single-byte flip anywhere is detected ---
    //
    // The format leaves no unprotected bytes: the magic/version/endian
    // fields are checked literally, both grid headers and payloads carry
    // CRC-32s, and the grid count is cross-checked against the actual
    // byte length (Truncated / TrailingBytes). So ANY one-byte change
    // must surface as a typed error.

    #[test]
    fn any_single_byte_flip_is_rejected(
        seed in 0u64..200,
        aps in 1usize..3,
        pos_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let snap = random_snapshot(seed, aps, (3, 2, 2));
        let mut bytes = snap.to_bytes();
        let pos = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[pos] ^= mask;
        let err = RemSnapshot::from_bytes(&bytes)
            .expect_err("corrupted snapshot must not decode");
        // The file header's fixed fields produce their dedicated errors.
        match pos {
            0..=7 => prop_assert!(matches!(err, SnapshotError::BadMagic { .. })),
            8..=9 => prop_assert!(matches!(err, SnapshotError::UnsupportedVersion { .. })),
            10..=11 => prop_assert!(matches!(err, SnapshotError::BadEndianTag { .. })),
            _ => {} // grid count / headers / payloads: any typed error is fine
        }
    }

    // --- truncation: every proper prefix is rejected, without panicking ---

    #[test]
    fn any_truncation_is_rejected(
        seed in 0u64..200,
        aps in 1usize..3,
        cut_frac in 0.0f64..1.0,
    ) {
        let snap = random_snapshot(seed, aps, (2, 3, 2));
        let bytes = snap.to_bytes();
        let cut = ((cut_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let err = RemSnapshot::from_bytes(&bytes[..cut])
            .expect_err("truncated snapshot must not decode");
        if cut < FILE_HEADER_LEN {
            // Not even a complete file header.
            prop_assert!(matches!(
                err,
                SnapshotError::Truncated(_) | SnapshotError::BadMagic { .. }
            ));
        }
    }

    // --- trailing garbage after the declared grids is rejected ---

    #[test]
    fn trailing_bytes_are_rejected(
        seed in 0u64..100,
        extra in 1usize..64,
    ) {
        let snap = random_snapshot(seed, 1, (2, 2, 2));
        let mut bytes = snap.to_bytes();
        bytes.extend(std::iter::repeat_n(0xAB, extra));
        let err = RemSnapshot::from_bytes(&bytes)
            .expect_err("oversized snapshot must not decode");
        prop_assert!(matches!(err, SnapshotError::TrailingBytes { extra: e } if e == extra));
    }
}

// --- zero-grid snapshots are rejected on both paths ---
//
// A daemon hot-swaps whatever decodes, so the codec must make an empty
// store unrepresentable: `RemSnapshot::new(vec![])` and a file header
// declaring zero grids both fail with `SnapshotError::Empty`.

#[test]
fn zero_grid_snapshots_are_rejected_at_construction_and_decode() {
    assert!(matches!(
        RemSnapshot::new(vec![]),
        Err(SnapshotError::Empty)
    ));
    // 16-byte v1 file header with grid_count = 0.
    let mut bytes = Vec::with_capacity(FILE_HEADER_LEN);
    bytes.extend_from_slice(b"AREMSNAP");
    bytes.extend_from_slice(&1u16.to_le_bytes());
    bytes.extend_from_slice(&0x1234u16.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        RemSnapshot::from_bytes(&bytes),
        Err(SnapshotError::Empty)
    ));
}
