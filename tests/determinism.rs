//! Serial vs parallel determinism: the same seed must produce *identical*
//! results under both execution policies.
//!
//! The parallel paths (model-zoo evaluation, per-sample feature encoding,
//! per-MAC grouping, per-voxel REM prediction) are all pure per-item maps
//! reassembled in input order, and the pipeline draws no randomness inside
//! a parallel region — so serial and parallel runs must agree bit for bit,
//! not just approximately. This is the contract that lets the `parallel`
//! feature stay on by default without threatening reproducibility.

use aerorem::core::exec::ExecPolicy;
use aerorem::core::models::ModelKind;
use aerorem::core::pipeline::{PipelineConfig, PipelineResult, RemPipeline};
use aerorem::core::rem::RemGrid;
use aerorem::core::PreprocessConfig;
use aerorem::mission::campaign::CampaignConfig;
use aerorem::mission::plan::FleetPlan;
use aerorem::simkit::SimDuration;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reduced campaign so the test stays fast while still exercising every
/// pipeline stage.
fn config() -> PipelineConfig {
    PipelineConfig {
        campaign: CampaignConfig {
            fleet_plan: FleetPlan {
                fleet_size: 2,
                total_waypoints: 16,
                travel_time: SimDuration::from_secs(2),
                scan_time: SimDuration::from_secs(2),
            },
            ..CampaignConfig::paper_demo()
        },
        preprocess: PreprocessConfig {
            min_samples_per_mac: 8,
        },
        eval_models: vec![ModelKind::MeanPerMac, ModelKind::Knn3, ModelKind::KnnScaled16],
        rem_model: ModelKind::KnnScaled16,
        rem_resolution_m: 0.5,
    }
}

fn run(policy: ExecPolicy, seed: u64) -> (PipelineResult, RemGrid) {
    let mut rng = StdRng::seed_from_u64(seed);
    let result = RemPipeline::with_policy(config(), policy)
        .run(&mut rng)
        .expect("pipeline runs");
    let mac = result.strongest_mac().expect("campaign retained MACs");
    let rem = result.generate_rem(mac).expect("REM generates");
    (result, rem)
}

#[test]
fn serial_and_parallel_pipelines_are_bit_identical() {
    for seed in [2206, 0xD1CE] {
        let (serial, serial_rem) = run(ExecPolicy::Serial, seed);
        let (parallel, parallel_rem) = run(ExecPolicy::Parallel, seed);

        // Identical model scores — exact f64 equality, not a tolerance.
        assert_eq!(serial.scores, parallel.scores, "seed {seed}");
        // Identical preprocessed data and layout.
        assert_eq!(serial.dataset.x, parallel.dataset.x, "seed {seed}");
        assert_eq!(serial.dataset.y, parallel.dataset.y, "seed {seed}");
        assert_eq!(serial.layout, parallel.layout, "seed {seed}");
        assert_eq!(
            serial.preprocess_report, parallel.preprocess_report,
            "seed {seed}"
        );
        // Identical REM lattice, voxel for voxel.
        assert_eq!(serial_rem, parallel_rem, "seed {seed}");

        // The runs really took the two different paths.
        assert_eq!(
            serial.instrumentation.get_label("exec"),
            Some("serial"),
            "seed {seed}"
        );
        assert_eq!(
            parallel.instrumentation.get_label("exec"),
            Some("parallel"),
            "seed {seed}"
        );
    }
}

/// The batched lattice fill (contiguous `FeatureMatrix` chunks through
/// `predict_batch`) must reproduce the per-voxel reference path bit for
/// bit, under both execution policies — batching is an optimization of the
/// hot path, never a numerical change.
#[test]
fn batched_rem_is_bit_identical_to_per_voxel() {
    for seed in [2206, 0xD1CE] {
        let mut rng = StdRng::seed_from_u64(seed);
        let result = RemPipeline::with_policy(config(), ExecPolicy::Serial)
            .run(&mut rng)
            .expect("pipeline runs");
        let mac = result.strongest_mac().expect("campaign retained MACs");
        let volume = result.campaign.plan.volume;
        let mut model = ModelKind::KnnScaled16
            .build(&result.layout)
            .expect("model builds");
        model
            .fit(&result.dataset.x, &result.dataset.y)
            .expect("model fits");
        for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
            let batched =
                RemGrid::generate_with(model.as_ref(), &result.layout, volume, 0.3, mac, policy)
                    .expect("batched REM generates");
            let per_voxel = RemGrid::generate_per_voxel_with(
                model.as_ref(),
                &result.layout,
                volume,
                0.3,
                mac,
                policy,
            )
            .expect("per-voxel REM generates");
            assert_eq!(batched, per_voxel, "seed {seed}, {policy}");
        }
    }
}

#[test]
fn repeated_runs_with_one_policy_are_reproducible() {
    let (a, rem_a) = run(ExecPolicy::Parallel, 7);
    let (b, rem_b) = run(ExecPolicy::Parallel, 7);
    assert_eq!(a.scores, b.scores);
    assert_eq!(rem_a, rem_b);
}

/// Checkpoint/resume determinism on a *healthy* campaign: interrupting
/// after the first leg and resuming must reproduce the uninterrupted run
/// bit for bit — the RNG partitioning (one sub-stream per leg) is what
/// makes this hold. The faulty-campaign variant lives in the
/// failure-injection suite.
#[test]
fn interrupted_campaign_resumes_bit_identically() {
    use aerorem::mission::campaign::Campaign;
    let campaign_config = config().campaign;
    let seed = 0xC0DEu64;
    let whole = Campaign::new(campaign_config.clone()).run(&mut StdRng::seed_from_u64(seed));
    let checkpoint = Campaign::new(campaign_config.clone())
        .run_partial(&mut StdRng::seed_from_u64(seed), 1);
    let resumed = Campaign::new(campaign_config).resume(&mut StdRng::seed_from_u64(seed), &checkpoint);
    assert_eq!(resumed.samples, whole.samples);
    assert_eq!(resumed.legs, whole.legs);
    assert_eq!(resumed.total_time, whole.total_time);
}
