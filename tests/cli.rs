//! End-to-end test of the `aerorem` command-line tool: survey → CSV →
//! evaluate → map → coverage, driving the real binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aerorem"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("aerorem_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn survey_evaluate_map_coverage_roundtrip() {
    let samples = tmp("samples.csv");
    let rem = tmp("rem.csv");

    // survey
    let out = bin()
        .args([
            "survey",
            "--seed",
            "5",
            "--waypoints",
            "16",
            "--uavs",
            "2",
            "--out",
            samples.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let csv = std::fs::read_to_string(&samples).unwrap();
    assert!(csv.lines().count() > 100, "samples written");
    assert!(csv.starts_with("uav,waypoint,"));

    // evaluate
    let out = bin()
        .args([
            "evaluate",
            "--in",
            samples.to_str().unwrap(),
            "--min-samples",
            "8",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("baseline: mean per MAC"));
    assert!(text.contains("ordinary kriging"));

    // map
    let out = bin()
        .args([
            "map",
            "--in",
            samples.to_str().unwrap(),
            "--resolution",
            "0.5",
            "--out",
            rem.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let rem_csv = std::fs::read_to_string(&rem).unwrap();
    assert!(rem_csv.starts_with("x,y,z,rssi_dbm"));
    assert!(rem_csv.lines().count() > 50);

    // coverage
    let out = bin()
        .args([
            "coverage",
            "--in",
            samples.to_str().unwrap(),
            "--threshold",
            "-72",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("coverage at -72 dBm"));

    let _ = std::fs::remove_file(samples);
    let _ = std::fs::remove_file(rem);
}

#[test]
fn cli_rejects_bad_usage() {
    // No command.
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Unknown command.
    let out = bin().arg("teleport").output().unwrap();
    assert!(!out.status.success());

    // Missing required flag.
    let out = bin().args(["survey", "--seed", "1"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));

    // Missing input file.
    let out = bin()
        .args(["evaluate", "--in", "/nonexistent/x.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
