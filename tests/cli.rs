//! End-to-end test of the `aerorem` command-line tool: survey → CSV →
//! evaluate → map → coverage, driving the real binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_aerorem"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("aerorem_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn survey_evaluate_map_coverage_roundtrip() {
    let samples = tmp("samples.csv");
    let rem = tmp("rem.csv");

    // survey
    let out = bin()
        .args([
            "survey",
            "--seed",
            "5",
            "--waypoints",
            "16",
            "--uavs",
            "2",
            "--out",
            samples.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let csv = std::fs::read_to_string(&samples).unwrap();
    assert!(csv.lines().count() > 100, "samples written");
    assert!(csv.starts_with("uav,waypoint,"));

    // evaluate
    let out = bin()
        .args([
            "evaluate",
            "--in",
            samples.to_str().unwrap(),
            "--min-samples",
            "8",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("baseline: mean per MAC"));
    assert!(text.contains("ordinary kriging"));

    // map
    let out = bin()
        .args([
            "map",
            "--in",
            samples.to_str().unwrap(),
            "--resolution",
            "0.5",
            "--out",
            rem.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let rem_csv = std::fs::read_to_string(&rem).unwrap();
    assert!(rem_csv.starts_with("x,y,z,rssi_dbm"));
    assert!(rem_csv.lines().count() > 50);

    // coverage
    let out = bin()
        .args([
            "coverage",
            "--in",
            samples.to_str().unwrap(),
            "--threshold",
            "-72",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("coverage at -72 dBm"));

    let _ = std::fs::remove_file(samples);
    let _ = std::fs::remove_file(rem);
}

#[test]
fn cli_rejects_bad_usage() {
    // No command.
    let out = bin().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Unknown command.
    let out = bin().arg("teleport").output().unwrap();
    assert!(!out.status.success());

    // Missing required flag.
    let out = bin().args(["survey", "--seed", "1"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));

    // Missing input file.
    let out = bin()
        .args(["evaluate", "--in", "/nonexistent/x.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn duplicate_flags_are_rejected_not_last_wins() {
    // Before the fix, `--out a.csv --out b.csv` silently kept b.csv;
    // now every duplicated flag is a usage error naming the flag.
    let out = bin()
        .args([
            "survey", "--seed", "1", "--out", "a.csv", "--out", "b.csv",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--out") && stderr.contains("more than once"),
        "stderr must name the duplicated flag: {stderr}"
    );
    assert!(!std::path::Path::new("a.csv").exists());
    assert!(!std::path::Path::new("b.csv").exists());

    // Also through the subcommand-peeling path.
    let out = bin()
        .args(["serve-client", "point", "--tcp", "x", "--tcp", "y"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("more than once"));
}

#[cfg(unix)]
#[test]
fn serve_daemon_and_client_round_trip_over_uds() {
    use aerorem::core::rem::RemGrid;
    use aerorem::core::snapshot::RemSnapshot;
    use aerorem::propagation::ap::MacAddress;
    use aerorem::spatial::Aabb;
    use std::io::{BufRead, BufReader};

    // Freeze a small synthetic snapshot for the daemon to serve.
    let snap_path = tmp("serve.snap");
    let grid = RemGrid::from_parts(
        MacAddress::from_index(1),
        Aabb::paper_volume(),
        (8, 8, 4),
        (0..256).map(|i| -40.0 - (i % 30) as f64).collect(),
    )
    .unwrap();
    RemSnapshot::new(vec![grid])
        .unwrap()
        .save(&snap_path)
        .unwrap();

    // Keep the socket path short: UDS paths are limited to ~100 bytes.
    let sock = tmp("cli.sock");
    let mut daemon = bin()
        .args([
            "serve",
            "--in",
            snap_path.to_str().unwrap(),
            "--uds",
            sock.to_str().unwrap(),
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon starts");

    // The daemon prints one parseable line per endpoint once it listens.
    let stdout = daemon.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let ready = lines.next().expect("endpoint line").unwrap();
    assert!(
        ready.starts_with("listening on uds "),
        "unexpected readiness line: {ready}"
    );

    let client = |args: &[&str]| {
        let mut full = vec!["serve-client", args[0], "--uds", sock.to_str().unwrap()];
        full.extend_from_slice(&args[1..]);
        let out = bin().args(&full).output().unwrap();
        assert!(
            out.status.success(),
            "serve-client {args:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    let text = client(&["point", "--at", "1,1,1", "--mac", "02:00:00:00:00:01"]);
    assert!(text.starts_with("value "), "point output: {text}");
    assert!(!text.contains("none"), "in-volume point must hit: {text}");

    let text = client(&["best", "--at", "2,2,1.5"]);
    assert!(text.starts_with("best "), "best output: {text}");

    let text = client(&["namespaces"]);
    assert!(text.contains("\"default\""), "listing output: {text}");
    assert!(text.contains("generation 1"), "listing output: {text}");

    let text = client(&["shutdown"]);
    assert!(text.contains("daemon acknowledged shutdown"), "{text}");
    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "daemon must exit cleanly after shutdown");

    let _ = std::fs::remove_file(snap_path);
    let _ = std::fs::remove_file(sock);
}
