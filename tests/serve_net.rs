//! End-to-end tests for the serving daemon: a real wire round trip over
//! TCP loopback and Unix-domain sockets, checked bit-identical against
//! the in-process `RemStore` answers, plus hot-swap, multi-namespace,
//! unknown-namespace, and shutdown behaviour under both [`ExecPolicy`]
//! arms.

use aerorem::core::rem::RemGrid;
use aerorem::core::snapshot::RemSnapshot;
use aerorem::propagation::ap::MacAddress;
use aerorem::serve::wire::ErrorCode;
use aerorem::serve::{
    Daemon, DaemonConfig, ExecPolicy, Listener, Query, RemStore, Response, StoreConfig, WireClient,
    ClientError,
};
use aerorem::spatial::{Aabb, Vec3};

/// A deterministic multi-AP snapshot; `bias` shifts every sample so two
/// calls with different biases produce stores with different answers.
fn synthetic_snapshot(aps: u32, bias: f64) -> RemSnapshot {
    let grids = (0..aps)
        .map(|a| {
            let values = (0..256)
                .map(|i| -35.0 - ((i + 7 * a as usize) % 40) as f64 - bias)
                .collect();
            RemGrid::from_parts(
                MacAddress::from_index(a + 1),
                Aabb::paper_volume(),
                (8, 8, 4),
                values,
            )
            .expect("synthetic grid is well-formed")
        })
        .collect();
    RemSnapshot::new(grids).expect("synthetic snapshot is non-empty")
}

/// A mixed query batch that exercises all four query kinds inside the
/// paper volume.
fn mixed_queries() -> Vec<Query> {
    let vol = Aabb::paper_volume();
    let span = vol.max() - vol.min();
    let at = |fx: f64, fy: f64, fz: f64| {
        Vec3::new(
            vol.min().x + span.x * fx,
            vol.min().y + span.y * fy,
            vol.min().z + span.z * fz,
        )
    };
    vec![
        Query::Point {
            pos: at(0.25, 0.25, 0.5),
            ap: MacAddress::from_index(1),
        },
        Query::Point {
            pos: at(0.8, 0.1, 0.3),
            ap: MacAddress::from_index(2),
        },
        Query::BestAp {
            pos: at(0.5, 0.5, 0.5),
        },
        Query::BoxStats {
            region: Aabb::new(at(0.1, 0.1, 0.1), at(0.6, 0.7, 0.9)).expect("positive extent"),
            ap: MacAddress::from_index(1),
        },
        Query::Coverage {
            threshold_dbm: -60.0,
            ap: MacAddress::from_index(2),
        },
        // Out of volume: must round-trip as a miss, not an error.
        Query::Point {
            pos: Vec3::new(-1000.0, -1000.0, -1000.0),
            ap: MacAddress::from_index(1),
        },
    ]
}

/// Compares at the bit level: a response that crossed the wire must be
/// indistinguishable from the in-process one, including float payloads.
fn assert_bit_identical(wire: &[Response], local: &[Response]) {
    assert_eq!(wire.len(), local.len());
    for (i, (w, l)) in wire.iter().zip(local).enumerate() {
        let same = match (w, l) {
            (Response::Value(a), Response::Value(b)) => {
                a.map(f64::to_bits) == b.map(f64::to_bits)
            }
            (Response::Best(a), Response::Best(b)) => {
                a.map(|(m, x)| (m, x.to_bits())) == b.map(|(m, x)| (m, x.to_bits()))
            }
            (Response::Stats(a), Response::Stats(b)) => {
                a.min.to_bits() == b.min.to_bits()
                    && a.max.to_bits() == b.max.to_bits()
                    && a.sum.to_bits() == b.sum.to_bits()
                    && a.count == b.count
            }
            (
                Response::Covered { cells: ac, fraction: af },
                Response::Covered { cells: bc, fraction: bf },
            ) => ac == bc && af.to_bits() == bf.to_bits(),
            _ => false,
        };
        assert!(same, "response {i} differs across the wire: {w:?} vs {l:?}");
    }
}

/// A short, unique Unix socket path (UDS paths have a ~100 byte limit,
/// so `TMPDIR`-based tempfile paths are risky).
fn uds_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("aerorem-{}-{tag}.sock", std::process::id()))
}

fn start_daemon(policy: ExecPolicy, snapshot: &RemSnapshot) -> (Daemon, aerorem::serve::ServerHandle, String, std::path::PathBuf) {
    let config = DaemonConfig {
        policy,
        store: StoreConfig::default(),
    };
    let daemon = Daemon::new(config);
    daemon
        .load("default", &snapshot.to_bytes())
        .expect("synthetic snapshot loads");
    let tcp = Listener::bind_tcp("127.0.0.1:0").expect("bind tcp loopback");
    let tcp_addr = tcp
        .endpoint()
        .strip_prefix("tcp ")
        .expect("tcp endpoint")
        .to_string();
    let sock = uds_path(match policy {
        ExecPolicy::Serial => "serial",
        ExecPolicy::Parallel => "parallel",
    });
    let uds = Listener::bind_uds(&sock).expect("bind uds");
    let handle = daemon.start(vec![tcp, uds]);
    (daemon, handle, tcp_addr, sock)
}

#[test]
fn wire_answers_are_bit_identical_to_in_process_answers() {
    let snapshot = synthetic_snapshot(3, 0.0);
    let queries = mixed_queries();
    for policy in [ExecPolicy::Serial, ExecPolicy::Parallel] {
        // The independent ground truth: a store built directly from the
        // same snapshot, answered in-process.
        let store = RemStore::build(&snapshot, StoreConfig::default()).expect("store builds");
        let local = store
            .submit_batch(&queries, policy)
            .expect("in-process batch answers");

        let (_daemon, handle, tcp_addr, sock) = start_daemon(policy, &snapshot);

        let mut tcp = WireClient::connect_tcp(&tcp_addr).expect("connect tcp");
        let (generation, over_tcp) = tcp.query(0, &queries).expect("tcp query answers");
        assert_eq!(generation, 1);
        assert_bit_identical(&over_tcp, &local);

        #[cfg(unix)]
        {
            let mut uds = WireClient::connect_uds(&sock).expect("connect uds");
            let (generation, over_uds) = uds.query(0, &queries).expect("uds query answers");
            assert_eq!(generation, 1);
            assert_bit_identical(&over_uds, &local);
        }

        tcp.shutdown().expect("daemon acknowledges shutdown");
        handle.join();
    }
}

#[test]
fn pipelined_frames_answer_in_order() {
    let snapshot = synthetic_snapshot(2, 0.0);
    let queries = mixed_queries();
    let (daemon, handle, tcp_addr, _sock) = start_daemon(ExecPolicy::Serial, &snapshot);
    let (_, local) = daemon.answer(0, &queries).expect("in-process answers");

    // Fire many request frames before reading any reply: the daemon
    // batches what it finds queued, but replies must come back one frame
    // per request, in send order, each bit-identical to the ground truth.
    let mut client = WireClient::connect_tcp(&tcp_addr).expect("connect tcp");
    let seqs: Vec<u64> = (0..16)
        .map(|_| client.send_query(0, &queries).expect("send"))
        .collect();
    for seq in seqs {
        let (generation, responses) = client.recv_response(seq).expect("pipelined reply");
        assert_eq!(generation, 1);
        assert_bit_identical(&responses, &local);
    }

    client.shutdown().expect("daemon acknowledges shutdown");
    handle.join();
}

#[test]
fn hot_swap_bumps_the_generation_and_changes_answers() {
    let before = synthetic_snapshot(2, 0.0);
    let after = synthetic_snapshot(2, 11.0);
    let queries = mixed_queries();
    let (_daemon, handle, tcp_addr, _sock) = start_daemon(ExecPolicy::Serial, &before);

    let mut client = WireClient::connect_tcp(&tcp_addr).expect("connect tcp");
    let (gen1, first) = client.query(0, &queries).expect("pre-swap query");
    assert_eq!(gen1, 1);

    // Hot-swap over the wire: same name, same namespace id, generation +1.
    let info = client
        .load("default", &after.to_bytes())
        .expect("hot-swap loads");
    assert_eq!(info.namespace, 0);
    assert_eq!(info.generation, 2);

    let (gen2, second) = client.query(0, &queries).expect("post-swap query");
    assert_eq!(gen2, 2);
    match (&first[0], &second[0]) {
        (Response::Value(Some(a)), Response::Value(Some(b))) => {
            assert!((a - b).abs() > 1.0, "swap must change served values")
        }
        other => panic!("point queries must hit: {other:?}"),
    }

    client.shutdown().expect("daemon acknowledges shutdown");
    handle.join();
}

#[test]
fn namespaces_are_independent_and_listable() {
    let a = synthetic_snapshot(1, 0.0);
    let b = synthetic_snapshot(3, 5.0);
    let (_daemon, handle, tcp_addr, _sock) = start_daemon(ExecPolicy::Serial, &a);

    let mut client = WireClient::connect_tcp(&tcp_addr).expect("connect tcp");
    let info_a = client.load("building-a", &a.to_bytes()).expect("load a");
    let info_b = client.load("building-b", &b.to_bytes()).expect("load b");
    assert_ne!(info_a.namespace, info_b.namespace);
    assert_eq!(info_a.aps, 1);
    assert_eq!(info_b.aps, 3);

    // The namespace id in the frame header routes to the right store:
    // building-b serves AP 3, building-a does not.
    let probe = vec![Query::Point {
        pos: Vec3::new(1.0, 1.0, 1.0),
        ap: MacAddress::from_index(3),
    }];
    let (_, in_b) = client.query(info_b.namespace, &probe).expect("query b");
    let (_, in_a) = client.query(info_a.namespace, &probe).expect("query a");
    assert!(matches!(in_b[0], Response::Value(Some(_))));
    assert!(matches!(in_a[0], Response::Value(None)));

    let listing = client.list().expect("listing answers");
    assert_eq!(listing.len(), 3); // "default" + the two buildings
    let names: Vec<&str> = listing.iter().map(|n| n.name.as_str()).collect();
    assert!(names.contains(&"building-a") && names.contains(&"building-b"));

    client.shutdown().expect("daemon acknowledges shutdown");
    handle.join();
}

#[test]
fn unknown_namespaces_and_bad_snapshots_fail_with_typed_server_errors() {
    let snapshot = synthetic_snapshot(1, 0.0);
    let (_daemon, handle, tcp_addr, _sock) = start_daemon(ExecPolicy::Serial, &snapshot);

    let mut client = WireClient::connect_tcp(&tcp_addr).expect("connect tcp");

    let err = client
        .query(42, &mixed_queries())
        .expect_err("unknown namespace must fail");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::UnknownNamespace),
        other => panic!("expected a server error, got {other}"),
    }

    // A corrupt snapshot image is rejected server-side; the connection
    // stays usable afterwards.
    let err = client
        .load("broken", b"not a snapshot")
        .expect_err("garbage snapshot must be rejected");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::SnapshotRejected),
        other => panic!("expected a server error, got {other}"),
    }
    let (generation, _) = client.query(0, &mixed_queries()).expect("still serving");
    assert_eq!(generation, 1);

    client.shutdown().expect("daemon acknowledges shutdown");
    handle.join();
}
